"""Server side of the cloud rendering system.

This package assembles the full per-instance rendering pipeline of
Figure 1 / Figure 5 — VNC-style server proxy, application main loop,
graphics interposer, GPU rendering, frame compression and delivery — on
top of the hardware, graphics and network substrates, and provides the
multi-tenant host used for the colocation studies of Section 5.
"""

from repro.server.container import Container, ContainerConfig, ContainerRuntime
from repro.server.session import RenderingSession, SessionConfig
from repro.server.vnc import VncServer, VncServerConfig
from repro.server.host import CloudHost, HostConfig

__all__ = [
    "CloudHost",
    "Container",
    "ContainerConfig",
    "ContainerRuntime",
    "HostConfig",
    "RenderingSession",
    "SessionConfig",
    "VncServer",
    "VncServerConfig",
]
