"""The VNC-style server proxy (the TurboVNC analogue).

The server proxy is the media endpoint of the cloud rendering system
(Figure 1): it terminates the RFB connection from the client, forwards
user inputs into the application's X event queue, and takes rendered
frames from the graphics interposer, converts and compresses them, and
streams them back to the client.  Pictor's hooks 2, 3, 8 and 9 live here.

The proxy's work is spread over three threads — input forwarding,
frame translation + compression, and network sending — which matches the
real TurboVNC process structure and is what allows the CP and SS stages
of successive frames to overlap in the Figure 5 pipeline.  Those threads
are also what contend with the benchmark for CPU and memory; the paper
measures the VNC server at 169–243% CPU depending on the benchmark's FPS
and compression difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.hooks import HookPoint
from repro.core.monitors import FpsCounter
from repro.core.pictor import SessionInstrumentation
from repro.core.tracker import InputTracker
from repro.graphics.compression import Codec
from repro.graphics.frame import Frame
from repro.graphics.pipeline import Stage, StageTimings
from repro.graphics.xserver import IPC_CPU_PROFILE, XDisplay, XEvent, XWindow
from repro.hardware.cpu import Cpu, StageCpuProfile
from repro.network.link import Nic
from repro.network.packet import Message
from repro.network.protocols import RfbProtocol
from repro.sim.engine import Environment
from repro.sim.randomness import StreamRandom
from repro.sim.resources import Store

__all__ = ["VncServer", "VncServerConfig"]


#: Pixel-format translation is a streaming memory workload similar to the
#: SHM copies.
TRANSLATE_CPU_PROFILE = StageCpuProfile(
    demand=1.6,
    memory_intensity=0.75,
    base_retiring=0.32,
    base_frontend=0.10,
    base_bad_speculation=0.04,
    working_set_mb=16.0,
)


@dataclass(frozen=True)
class VncServerConfig:
    """Cost parameters of the server proxy."""

    # Parsing one RFB input message (stage SP); "too small to be visible"
    # in Figure 12 (< 1 ms).
    input_parse_ms: float = 0.25
    # Translating the raw frame into the client's pixel format before
    # compression (rfbTranslateFrame, charged as part of stage CP).
    translate_base_ms: float = 2.0
    translate_ms_per_mb: float = 0.45
    jitter_fraction: float = 0.20


class VncServer:
    """Per-instance server proxy with input, compression and send threads."""

    def __init__(self, env: Environment, cpu: Cpu, xdisplay: XDisplay,
                 window: XWindow, codec: Codec, nic: Nic,
                 rfb: Optional[RfbProtocol] = None,
                 instrumentation: Optional[SessionInstrumentation] = None,
                 config: Optional[VncServerConfig] = None,
                 rng: Optional[StreamRandom] = None,
                 owner: str = "vnc",
                 ipc_factor: float = 1.0,
                 frame_tags: Optional[dict[int, list[int]]] = None,
                 stage_timings: Optional[StageTimings] = None):
        self.env = env
        self.cpu = cpu
        self.xdisplay = xdisplay
        self.window = window
        self.codec = codec
        self.nic = nic
        self.rfb = rfb or RfbProtocol()
        self.instrumentation = instrumentation
        self.config = config or VncServerConfig()
        self.rng = rng or StreamRandom(0)
        self.owner = owner
        self.ipc_factor = ipc_factor
        self.frame_tags = frame_tags if frame_tags is not None else {}
        self.stage_timings = stage_timings or StageTimings()

        # Proxy threads (contend with the benchmark for CPU).
        self.input_thread = cpu.thread(f"{owner}.input", owner=owner)
        self.compress_thread = cpu.thread(f"{owner}.compress", owner=owner)
        self.send_thread = cpu.thread(f"{owner}.send", owner=owner)

        # Queues between pipeline stages.
        self.input_inbox: Store = Store(env)        # uplink messages from the client
        self.frame_inbox: Store = Store(env)        # frames from the interposer
        self.compressed_queue: Store = Store(env)   # compressed frames awaiting send

        self.server_fps = FpsCounter(env, name=f"{owner}.server_fps")
        #: Delivery callback set by the session: receives (frame, tags, bytes).
        self.deliver_to_client: Optional[Callable] = None

        self.inputs_forwarded = 0
        self.frames_sent = 0
        self.frames_spoiled = 0
        self._processes = []

    # -- helpers ------------------------------------------------------------------
    @property
    def _tracker(self) -> Optional[InputTracker]:
        if self.instrumentation is None or not self.instrumentation.enabled:
            return None
        return self.instrumentation.tracker

    def _fire(self, hook: HookPoint, **kwargs) -> None:
        if self.instrumentation is not None and self.instrumentation.enabled:
            self.instrumentation.hooks.fire(hook, timestamp=self.env.now, **kwargs)

    def _hook_overhead(self, fires: int = 1) -> float:
        if self.instrumentation is None:
            return 0.0
        return self.instrumentation.hooks.fire_overhead(fires)

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        if self.deliver_to_client is None:
            raise RuntimeError("deliver_to_client must be connected before starting")
        self._processes.append(self.env.process(self._input_loop()))
        self._processes.append(self.env.process(self._compress_loop()))
        self._processes.append(self.env.process(self._send_loop()))

    # -- input path: stages SP and PS (hooks 2 and 3) --------------------------------------
    def _input_loop(self):
        while True:
            message: Message = yield self.input_inbox.get()
            tag = message.tag

            # Stage SP: parse the RFB message, extract the tag (hook2).
            self._fire(HookPoint.HOOK2, api="rfbProcessClientMessage", tag=tag)
            sp_started = self.env.now
            sp_cost = (self.rng.jitter(self.config.input_parse_ms * 1e-3,
                                       self.config.jitter_fraction)
                       + self._hook_overhead())
            yield from self.input_thread.run(sp_cost, IPC_CPU_PROFILE)
            sp_duration = self.env.now - sp_started
            self.stage_timings.record(Stage.SP, sp_duration)

            # Stage PS: inject the input into the application (hook3).
            self._fire(HookPoint.HOOK3, api="XTestFakeKeyEvent", tag=tag)
            ps_started = self.env.now
            event = XEvent(kind=message.kind.value, payload=message.payload, tag=tag)
            yield from self._inject_event(event)
            ps_duration = self.env.now - ps_started
            self.stage_timings.record(Stage.PS, ps_duration)

            tracker = self._tracker
            if tracker is not None and tag is not None:
                tracker.mark_hook(tag, "hook2", sp_started)
                tracker.record_stage(tag, Stage.SP, sp_duration)
                tracker.mark_hook(tag, "hook3", ps_started)
                tracker.record_stage(tag, Stage.PS, ps_duration)
            self.inputs_forwarded += 1

    def _inject_event(self, event: XEvent):
        """Inject one event, inflating the IPC cost for containerized runs."""
        if self.ipc_factor > 1.0:
            extra = self.xdisplay.config.send_event_ms * 1e-3 * (self.ipc_factor - 1.0)
            yield from self.input_thread.run(extra, IPC_CPU_PROFILE)
        yield from self.xdisplay.send_input_event(self.window, event, self.input_thread)

    # -- frame spoiling ----------------------------------------------------------------------
    def _coalesce(self, frame: Frame, queue: Store) -> Frame:
        """Frame spoiling: when the application produces frames faster than
        the proxy can encode/ship them, VNC coalesces updates — only the
        newest framebuffer content is sent, and the inputs answered by the
        dropped frames are answered by the newer one instead.  Without this
        the encode queue would grow without bound whenever the rendering
        rate exceeds the compression rate (exactly what happens once the
        Section-6 optimizations raise the server FPS)."""
        while len(queue) > 0:
            newer = queue.items.popleft()
            carried = self.frame_tags.pop(frame.frame_id, None)
            if carried:                          # carry tags forward
                merged = self.frame_tags.setdefault(newer.frame_id, [])
                for tag in carried:
                    if tag not in merged:
                        merged.append(tag)
            self.frames_spoiled += 1
            frame = newer
        return frame

    # -- frame path: stage CP (hooks 8 and 9) -------------------------------------------------
    def _compress_loop(self):
        while True:
            frame: Frame = yield self.frame_inbox.get()
            frame = self._coalesce(frame, self.frame_inbox)
            # The frame leaves the server here: popping (not reading) its
            # tag entry keeps the dict bounded by frames in flight instead
            # of growing for the whole run.
            tags = self.frame_tags.pop(frame.frame_id, None) or []

            # Hook8: extract the embedded tag and restore the original pixels.
            embedded_tag = frame.extract_tag()
            frame.restore_tag_pixels()
            self._fire(HookPoint.HOOK8, api="rfbTranslateFrame",
                       tag=embedded_tag, frame_id=frame.frame_id)

            cp_started = self.env.now
            # Pixel-format translation of the damaged region.
            translate_mb = frame.raw_bytes * (0.15 + 0.85 * frame.scene_change) / 1e6
            translate_cost = self.rng.jitter(
                (self.config.translate_base_ms
                 + self.config.translate_ms_per_mb * translate_mb) * 1e-3,
                self.config.jitter_fraction) + self._hook_overhead(2)
            yield from self.compress_thread.run(translate_cost, TRANSLATE_CPU_PROFILE)
            # Tight/JPEG encoding of the frame.
            compressed = yield from self.codec.compress(frame, self.compress_thread)
            cp_duration = self.env.now - cp_started
            self.stage_timings.record(Stage.CP, cp_duration)

            tracker = self._tracker
            if tracker is not None:
                for tag in tags:
                    tracker.record_stage(tag, Stage.CP, cp_duration)

            self.server_fps.record_frame()
            self._fire(HookPoint.HOOK9, api="rfbSendFramebufferUpdate",
                       frame_id=frame.frame_id)
            yield self.compressed_queue.put((frame, tags, compressed))

    # -- frame path: stage SS ---------------------------------------------------------------------
    def _send_loop(self):
        while True:
            frame, tags, compressed = yield self.compressed_queue.get()
            message = self.rfb.encode_frame_update(compressed.compressed_bytes,
                                                   payload=frame)
            ss_started = self.env.now
            yield from self.nic.send_to_client(message)
            ss_duration = self.env.now - ss_started
            self.stage_timings.record(Stage.SS, ss_duration)

            tracker = self._tracker
            if tracker is not None:
                for tag in tags:
                    tracker.record_stage(tag, Stage.SS, ss_duration)

            self.frames_sent += 1
            yield from self._deliver(frame, tags, compressed.compressed_bytes)

    def _deliver(self, frame: Frame, tags: list[int], compressed_bytes: float):
        result = self.deliver_to_client(frame, tags, compressed_bytes)
        if result is not None:
            yield result
