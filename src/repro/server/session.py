"""One benchmark instance's end-to-end rendering session.

A :class:`RenderingSession` wires together everything one instance of the
Figure 1 architecture needs on a shared server machine:

* the application itself (from :mod:`repro.apps`) and its main loop,
  running the Figure 5 software pipeline — poll inputs, application
  logic (AL), submit GPU rendering (RD), copy the previous frame back
  over PCIe (FC), and hand it to the send thread (AS);
* the per-instance X display, GL context and graphics interposer;
* the VNC server proxy with its input / compression / send threads;
* the dedicated NIC + network link to the instance's client machine and
  the client proxy that displays frames and hosts the driving agent;
* Pictor's per-session instrumentation (hooks, input tracker, GPU time
  queries) when measurement is enabled;
* optionally a container wrapping the instance (Section 5.4) and the
  Section 6 optimizations (memoized window attributes, two-step copy).

The session exposes the measured quantities that the Pictor facade turns
into a :class:`~repro.core.pictor.PerformanceReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import Action, Application3D
from repro.client.proxy import ClientProxy, ClientProxyConfig
from repro.core.gpu_timer import GpuTimeQueryManager
from repro.core.hooks import HookPoint
from repro.core.monitors import FpsCounter
from repro.core.pictor import Pictor, SessionInstrumentation
from repro.core.pmu import CpuPmuReader, GpuPmuReader
from repro.core.tracker import InputTracker
from repro.graphics.compression import TightCodec
from repro.graphics.frame import Frame
from repro.graphics.interposer import GraphicsInterposer, InterposerConfig
from repro.graphics.opengl import GlContext
from repro.graphics.pipeline import PipelineConfig, Stage, StageTimings
from repro.graphics.xserver import XConfig, XDisplay
from repro.hardware.machine import ServerMachine
from repro.hardware.memory import LlcModel
from repro.network.link import LinkSpec, NetworkLink, Nic
from repro.network.protocols import RfbProtocol
from repro.server.container import Container
from repro.server.vnc import VncServer, VncServerConfig
from repro.sim.engine import Environment, Process
from repro.sim.randomness import RandomStreams
from repro.sim.resources import Store

__all__ = ["RenderingSession", "SessionConfig"]


@dataclass(frozen=True)
class SessionConfig:
    """Per-session configuration."""

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    link: LinkSpec = field(default_factory=LinkSpec.lan_1gbps)
    vnc: VncServerConfig = field(default_factory=VncServerConfig)
    client: ClientProxyConfig = field(default_factory=ClientProxyConfig)
    x_config: XConfig = field(default_factory=XConfig)
    # Slow-motion benchmarking (Nieh et al.): fully serialize the pipeline
    # and allow only one outstanding input/frame at a time.
    slow_motion: bool = False
    # Cap on the frame rate the application targets (vsync-like); the
    # paper's benchmarks run uncapped ("maximized visual effects").
    max_fps: Optional[float] = None


class RenderingSession:
    """One benchmark instance on a shared server machine."""

    def __init__(self, env: Environment, machine: ServerMachine,
                 app: Application3D, streams: RandomStreams,
                 name: str = "bench-0",
                 config: Optional[SessionConfig] = None,
                 pictor: Optional[Pictor] = None,
                 container: Optional[Container] = None,
                 client_index: int = 0):
        self.env = env
        self.machine = machine
        self.app = app
        self.streams = streams
        self.name = name
        self.config = config or SessionConfig()
        self.container = container
        self.client_index = client_index

        profile = app.profile
        self.app_owner = f"{name}.app"
        self.proxy_owner = f"{name}.vnc"

        # --- instrumentation -------------------------------------------------
        pictor = pictor or Pictor()
        measurement_on = self.config.pipeline.measurement_enabled
        if not measurement_on:
            pictor = Pictor(pictor.config.disabled())
        self.instrumentation: SessionInstrumentation = pictor.instrument_session(
            client_index=client_index)
        # Cached for the per-frame hot paths below: the instrumentation's
        # enabled flag is fixed at construction time, and the property
        # chain it hides behind is measurable at frame rates.
        self.measurement_enabled: bool = self.instrumentation.enabled

        # --- memory registration ----------------------------------------------
        working_set = profile.working_set_mb
        if container is not None:
            working_set *= container.working_set_factor
        machine.memory.register_workload(working_set)
        self.llc = LlcModel(base_miss_rate=profile.base_l3_miss_rate,
                            working_set_mb=working_set)

        # --- graphics stack ---------------------------------------------------
        rng_of = streams.stream
        gpu_overhead = container.gpu_overhead if container is not None else 0.0
        self.render_context = machine.gpu.create_context(
            name, profile.gpu_profile, virtualization_overhead=gpu_overhead)
        self.xdisplay = XDisplay(env, config=self.config.x_config,
                                 rng=rng_of(f"{name}.x"))
        self.window = self.xdisplay.create_window(
            self.config.pipeline.target_width, self.config.pipeline.target_height,
            name=name)
        self.gl = GlContext(env, self.render_context, machine.pcie,
                            base_render_time_s=profile.render_ms * 1e-3)
        ipc_factor = container.ipc_factor if container is not None else 1.0
        self.interposer = GraphicsInterposer(
            env, self.gl, self.xdisplay, self.window,
            config=InterposerConfig(
                memoize_window_attributes=self.config.pipeline.memoize_window_attributes,
                two_step_frame_copy=self.config.pipeline.two_step_frame_copy))
        self.ipc_factor = ipc_factor

        # --- CPU threads ---------------------------------------------------------
        self.app_thread = machine.cpu.thread(f"{name}.app.main", owner=self.app_owner)
        self.app_send_thread = machine.cpu.thread(f"{name}.app.send", owner=self.app_owner)

        # --- network + client ------------------------------------------------------
        self.link = NetworkLink(env, spec=self.config.link,
                                rng=rng_of(f"{name}.net"), name=f"{name}.link")
        self.nic = Nic(env, self.link, name=f"{name}.nic")
        self.rfb = RfbProtocol()
        self.client = ClientProxy(env, self.link, rfb=self.rfb,
                                  instrumentation=self.instrumentation,
                                  config=self.config.client,
                                  rng=rng_of(f"{name}.client"),
                                  name=f"{name}.client")

        # --- VNC proxy ----------------------------------------------------------------
        self.frame_tags: dict[int, list[int]] = {}
        self.stage_timings = StageTimings()
        self.vnc = VncServer(
            env, machine.cpu, self.xdisplay, self.window,
            codec=TightCodec(rng=rng_of(f"{name}.codec")),
            nic=self.nic, rfb=self.rfb,
            instrumentation=self.instrumentation,
            config=self.config.vnc, rng=rng_of(f"{name}.vnc"),
            owner=self.proxy_owner, ipc_factor=ipc_factor,
            frame_tags=self.frame_tags, stage_timings=self.stage_timings)
        self.vnc.deliver_to_client = self._deliver_to_client
        self.client.server_inbox = self.vnc.input_inbox

        # --- measurement helpers ----------------------------------------------------------
        self.gpu_timer = GpuTimeQueryManager(
            env, self.gl,
            double_buffered=self.config.pipeline.double_buffered_queries)
        self.cpu_pmu_reader = CpuPmuReader(machine.cpu, machine.memory,
                                           owner=self.app_owner, llc=self.llc)
        self.gpu_pmu_reader = GpuPmuReader(self.render_context)

        # --- misc state -------------------------------------------------------------------
        self.rng = rng_of(f"{name}.session")
        self.app_send_queue: Store = Store(env)
        self.pcie_to_gpu_bytes = 0.0
        self.pcie_from_gpu_bytes = 0.0
        self.frames_produced = 0
        # Server FPS counts the frames *generated* at the server (the paper's
        # definition); the VNC proxy may coalesce some of them before they
        # reach the client, so client FPS can be lower.
        self._server_fps = FpsCounter(env, name=f"{name}.server_fps")
        self._started = False
        self._processes: list[Process] = []

    # -- convenience accessors ------------------------------------------------------
    @property
    def hooks(self):
        return self.instrumentation.hooks

    @property
    def tracker(self) -> InputTracker:
        return self.instrumentation.tracker

    @property
    def server_fps(self) -> FpsCounter:
        return self._server_fps

    @property
    def client_fps(self) -> FpsCounter:
        return self.client.client_fps

    def per_instance_pcie_to_gpu_bytes(self, elapsed: float) -> float:
        return self.pcie_to_gpu_bytes / max(elapsed, 1e-9)

    def per_instance_pcie_from_gpu_bytes(self, elapsed: float) -> float:
        return self.pcie_from_gpu_bytes / max(elapsed, 1e-9)

    # -- lifecycle ---------------------------------------------------------------------
    def start(self, agent) -> None:
        """Start every process of this session, driven by ``agent``."""
        if self._started:
            raise RuntimeError(f"session {self.name} already started")
        self._started = True
        self.vnc.start()
        self.client.start(agent)
        if self.config.slow_motion:
            self._processes.append(self.env.process(self._slow_motion_loop()))
        else:
            self._processes.append(self.env.process(self._application_loop()))
            self._processes.append(self.env.process(self._app_send_loop()))

    def _deliver_to_client(self, frame: Frame, tags: list[int],
                           compressed_bytes: float):
        return self.client.frame_queue.put((frame, tags, compressed_bytes))

    def _fire(self, hook: HookPoint, **kwargs) -> None:
        if self.measurement_enabled:
            self.hooks.fire(hook, timestamp=self.env.now, **kwargs)

    def _hook_overhead(self, fires: int = 1) -> float:
        return self.hooks.fire_overhead(fires) if self.measurement_enabled else 0.0

    # -- the application main loop (Figure 5 pipeline) --------------------------------------
    def _application_loop(self):
        """The application's main thread: AL, swap (RD), FC of the previous frame."""
        profile = self.app.profile
        last_advance = self.env.now
        previous: Optional[tuple[Frame, list[int]]] = None
        pending_copy: Optional[tuple[Process, Frame, list[int]]] = None

        while True:
            pass_started = self.env.now

            # Poll inputs delivered since the previous pass (hook4).
            events = self.xdisplay.drain_events(self.window)
            actions = [e.payload for e in events if isinstance(e.payload, Action)]
            tags = [e.tag for e in events if e.tag is not None]
            if events and self.measurement_enabled:
                for event in events:
                    self._fire(HookPoint.HOOK4, api="XNextEvent", tag=event.tag)
                    if event.tag is not None:
                        self.tracker.mark_hook(event.tag, "hook4", self.env.now)
            self.app.apply_actions(actions)

            # Stage AL: application logic for the new frame.
            al_started = self.env.now
            al_nominal = self.app.sample_al_time() + self._hook_overhead(1 + len(events))
            yield from self.app_thread.run(al_nominal, profile.al_cpu_profile)
            al_duration = self.env.now - al_started
            self.stage_timings.record(Stage.AL, al_duration)
            self.machine.memory.record_accesses(2e5 * al_nominal * 1e3, self.llc)

            dt = max(self.env.now - last_advance, 1e-3)
            last_advance = self.env.now
            frame = self.app.advance(dt)
            self.frames_produced += 1
            self._server_fps.record_frame()
            if tags:      # untagged frames must not leak dict entries
                self.frame_tags[frame.frame_id] = tags
            if self.measurement_enabled:
                self.tracker.record_stage_for_tags(tags, Stage.AL, al_duration)

            # Per-frame CPU→GPU upload (vertex/texture streaming).
            upload_bytes = self.app.sample_upload_bytes()
            yield from self.gl.upload(upload_bytes)
            self.pcie_to_gpu_bytes += upload_bytes

            # Hook5: swap buffers, submitting the GPU rendering of this frame.
            self._fire(HookPoint.HOOK5, api="glXSwapBuffers", frame_id=frame.frame_id)
            if self.measurement_enabled:
                self.gpu_timer.begin_frame(frame)
            else:
                self.gl.swap_buffers(frame)

            # Stage FC: copy the *previous* frame back from the GPU.
            if previous is not None:
                prev_frame, prev_tags = previous
                fc_started = self.env.now
                self._fire(HookPoint.HOOK6, api="glReadPixels",
                           frame_id=prev_frame.frame_id,
                           tag=prev_tags[-1] if prev_tags else None)
                if self.measurement_enabled and prev_tags:
                    prev_frame.embed_tag(prev_tags[-1])

                if self.config.pipeline.two_step_frame_copy:
                    # Optimization 2: finish the copy issued last pass, then
                    # start this frame's copy without waiting for it.
                    if pending_copy is not None:
                        done_process, done_frame, done_tags = pending_copy
                        yield from self.interposer.finish_frame_copy(done_process)
                        yield self.app_send_queue.put((done_frame, done_tags))
                    copy_process = self.interposer.start_frame_copy(
                        prev_frame, self.app_thread)
                    pending_copy = (copy_process, prev_frame, prev_tags)
                else:
                    yield from self.interposer.copy_frame(prev_frame, self.app_thread)
                    yield self.app_send_queue.put((prev_frame, prev_tags))

                fc_duration = self.env.now - fc_started
                self.stage_timings.record(Stage.FC, fc_duration)
                self.pcie_from_gpu_bytes += prev_frame.raw_bytes
                if self.measurement_enabled:
                    self.tracker.record_stage_for_tags(prev_tags, Stage.FC, fc_duration)
                    gpu_time = yield from self.gpu_timer.collect()
                    self._record_render_time(gpu_time, prev_frame, prev_tags)

            previous = (frame, tags)

            # Optional frame-rate cap (vsync); the paper runs uncapped.
            if self.config.max_fps is not None:
                minimum_pass = 1.0 / self.config.max_fps
                elapsed = self.env.now - pass_started
                if elapsed < minimum_pass:
                    yield self.env.timeout(minimum_pass - elapsed)

    def _record_render_time(self, gpu_time: Optional[float], frame: Frame,
                            tags: list[int]) -> None:
        if gpu_time is None:
            job = self.gl.completed_job(frame)
            gpu_time = job.gpu_time if job is not None else None
        if gpu_time is None:
            return
        self.stage_timings.record(Stage.RD, gpu_time)
        if self.measurement_enabled:
            for tag in tags:
                self.tracker.record_gpu_time(tag, gpu_time)
                self.tracker.record_stage(tag, Stage.RD, gpu_time)

    # -- the application's frame-send thread (stage AS, hook7) -------------------------------
    def _app_send_loop(self):
        while True:
            frame, tags = yield self.app_send_queue.get()
            as_started = self.env.now
            self._fire(HookPoint.HOOK7, api="XShmPutImage", frame_id=frame.frame_id,
                       tag=tags[-1] if tags else None)
            if self.ipc_factor > 1.0:
                extra = (self.config.x_config.shm_put_base_ms * 1e-3
                         * (self.ipc_factor - 1.0))
                yield from self.app_send_thread.run(
                    extra, self.app.profile.al_cpu_profile)
            yield from self.interposer.deliver_frame(frame, self.vnc.frame_inbox,
                                                     self.app_send_thread)
            as_duration = self.env.now - as_started
            self.stage_timings.record(Stage.AS, as_duration)
            if self.measurement_enabled:
                self.tracker.record_stage_for_tags(tags, Stage.AS, as_duration)

    # -- slow-motion benchmarking (fully serialized pipeline) ---------------------------------
    def _slow_motion_loop(self):
        """Slow-Motion methodology: one input / frame processed at a time.

        The whole pipeline runs sequentially in a single logical thread of
        control, so the benchmark and VNC proxy never contend and nothing
        overlaps — which is precisely why Slow-Motion under-estimates RTT
        on a system running at full capacity (Section 4).
        """
        profile = self.app.profile
        last_advance = self.env.now
        while True:
            events = self.xdisplay.drain_events(self.window)
            if not events:
                yield self.env.timeout(0.002)
                continue
            actions = [e.payload for e in events if isinstance(e.payload, Action)]
            tags = [e.tag for e in events if e.tag is not None]
            for event in events:
                self._fire(HookPoint.HOOK4, api="XNextEvent", tag=event.tag)
            self.app.apply_actions(actions)

            al_started = self.env.now
            yield from self.app_thread.run(self.app.sample_al_time(),
                                           profile.al_cpu_profile)
            al_duration = self.env.now - al_started

            dt = max(self.env.now - last_advance, 1e-3)
            last_advance = self.env.now
            frame = self.app.advance(dt)
            self.frames_produced += 1
            self._server_fps.record_frame()
            if tags:      # untagged frames must not leak dict entries
                self.frame_tags[frame.frame_id] = tags

            upload_bytes = self.app.sample_upload_bytes()
            yield from self.gl.upload(upload_bytes)
            self.pcie_to_gpu_bytes += upload_bytes

            self._fire(HookPoint.HOOK5, api="glXSwapBuffers", frame_id=frame.frame_id)
            self.gl.swap_buffers(frame)
            # Serialized: wait for the GPU before copying this same frame.
            job = yield from self.gl.wait_for_render(frame)

            fc_started = self.env.now
            self._fire(HookPoint.HOOK6, api="glReadPixels", frame_id=frame.frame_id)
            if self.measurement_enabled and tags:
                frame.embed_tag(tags[-1])
            yield from self.interposer.copy_frame(frame, self.app_thread)
            fc_duration = self.env.now - fc_started
            self.pcie_from_gpu_bytes += frame.raw_bytes

            as_started = self.env.now
            self._fire(HookPoint.HOOK7, api="XShmPutImage", frame_id=frame.frame_id)
            yield from self.interposer.deliver_frame(frame, self.vnc.frame_inbox,
                                                     self.app_send_thread)
            as_duration = self.env.now - as_started

            for stage, duration in ((Stage.AL, al_duration), (Stage.FC, fc_duration),
                                    (Stage.AS, as_duration)):
                self.stage_timings.record(stage, duration)
                if self.measurement_enabled:
                    self.tracker.record_stage_for_tags(tags, stage, duration)
            if job is not None:
                self._record_render_time(job.gpu_time, frame, tags)

    # -- teardown ---------------------------------------------------------------------------------
    def close(self) -> None:
        """Release the session's hardware registrations."""
        self.machine.memory.unregister_workload(self.llc.working_set_mb)
        self.machine.gpu.destroy_context(self.render_context)
