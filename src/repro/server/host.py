"""Multi-tenant cloud host: the paper's testbed in one object.

A :class:`CloudHost` owns one server machine and any number of benchmark
instances (each with its own client machine, NIC and driving agent), runs
them together for a simulated measurement interval, and produces one
:class:`~repro.core.pictor.PerformanceReport` per instance plus
machine-level aggregates (power, PCIe, memory-system counters).  Every
experiment in :mod:`repro.experiments` is expressed in terms of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.apps.base import Application3D
from repro.apps.registry import create_benchmark
from repro.agents.human import HumanPlayer
from repro.core.monitors import ResourceMonitor
from repro.core.pictor import PerformanceReport, Pictor, PictorConfig
from repro.hardware.machine import MachineSpec, ServerMachine
from repro.server.container import Container, ContainerRuntime
from repro.server.session import RenderingSession, SessionConfig
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams

__all__ = ["CloudHost", "HostConfig", "HostResult"]


@dataclass(frozen=True)
class HostConfig:
    """Configuration of one testbed run."""

    seed: int = 0
    machine_spec: MachineSpec = field(default_factory=MachineSpec.paper_server)
    pictor: PictorConfig = field(default_factory=PictorConfig)
    containerized: bool = False
    power_sampling_interval: float = 1.0
    monitor_interval: float = 1.0


@dataclass
class HostResult:
    """Everything a testbed run produced.

    Instances must stay picklable: the experiment execution subsystem
    (:mod:`repro.experiments.executor`) ships them back from worker
    processes and stores them in the on-disk result cache.  Anything
    attached to a report's ``extra`` channel therefore has to be plain
    data as well.
    """

    duration: float
    reports: list[PerformanceReport]
    average_power_watts: float
    per_instance_power_watts: float
    energy_joules: float
    machine_summary: dict[str, float]

    def report_for(self, benchmark: str, occurrence: int = 0) -> PerformanceReport:
        matches = [r for r in self.reports if r.benchmark == benchmark]
        if not matches:
            raise KeyError(f"no report for benchmark {benchmark!r}")
        return matches[occurrence]

    @property
    def mean_client_fps(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.client_fps for r in self.reports) / len(self.reports)

    @property
    def mean_server_fps(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.server_fps for r in self.reports) / len(self.reports)

    def as_dict(self) -> dict:
        """A plain-data summary of the run.

        Used to compare results produced by different execution backends
        (serial, worker process, cache replay) and to serialize runs for
        external tooling; deliberately excludes the ``extra`` channel,
        whose contents are backend-internal.
        """
        return {
            "duration": self.duration,
            "average_power_watts": self.average_power_watts,
            "per_instance_power_watts": self.per_instance_power_watts,
            "energy_joules": self.energy_joules,
            "machine_summary": dict(self.machine_summary),
            "reports": [report.as_dict() for report in self.reports],
        }


class CloudHost:
    """One server machine hosting one or more benchmark instances."""

    def __init__(self, config: Optional[HostConfig] = None,
                 env: Optional[Environment] = None):
        self.config = config or HostConfig()
        self.env = env or Environment()
        self.streams = RandomStreams(self.config.seed)
        self.machine = ServerMachine(self.env, self.config.machine_spec)
        self.pictor = Pictor(self.config.pictor)
        self.container_runtime = ContainerRuntime(
            rng=self.streams.stream("containers"))
        self.monitor = ResourceMonitor(self.env, self.machine,
                                       interval=self.config.monitor_interval)
        self.sessions: list[RenderingSession] = []
        self.agents: list = []
        self._ran = False

    # -- instance management ----------------------------------------------------------
    def add_instance(self, benchmark: str,
                     agent_factory: Optional[Callable[[Application3D], object]] = None,
                     session_config: Optional[SessionConfig] = None,
                     containerized: Optional[bool] = None,
                     name: Optional[str] = None) -> RenderingSession:
        """Add one benchmark instance (and its client) to the host.

        ``agent_factory`` builds the driving agent from the instantiated
        application; the default is the synthetic human player.
        """
        index = len(self.sessions)
        name = name or f"{benchmark}-{index}"
        app = create_benchmark(benchmark, rng=self.streams.stream(f"{name}.app"))

        containerized = (self.config.containerized if containerized is None
                         else containerized)
        container: Optional[Container] = None
        if containerized:
            container = self.container_runtime.create(name)

        session = RenderingSession(
            env=self.env, machine=self.machine, app=app, streams=self.streams,
            name=name, config=session_config, pictor=self.pictor,
            container=container, client_index=index)

        if agent_factory is None:
            agent = HumanPlayer(app, rng=self.streams.stream(f"{name}.human"))
        else:
            agent = agent_factory(app)
        self.sessions.append(session)
        self.agents.append(agent)
        return session

    # -- tracing ------------------------------------------------------------------------
    def attach_tracer(self):
        """Attach and return a :class:`~repro.sim.trace.TraceRecorder`.

        Must be called before :meth:`run`; the recorder then captures the
        host's full processed-event sequence (the golden-trace subsystem
        uses this to prove kernel equivalence on real testbed runs).

        The recorder subscribes to ``self.env.bus``, so it composes with
        any other observer — attach several recorders, or mix one with an
        :class:`~repro.core.monitors.EventRateMonitor`; each sees every
        dispatched event in subscription order.  Detach an individual
        recorder with its ``close()``; the others stay attached.
        """
        from repro.sim.trace import TraceRecorder
        return TraceRecorder(self.env)

    # -- running ------------------------------------------------------------------------
    def run(self, duration: float, warmup: float = 2.0,
            fast_forward=None) -> HostResult:
        """Run every instance for ``warmup + duration`` simulated seconds.

        Measurements (FPS counters, power sampling) cover only the
        measurement interval after the warm-up, mirroring the paper's note
        that results stabilize after the first minutes of a session.

        With an enabled ``fast_forward``
        (:class:`repro.sim.fastforward.FastForwardConfig`) the
        measurement interval runs under temporal upscaling: the exact
        kernel covers short micro windows and steady stretches are
        advanced in coarse macro jumps that credit the same counters.
        The warm-up is always micro-simulated in full.
        """
        if self._ran:
            raise RuntimeError("a CloudHost can only be run once; create a new one")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup cannot be negative")
        self._ran = True

        for session, agent in zip(self.sessions, self.agents):
            session.start(agent)
        self.machine.power_meter.set_instance_count(len(self.sessions))

        if warmup > 0:
            self.env.run(until=self.env.now + warmup)

        # Reset per-interval counters after warm-up.
        measure_start = self.env.now
        for session in self.sessions:
            session.server_fps.start()
            session.server_fps.timestamps.clear()
            session.client_fps.start()
            session.client_fps.timestamps.clear()
        self.monitor.start()
        self.env.process(self.machine.power_meter.sampling_process(
            self.config.power_sampling_interval))

        if fast_forward is not None and fast_forward.enabled:
            from repro.sim.fastforward import run_fast_forward
            run_fast_forward(self, measure_start, duration, fast_forward)
            # The macro jumps credited the interval's counters, so the
            # nominal (virtual) duration is the measurement horizon.
            elapsed = duration
        else:
            self.env.run(until=measure_start + duration)
            elapsed = self.env.now - measure_start

        reports = [self.pictor.build_report(session, elapsed)
                   for session in self.sessions]
        instances = max(len(self.sessions), 1)
        average_power = self.machine.power_meter.average_power()
        result = HostResult(
            duration=elapsed,
            reports=reports,
            average_power_watts=average_power,
            per_instance_power_watts=average_power / instances,
            energy_joules=average_power * elapsed,
            machine_summary=self.machine.summary(elapsed),
        )
        return result
