"""Containerization model (the NVidia-Docker analogue).

Section 5.4 of the paper repeats the characterization with each benchmark
instance and its VNC server inside a Docker container and finds:

* small average overheads (≈1.3% RTT, ≈1.5% server FPS),
* occasional spikes up to ~8.5% RTT / 6% FPS, concentrated in the
  IPC-heavy stages (PS and AS),
* GPU rendering time up by ~2.9% on average (GPU virtualization),
* and, in a few configurations, *negative* overhead — containerization's
  cgroup isolation reduces interference between the benchmark and the VNC
  proxy enough to outweigh its cost.

The container model reproduces exactly those levers: a per-container
multiplier on IPC costs, a GPU-virtualization overhead on render time,
and an isolation bonus that slightly reduces the working-set pressure the
contained workload exerts on (and suffers from) the shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.randomness import StreamRandom

__all__ = ["Container", "ContainerConfig", "ContainerRuntime"]


@dataclass(frozen=True)
class ContainerConfig:
    """Statistical description of container overheads."""

    # IPC (Unix sockets, SHM segments, namespace traversal) cost multiplier.
    ipc_overhead_mean: float = 0.035
    ipc_overhead_std: float = 0.030
    ipc_overhead_max: float = 0.12
    # GPU virtualization overhead applied to render times.
    gpu_overhead_mean: float = 0.029
    gpu_overhead_std: float = 0.020
    gpu_overhead_max: float = 0.08
    # Isolation bonus: fraction by which cgroup/cpuset isolation reduces the
    # contained workload's effective cache pressure contribution.
    isolation_bonus_mean: float = 0.05
    isolation_bonus_std: float = 0.03


@dataclass
class Container:
    """One instantiated container with sampled overhead factors."""

    name: str
    ipc_overhead: float
    gpu_overhead: float
    isolation_bonus: float

    @property
    def ipc_factor(self) -> float:
        """Multiplier applied to IPC-stage costs (PS, AS, XGetWindowAttributes)."""
        return 1.0 + self.ipc_overhead

    @property
    def working_set_factor(self) -> float:
        """Multiplier applied to the contained workload's cache-pressure share."""
        return max(0.0, 1.0 - self.isolation_bonus)


class ContainerRuntime:
    """Creates containers with per-instance sampled overheads.

    Each ``create`` draws fresh overheads, which is what produces the
    spread (including the occasional high-overhead and negative-overhead
    cases) seen across benchmarks in Figure 20.
    """

    def __init__(self, config: Optional[ContainerConfig] = None,
                 rng: Optional[StreamRandom] = None):
        self.config = config or ContainerConfig()
        self.rng = rng or StreamRandom(0)
        self.containers: list[Container] = []

    def create(self, name: str) -> Container:
        cfg = self.config
        container = Container(
            name=name,
            ipc_overhead=self.rng.truncated_normal(
                cfg.ipc_overhead_mean, cfg.ipc_overhead_std,
                low=0.0, high=cfg.ipc_overhead_max),
            gpu_overhead=self.rng.truncated_normal(
                cfg.gpu_overhead_mean, cfg.gpu_overhead_std,
                low=0.0, high=cfg.gpu_overhead_max),
            isolation_bonus=self.rng.truncated_normal(
                cfg.isolation_bonus_mean, cfg.isolation_bonus_std,
                low=0.0, high=0.25),
        )
        self.containers.append(container)
        return container
