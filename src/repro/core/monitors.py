"""Frame-rate counters and system-level resource monitors.

Pictor measures FPS by counting frames at the server proxy (frames
generated) and at the client proxy (frames delivered), and samples
system-level resource usage — CPU/GPU utilization, memory, PCIe and
network bandwidth — from the OS and driver interfaces (Section 3.2).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hardware.machine import ServerMachine
from repro.sim.engine import Environment

__all__ = ["EventRateMonitor", "FpsCounter", "ResourceMonitor",
           "ResourceSample"]


class FpsCounter:
    """Counts frames observed at one point of the pipeline.

    ``record_frame`` is called once per frame; FPS can then be reported
    either for the whole run or for a sliding window of recent frames.
    """

    def __init__(self, env: Environment, name: str = "fps"):
        self.env = env
        self.name = name
        self.timestamps: list[float] = []
        # Frames credited by fast-forward macro jumps (rate x skipped
        # seconds); they have no timestamps, so windowed/interframe views
        # stay micro-only while totals cover the whole virtual interval.
        self.synthetic_frames = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> None:
        """Mark the start of the measurement interval (defaults to first frame)."""
        self._started_at = self.env.now

    def record_frame(self) -> None:
        if self._started_at is None:
            self._started_at = self.env.now
        self.timestamps.append(self.env.now)

    def record_synthetic(self, frames: float) -> None:
        """Credit ``frames`` frames skipped over by a macro jump."""
        if frames < 0:
            raise ValueError("synthetic frame count cannot be negative")
        self.synthetic_frames += frames

    @property
    def frame_count(self) -> float:
        count = len(self.timestamps) + self.synthetic_frames
        return int(count) if not self.synthetic_frames else count

    def fps(self, elapsed: Optional[float] = None) -> float:
        """Average frames per second over the measurement interval."""
        total = len(self.timestamps) + self.synthetic_frames
        if not total:
            return 0.0
        if elapsed is None:
            start = self._started_at
            if start is None:
                if not self.timestamps:
                    return 0.0
                start = self.timestamps[0]
            elapsed = self.env.now - start
        if elapsed <= 0:
            return 0.0
        return total / elapsed

    def windowed_fps(self, window: float = 1.0) -> float:
        """FPS over the most recent ``window`` seconds."""
        if window <= 0:
            raise ValueError("window must be positive")
        # ``timestamps`` is appended in simulation-time order, so the
        # window boundary is a bisect, not a scan-and-copy of the whole
        # history (this gets called per sampling tick on runs recording
        # hundreds of thousands of frames).
        timestamps = self.timestamps
        cutoff = self.env.now - window
        return (len(timestamps) - bisect_left(timestamps, cutoff)) / window

    def interframe_times(self) -> list[float]:
        if len(self.timestamps) < 2:
            return []
        return list(np.diff(self.timestamps))


class EventRateMonitor:
    """Tallies processed kernel events by type, via the event bus.

    A lightweight consumer of the kernel's observability seam: it
    subscribes to ``env.bus`` alongside any trace recorder (subscribers
    chain, they do not replace each other) and counts every dispatched
    event, giving experiments a cheap "kernel pressure" signal — events
    per simulated second, broken down by event type — without recording
    a full trace.  Detach with :meth:`close`.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.counts: dict[str, int] = {}
        self.total = 0
        self._started_at = env.now
        self._closed = False
        # The bus matches subscribers by identity; bind the method once
        # so close() hands back the exact object subscribe() saw.
        self._subscription = self._observe
        env.bus.subscribe(self._subscription)

    def _observe(self, now: float, event) -> None:
        self.total += 1
        name = event.__class__.__name__
        self.counts[name] = self.counts.get(name, 0) + 1

    def events_per_second(self) -> float:
        """Mean dispatch rate since the monitor attached."""
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.total / elapsed

    def close(self) -> None:
        """Detach from the bus (idempotent); counts stay readable."""
        if not self._closed:
            self._closed = True
            self.env.bus.unsubscribe(self._subscription)


@dataclass
class ResourceSample:
    """One periodic snapshot of server-level resource usage."""

    timestamp: float
    cpu_utilization_cores: float
    gpu_utilization: float
    gpu_memory_mb: float
    pcie_to_gpu_bytes_per_s: float
    pcie_from_gpu_bytes_per_s: float
    l3_miss_rate: float
    cpu_by_owner: dict[str, float] = field(default_factory=dict)


class ResourceMonitor:
    """Periodically samples a server machine's resource usage.

    The monitor runs as a simulation process (like ``nvidia-smi`` /
    ``/proc`` polling in the real framework) and keeps the full sample
    series so experiments can report averages or time series.
    """

    def __init__(self, env: Environment, machine: ServerMachine,
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.env = env
        self.machine = machine
        self.interval = interval
        self.samples: list[ResourceSample] = []
        self._process = None

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._process is None:
            self._process = self.env.process(self._run())

    def _run(self):
        while True:
            self.sample()
            yield self.env.timeout(self.interval)

    def sample(self) -> ResourceSample:
        summary = self.machine.summary()
        sample = ResourceSample(
            timestamp=self.env.now,
            cpu_utilization_cores=summary["cpu_utilization_cores"],
            gpu_utilization=summary["gpu_utilization"],
            gpu_memory_mb=summary["gpu_memory_mb"],
            pcie_to_gpu_bytes_per_s=summary["pcie_to_gpu_bytes_per_s"],
            pcie_from_gpu_bytes_per_s=summary["pcie_from_gpu_bytes_per_s"],
            l3_miss_rate=summary["l3_miss_rate"],
            cpu_by_owner=self.machine.cpu.utilization_by_owner(max(self.env.now, 1e-9)),
        )
        self.samples.append(sample)
        return sample

    # -- aggregates ---------------------------------------------------------------
    def mean_cpu_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.cpu_utilization_cores for s in self.samples]))

    def mean_gpu_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.gpu_utilization for s in self.samples]))

    def final_sample(self) -> ResourceSample:
        if not self.samples:
            return self.sample()
        return self.samples[-1]
