"""The top-level Pictor facade.

``Pictor`` bundles the measurement framework's configuration and builds
the per-session instrumentation (hook registry, input tracker, GPU time
queries) that the rendering sessions attach to, without requiring any
modification of the benchmark applications.  After a run it assembles a
:class:`PerformanceReport` combining everything the paper's evaluation
reports for a benchmark: RTT distribution and breakdowns, server/client
FPS, resource utilization, and architecture-level counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.hooks import HookRegistry
from repro.core.measurements import LatencyStats
from repro.core.tags import TagGenerator
from repro.core.tracker import InputTracker

__all__ = ["PerformanceReport", "Pictor", "PictorConfig", "SessionInstrumentation"]


@dataclass(frozen=True)
class PictorConfig:
    """Configuration of the measurement framework."""

    measurement_enabled: bool = True
    double_buffered_queries: bool = True
    hook_overhead_seconds: float = 80e-6
    monitor_interval_seconds: float = 1.0

    def disabled(self) -> "PictorConfig":
        """The native (uninstrumented) configuration used for overhead runs."""
        return PictorConfig(
            measurement_enabled=False,
            double_buffered_queries=self.double_buffered_queries,
            hook_overhead_seconds=self.hook_overhead_seconds,
            monitor_interval_seconds=self.monitor_interval_seconds,
        )


@dataclass
class SessionInstrumentation:
    """The per-session measurement objects Pictor installs."""

    hooks: HookRegistry
    tracker: InputTracker
    double_buffered_queries: bool = True

    @property
    def enabled(self) -> bool:
        return self.hooks.enabled


@dataclass
class PerformanceReport:
    """Everything measured for one benchmark instance during one run."""

    benchmark: str
    duration: float
    rtt: LatencyStats
    rtt_breakdown: dict[str, float] = field(default_factory=dict)
    server_breakdown: dict[str, float] = field(default_factory=dict)
    application_breakdown: dict[str, float] = field(default_factory=dict)
    server_fps: float = 0.0
    client_fps: float = 0.0
    cpu_utilization_cores: float = 0.0
    vnc_cpu_utilization_cores: float = 0.0
    gpu_utilization: float = 0.0
    cpu_memory_mb: float = 0.0
    gpu_memory_mb: float = 0.0
    network_send_mbps: float = 0.0
    network_receive_mbps: float = 0.0
    pcie_to_gpu_gbps: float = 0.0
    pcie_from_gpu_gbps: float = 0.0
    cpu_pmu: dict[str, float] = field(default_factory=dict)
    gpu_pmu: dict[str, Optional[float]] = field(default_factory=dict)
    inputs_tracked: int = 0
    inputs_completed: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def mean_rtt_ms(self) -> float:
        return self.rtt.mean * 1e3

    def as_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "duration": self.duration,
            "rtt": self.rtt.as_dict(),
            "rtt_breakdown": dict(self.rtt_breakdown),
            "server_breakdown": dict(self.server_breakdown),
            "application_breakdown": dict(self.application_breakdown),
            "server_fps": self.server_fps,
            "client_fps": self.client_fps,
            "cpu_utilization_cores": self.cpu_utilization_cores,
            "vnc_cpu_utilization_cores": self.vnc_cpu_utilization_cores,
            "gpu_utilization": self.gpu_utilization,
            "cpu_memory_mb": self.cpu_memory_mb,
            "gpu_memory_mb": self.gpu_memory_mb,
            "network_send_mbps": self.network_send_mbps,
            "network_receive_mbps": self.network_receive_mbps,
            "pcie_to_gpu_gbps": self.pcie_to_gpu_gbps,
            "pcie_from_gpu_gbps": self.pcie_from_gpu_gbps,
            "cpu_pmu": dict(self.cpu_pmu),
            "gpu_pmu": dict(self.gpu_pmu),
            "inputs_tracked": self.inputs_tracked,
            "inputs_completed": self.inputs_completed,
        }


class Pictor:
    """Factory for session instrumentation and performance reports."""

    def __init__(self, config: Optional[PictorConfig] = None):
        self.config = config or PictorConfig()

    def instrument_session(self, client_index: int = 0) -> SessionInstrumentation:
        """Create the measurement objects for one benchmark instance.

        ``client_index`` namespaces the input tags so several clients
        driving the same server never collide.
        """
        hooks = HookRegistry(enabled=self.config.measurement_enabled,
                             overhead_per_fire=self.config.hook_overhead_seconds)
        tracker = InputTracker(TagGenerator(namespace=client_index))
        return SessionInstrumentation(
            hooks=hooks,
            tracker=tracker,
            double_buffered_queries=self.config.double_buffered_queries,
        )

    def build_report(self, session: Any, duration: float) -> PerformanceReport:
        """Assemble a report from a finished rendering session.

        ``session`` is duck-typed: any object exposing the attributes a
        :class:`repro.server.session.RenderingSession` exposes (tracker,
        FPS counters, machine handles, PMU readers) can be reported on.
        """
        tracker: InputTracker = session.tracker
        report = PerformanceReport(
            benchmark=session.app.profile.short_name,
            duration=duration,
            rtt=tracker.rtt_stats(),
            rtt_breakdown=tracker.rtt_breakdown(),
            server_breakdown=tracker.server_time_breakdown(),
            application_breakdown=tracker.application_time_breakdown(),
            server_fps=session.server_fps.fps(duration),
            client_fps=session.client_fps.fps(duration),
            inputs_tracked=tracker.tracked_inputs,
            inputs_completed=tracker.completed_inputs,
        )
        elapsed = max(duration, 1e-9)
        by_owner = session.machine.cpu.utilization_by_owner(elapsed)
        report.cpu_utilization_cores = by_owner.get(session.app_owner, 0.0)
        report.vnc_cpu_utilization_cores = by_owner.get(session.proxy_owner, 0.0)
        report.gpu_utilization = session.render_context.utilization(elapsed)
        report.cpu_memory_mb = session.app.profile.cpu_memory_mb
        report.gpu_memory_mb = session.app.profile.gpu_profile.gpu_memory_mb
        report.network_send_mbps = session.link.bandwidth_usage_mbps(
            session.link.DOWNLINK, elapsed)
        report.network_receive_mbps = session.link.bandwidth_usage_mbps(
            session.link.UPLINK, elapsed)
        report.pcie_to_gpu_gbps = session.per_instance_pcie_to_gpu_bytes(elapsed) / 1e9
        report.pcie_from_gpu_gbps = session.per_instance_pcie_from_gpu_bytes(elapsed) / 1e9
        report.cpu_pmu = session.cpu_pmu_reader.read().as_dict()
        gpu_sample = session.gpu_pmu_reader.read()
        report.gpu_pmu = {
            "l2_miss_rate": gpu_sample.l2_miss_rate,
            "texture_miss_rate": gpu_sample.texture_miss_rate,
        }
        report.extra["gpu_render_time_mean"] = session.gpu_timer.mean_gpu_time()
        report.extra["hook_fires"] = session.hooks.total_fires()
        # Expose the tracker so downstream methodologies (e.g. Chen et al.'s
        # stage-sum reconstruction) can re-derive their own estimates from
        # the same run.
        report.extra["tracker"] = tracker
        report.extra["stage_timings"] = session.stage_timings
        return report
