"""API-hook registry: Pictor's interception layer.

Pictor never modifies the 3D applications.  Instead it interposes on the
standard APIs every Linux 3D application already calls — X event
delivery, GL buffer swaps, pixel readback, shared-memory image puts, and
the proxies' network send/receive paths — at ten well-defined hook points
(Figure 4).  Each hook can (a) timestamp the call, (b) extract or attach
an input tag, and (c) trigger auxiliary measurements such as GPU time
queries.

The registry below is that interception layer for the simulated stack:
pipeline components *fire* hook points as they execute the corresponding
API calls, and the measurement framework *installs* callbacks on them.
Firing a hook costs a small amount of CPU time (the interception and
timestamping work), which is how the framework's ~2.7% FPS overhead
arises; when measurement is disabled the hooks are inert and free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["HookPoint", "HookRegistry", "HOOK_APIS"]


class HookPoint(enum.Enum):
    """The ten hook points of Figure 4, client → server → client."""

    HOOK1 = "hook1"    # client proxy: tag a captured user input
    HOOK2 = "hook2"    # server proxy: extract tag from the network message
    HOOK3 = "hook3"    # server proxy: forward input (+tag) to the application
    HOOK4 = "hook4"    # application: receive input (XNextEvent / glutKeyboardFunc)
    HOOK5 = "hook5"    # application: start GPU rendering (glXSwapBuffers)
    HOOK6 = "hook6"    # interposer: frame readback (glReadBuffer / glReadPixels)
    HOOK7 = "hook7"    # interposer: frame hand-off (XShmPutImage / glMapBuffer)
    HOOK8 = "hook8"    # server proxy: receive tagged frame, restore pixels
    HOOK9 = "hook9"    # server proxy: frame compressed and queued for sending
    HOOK10 = "hook10"  # client proxy: frame received, match tag with its input


#: The concrete APIs each hook intercepts (Table 1 plus the proxy-side hooks
#: identified from the TurboVNC / client source).
HOOK_APIS: dict[HookPoint, tuple[str, ...]] = {
    HookPoint.HOOK1: ("client_capture_input",),
    HookPoint.HOOK2: ("rfbProcessClientMessage",),
    HookPoint.HOOK3: ("XTestFakeKeyEvent", "XTestFakeMotionEvent"),
    HookPoint.HOOK4: ("XNextEvent", "glutKeyboardFunc"),
    HookPoint.HOOK5: ("glXSwapBuffers", "glutSwapBuffers"),
    HookPoint.HOOK6: ("glReadBuffer", "glReadPixels"),
    HookPoint.HOOK7: ("XShmPutImage", "glMapBuffer"),
    HookPoint.HOOK8: ("rfbTranslateFrame",),
    HookPoint.HOOK9: ("rfbSendFramebufferUpdate",),
    HookPoint.HOOK10: ("client_display_frame",),
}


@dataclass
class HookEvent:
    """One recorded hook invocation."""

    hook: HookPoint
    timestamp: float
    api: str
    tag: Optional[int] = None
    frame_id: Optional[int] = None
    context: dict[str, Any] = field(default_factory=dict)


class HookRegistry:
    """Holds installed hook callbacks and records every firing.

    ``overhead_per_fire`` is the CPU time one interception costs (parsing
    the call, reading the clock, touching the tag table).  Components that
    fire hooks from CPU-charged stages add ``registry.fire_overhead()`` to
    their stage time so enabling measurement slows the pipeline down by a
    small, realistic amount.
    """

    def __init__(self, enabled: bool = True, overhead_per_fire: float = 80e-6):
        if overhead_per_fire < 0:
            raise ValueError("hook overhead cannot be negative")
        self.enabled = enabled
        self.overhead_per_fire = overhead_per_fire
        self._callbacks: dict[HookPoint, list[Callable[[HookEvent], None]]] = {
            hook: [] for hook in HookPoint}
        self.events: list[HookEvent] = []
        self.fire_counts: dict[HookPoint, int] = {hook: 0 for hook in HookPoint}

    # -- installation -----------------------------------------------------------
    def install(self, hook: HookPoint,
                callback: Callable[[HookEvent], None]) -> None:
        """Install a callback to run whenever ``hook`` fires."""
        self._callbacks[hook].append(callback)

    def uninstall_all(self, hook: Optional[HookPoint] = None) -> None:
        if hook is None:
            for callbacks in self._callbacks.values():
                callbacks.clear()
        else:
            self._callbacks[hook].clear()

    # -- firing -------------------------------------------------------------------
    def fire(self, hook: HookPoint, timestamp: float, api: str = "",
             tag: Optional[int] = None, frame_id: Optional[int] = None,
             **context: Any) -> Optional[HookEvent]:
        """Fire a hook point; returns the recorded event (None when disabled)."""
        if not self.enabled:
            return None
        if not api:
            api = HOOK_APIS[hook][0]
        event = HookEvent(hook=hook, timestamp=timestamp, api=api, tag=tag,
                          frame_id=frame_id, context=dict(context))
        self.events.append(event)
        self.fire_counts[hook] += 1
        for callback in self._callbacks[hook]:
            callback(event)
        return event

    def fire_overhead(self, fires: int = 1) -> float:
        """CPU seconds consumed by ``fires`` hook interceptions."""
        if not self.enabled:
            return 0.0
        return self.overhead_per_fire * fires

    # -- queries ----------------------------------------------------------------------
    def events_for_tag(self, tag: int) -> list[HookEvent]:
        return [event for event in self.events if event.tag == tag]

    def events_for_hook(self, hook: HookPoint) -> list[HookEvent]:
        return [event for event in self.events if event.hook is hook]

    def total_fires(self) -> int:
        return sum(self.fire_counts.values())
