"""Input tags and the per-input tracking record.

Every user input captured at the client proxy is given a unique tag
(hook1).  The tag travels with the input to the server, is saved by the
application's input hook, embedded into the pixels of the response frame
during readback, restored and extracted by the server proxy, and finally
matched back to the original input when the frame arrives at the client
(hook10).  The :class:`InputRecord` accumulates the timestamps and stage
durations observed along that path; the round-trip time and its
breakdown fall out of it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.graphics.pipeline import Stage

__all__ = ["InputRecord", "TagGenerator"]


class TagGenerator:
    """Allocates unique, monotonically increasing input tags.

    Each client proxy owns one generator; a namespace offset keeps tags
    globally unique when several clients run against the same server.
    """

    def __init__(self, namespace: int = 0, capacity: int = 1_000_000):
        if namespace < 0:
            raise ValueError("namespace must be non-negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.namespace = namespace
        self.capacity = capacity
        self._next = 0

    def next_tag(self) -> int:
        if self._next >= self.capacity:
            raise OverflowError(
                f"tag namespace {self.namespace} exhausted after {self.capacity} tags")
        tag = self.namespace * self.capacity + self._next
        self._next += 1
        return tag

    @property
    def issued(self) -> int:
        return self._next


@dataclass
class InputRecord:
    """Everything Pictor learns about one tracked user input."""

    tag: int
    kind: str
    created_at: float                       # hook1 timestamp at the client
    payload: object = None
    #: Timestamps of each hook along the path, keyed by hook name.
    hook_timestamps: dict[str, float] = field(default_factory=dict)
    #: Durations of each pipeline stage attributed to this input, seconds.
    stage_durations: dict[str, float] = field(default_factory=dict)
    #: GPU time spent rendering the response frame (from the GL time query).
    gpu_render_time: Optional[float] = None
    response_frame_id: Optional[int] = None
    completed_at: Optional[float] = None    # hook10 timestamp at the client

    # -- recording ------------------------------------------------------------
    def mark_hook(self, hook_name: str, timestamp: float) -> None:
        self.hook_timestamps[hook_name] = timestamp

    def record_stage(self, stage: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for stage {stage}: {duration}")
        self.stage_durations[stage] = self.stage_durations.get(stage, 0.0) + duration

    def complete(self, timestamp: float, frame_id: Optional[int] = None) -> None:
        self.completed_at = timestamp
        if frame_id is not None:
            self.response_frame_id = frame_id

    # -- derived quantities --------------------------------------------------------
    @property
    def is_complete(self) -> bool:
        return self.completed_at is not None

    @property
    def rtt(self) -> Optional[float]:
        """Round-trip time from capture (hook1) to display (hook10)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    @property
    def server_time(self) -> Optional[float]:
        """Time spent on the server (all stages from SP to CP)."""
        server_stages = set(Stage.SERVER_STAGES)
        observed = [self.stage_durations[s] for s in self.stage_durations
                    if s in server_stages and s != Stage.RD]
        if not observed:
            return None
        return sum(observed)

    @property
    def network_time(self) -> Optional[float]:
        cs = self.stage_durations.get(Stage.CS)
        ss = self.stage_durations.get(Stage.SS)
        if cs is None and ss is None:
            return None
        return (cs or 0.0) + (ss or 0.0)

    def breakdown(self) -> dict[str, float]:
        """Stage → seconds, for RTT decomposition figures."""
        return dict(self.stage_durations)
