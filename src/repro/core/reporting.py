"""Plain-text report formatting and result merging.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; this module keeps that formatting in one place so every
harness produces consistent, readable output.  It also hosts the small
numeric helpers that merge per-instance measurements coming back from
(possibly parallel) testbed runs into the aggregates the figures plot.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_percentage", "format_ms", "format_breakdown",
           "format_rows", "mean_breakdown"]


def format_ms(seconds: float, digits: int = 1) -> str:
    """Format a duration in seconds as milliseconds."""
    return f"{seconds * 1e3:.{digits}f}ms"


def format_percentage(fraction: float, digits: int = 1) -> str:
    """Format a fraction (0.57 → '57.0%')."""
    return f"{fraction * 100:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_breakdown(breakdown: Mapping[str, float], unit: str = "ms",
                     scale: float = 1e3) -> str:
    """Render a stage → duration mapping as 'AL=12.3ms FC=20.1ms ...'."""
    parts = [f"{stage}={value * scale:.1f}{unit}" for stage, value in breakdown.items()]
    return " ".join(parts)


def mean_breakdown(breakdowns: Sequence[Mapping[str, float]],
                   scale: float = 1.0) -> dict[str, float]:
    """Merge per-instance stage breakdowns into one mean breakdown.

    Instances missing a stage contribute zero for it, matching how the
    paper averages per-stage times across colocated instances.
    """
    keys = {key for breakdown in breakdowns for key in breakdown}
    return {key: float(np.mean([b.get(key, 0.0) for b in breakdowns])) * scale
            for key in sorted(keys)}


def _format_cell(value: object) -> str:
    if isinstance(value, bool) or value is None:
        return {True: "yes", False: "-", None: "n/a"}[value]
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_rows(rows: Sequence[Mapping[str, object]], title: str = "",
                columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row mappings (one figure's output) as a table.

    Used by the ``python -m repro.experiments`` CLI, which must print
    whatever row shape a figure aggregate produces.  Columns default to
    the union of keys in first-appearance order so merged results from
    different worker processes line up.
    """
    if not rows:
        return format_table(["(empty)"], [], title=title)
    if columns is None:
        columns = list(dict.fromkeys(key for row in rows for key in row))
    cells = [[_format_cell(row.get(column, "")) for column in columns]
             for row in rows]
    return format_table(list(columns), cells, title=title)
