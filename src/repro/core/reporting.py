"""Plain-text report formatting.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; this module keeps that formatting in one place so every
harness produces consistent, readable output.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_percentage", "format_ms", "format_breakdown"]


def format_ms(seconds: float, digits: int = 1) -> str:
    """Format a duration in seconds as milliseconds."""
    return f"{seconds * 1e3:.{digits}f}ms"


def format_percentage(fraction: float, digits: int = 1) -> str:
    """Format a fraction (0.57 → '57.0%')."""
    return f"{fraction * 100:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_breakdown(breakdown: Mapping[str, float], unit: str = "ms",
                     scale: float = 1e3) -> str:
    """Render a stage → duration mapping as 'AL=12.3ms FC=20.1ms ...'."""
    parts = [f"{stage}={value * scale:.1f}{unit}" for stage, value in breakdown.items()]
    return " ".join(parts)
