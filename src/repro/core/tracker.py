"""Input tracking: associating user inputs with their response frames.

The tracker is the heart of the performance analysis framework.  It owns
the tag → :class:`InputRecord` table, listens to the hook registry, and
answers the questions the evaluation asks: per-input RTT distributions
(Figure 6), RTT breakdowns into network and server components
(Figure 11), server-time breakdowns (Figure 12), and application-time
breakdowns (Figure 13).

It also understands the pipelined rendering of Figure 5: the response
frame of an input rendered in pass *i* is copied and delivered during
pass *i+1*, so an input's record stays open across two pipeline passes
until hook10 finally matches the tagged frame at the client.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.measurements import LatencyStats
from repro.core.tags import InputRecord, TagGenerator
from repro.graphics.pipeline import Stage

__all__ = ["InputTracker"]


class InputTracker:
    """Tracks every tagged input from capture to display."""

    def __init__(self, tag_generator: Optional[TagGenerator] = None):
        self.tags = tag_generator or TagGenerator()
        self.records: dict[int, InputRecord] = {}
        #: Inputs whose response frame has not yet reached the client.
        self.outstanding: set[int] = set()
        # Inputs credited by fast-forward macro jumps (rate x skipped
        # seconds, rounded); they carry no per-record detail, so the RTT
        # and stage statistics stay micro-window sample means.
        self.synthetic_tracked = 0
        self.synthetic_completed = 0

    def record_synthetic(self, tracked: int, completed: int) -> None:
        """Credit inputs skipped over by a macro jump."""
        if tracked < 0 or completed < 0:
            raise ValueError("synthetic input counts cannot be negative")
        self.synthetic_tracked += tracked
        self.synthetic_completed += completed

    # -- record lifecycle -------------------------------------------------------
    def create_record(self, kind: str, timestamp: float,
                      payload: object = None) -> InputRecord:
        """Hook1: a new input was captured at the client; give it a tag."""
        tag = self.tags.next_tag()
        record = InputRecord(tag=tag, kind=kind, created_at=timestamp,
                             payload=payload)
        record.mark_hook("hook1", timestamp)
        self.records[tag] = record
        self.outstanding.add(tag)
        return record

    def get(self, tag: int) -> InputRecord:
        try:
            return self.records[tag]
        except KeyError:
            raise KeyError(f"no record for tag {tag}") from None

    def mark_hook(self, tag: int, hook_name: str, timestamp: float) -> None:
        self.get(tag).mark_hook(hook_name, timestamp)

    def record_stage(self, tag: int, stage: str, duration: float) -> None:
        self.get(tag).record_stage(stage, duration)

    def record_stage_for_tags(self, tags: Iterable[int], stage: str,
                              duration: float) -> None:
        """Charge one stage duration to every input it served.

        A single pipeline pass typically serves several inputs (all those
        polled before the frame's application logic), so stages like AL and
        FC are attributed to each of them.
        """
        for tag in tags:
            self.record_stage(tag, stage, duration)

    def record_gpu_time(self, tag: int, gpu_time: float) -> None:
        self.get(tag).gpu_render_time = gpu_time

    def complete(self, tag: int, timestamp: float,
                 frame_id: Optional[int] = None) -> InputRecord:
        """Hook10: the tagged response frame arrived back at the client."""
        record = self.get(tag)
        record.mark_hook("hook10", timestamp)
        record.complete(timestamp, frame_id)
        self.outstanding.discard(tag)
        return record

    # -- aggregate views -------------------------------------------------------------
    def completed_records(self) -> list[InputRecord]:
        return [r for r in self.records.values() if r.is_complete]

    def rtts(self) -> list[float]:
        return [r.rtt for r in self.completed_records() if r.rtt is not None]

    def rtt_stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.rtts())

    def mean_rtt(self) -> float:
        rtts = self.rtts()
        return float(np.mean(rtts)) if rtts else 0.0

    def stage_means(self) -> dict[str, float]:
        """Mean duration of every observed stage across completed inputs."""
        sums: dict[str, list[float]] = {}
        for record in self.completed_records():
            for stage, duration in record.stage_durations.items():
                sums.setdefault(stage, []).append(duration)
        return {stage: float(np.mean(values)) for stage, values in sums.items()}

    def rtt_breakdown(self) -> dict[str, float]:
        """Mean RTT split into input-network, server, and frame-network parts."""
        means = self.stage_means()
        server = sum(means.get(stage, 0.0) for stage in Stage.SERVER_STAGES
                     if stage != Stage.RD)
        return {
            "input_network": means.get(Stage.CS, 0.0),
            "server": server,
            "frame_network": means.get(Stage.SS, 0.0),
            "client": means.get(Stage.CD, 0.0),
        }

    def server_time_breakdown(self) -> dict[str, float]:
        """Mean server time split the way Figure 12 presents it."""
        means = self.stage_means()
        application = sum(means.get(stage, 0.0)
                          for stage in (Stage.AL, Stage.FC))
        return {
            "proxy_send_input": means.get(Stage.PS, 0.0),
            "application": application,
            "app_send_frame": means.get(Stage.AS, 0.0),
            "compression": means.get(Stage.CP, 0.0),
        }

    def application_time_breakdown(self) -> dict[str, float]:
        """Mean application time split the way Figure 13 presents it."""
        means = self.stage_means()
        gpu_times = [r.gpu_render_time for r in self.completed_records()
                     if r.gpu_render_time is not None]
        return {
            "application_logic": means.get(Stage.AL, 0.0),
            "frame_copy": means.get(Stage.FC, 0.0),
            "gpu_render": float(np.mean(gpu_times)) if gpu_times else means.get(Stage.RD, 0.0),
        }

    @property
    def tracked_inputs(self) -> int:
        return len(self.records) + self.synthetic_tracked

    @property
    def completed_inputs(self) -> int:
        return len(self.completed_records()) + self.synthetic_completed
