"""Pictor's core: the performance-analysis framework and top-level API.

This package implements the paper's primary contribution on the
measurement side (Section 3.2):

* :mod:`repro.core.hooks` — the API-hook registry used to intercept
  GL/X/proxy calls without modifying applications (Figure 4, Table 1);
* :mod:`repro.core.tags` / :mod:`repro.core.tracker` — tag-based input
  tracking that associates every user input with its response frame and
  measures every pipeline stage along the way;
* :mod:`repro.core.gpu_timer` — GPU time queries with the double-buffer
  scheme that keeps measurement overhead low;
* :mod:`repro.core.pmu` — CPU Top-Down and GPU cache-counter readers
  (the PAPI / GPA / NSight analogues);
* :mod:`repro.core.monitors` — FPS counters and system-level resource
  monitors;
* :mod:`repro.core.measurements` / :mod:`repro.core.reporting` —
  distribution statistics and report formatting;
* :mod:`repro.core.pictor` — the top-level :class:`Pictor` facade that
  assembles all of the above for a testbed run.
"""

from repro.core.hooks import HookPoint, HookRegistry
from repro.core.tags import InputRecord, TagGenerator
from repro.core.tracker import InputTracker
from repro.core.gpu_timer import GpuTimeQueryManager
from repro.core.pmu import CpuPmuReader, GpuPmuReader
from repro.core.monitors import FpsCounter, ResourceMonitor
from repro.core.measurements import LatencyStats, percentage_error, summarize
from repro.core.pictor import PerformanceReport, Pictor, PictorConfig

__all__ = [
    "CpuPmuReader",
    "FpsCounter",
    "GpuPmuReader",
    "GpuTimeQueryManager",
    "HookPoint",
    "HookRegistry",
    "InputRecord",
    "InputTracker",
    "LatencyStats",
    "PerformanceReport",
    "Pictor",
    "PictorConfig",
    "ResourceMonitor",
    "TagGenerator",
    "percentage_error",
    "summarize",
]
