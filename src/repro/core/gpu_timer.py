"""GPU time measurement via GL time-query objects.

CPU-side hook timestamps cannot observe how long the GPU spent rendering
a frame, so Pictor inserts GL_TIME_ELAPSED query objects around the
rendering of each frame (start at hook5, stop at the following hook6).
Retrieving a query result before the GPU has produced it stalls the CPU;
Pictor therefore keeps *two* query buffers and alternates between frames,
collecting frame *i−1*'s (already completed) result while frame *i*
renders.  The paper measures ~2.7% average FPS overhead with the double
buffer and up to ~10% without it (Section 4).
"""

from __future__ import annotations

from typing import Optional

from repro.graphics.opengl import GlContext, GlQuery
from repro.sim.engine import Environment

__all__ = ["GpuTimeQueryManager"]


class GpuTimeQueryManager:
    """Manages per-frame GPU time queries for one rendering session."""

    def __init__(self, env: Environment, gl: GlContext,
                 double_buffered: bool = True):
        self.env = env
        self.gl = gl
        self.double_buffered = double_buffered
        self._buffers: list[Optional[GlQuery]] = [None, None]
        self._active_buffer = 0
        self.gpu_times: list[float] = []
        self.gpu_times_by_frame: dict[int, float] = {}
        self.stall_time_total = 0.0

    # -- hook5: begin a query around the new frame's rendering -----------------
    def begin_frame(self, frame) -> GlQuery:
        """Issue the time query for ``frame`` (called from hook5)."""
        query = self.gl.swap_buffers(frame, with_query=True)
        self._buffers[self._active_buffer] = query
        return query

    # -- hook6: collect a result --------------------------------------------------
    def collect(self):
        """Generator: retrieve one query result (called from hook6).

        With double buffering the *other* buffer's query — covering the
        previous frame, whose rendering has long finished — is read, so the
        call returns immediately.  With a single buffer the current frame's
        query is read and the CPU stalls until the GPU completes.
        Returns the GPU time retrieved (or None when nothing was pending).
        The stall time is visible as simulated time passing inside the call
        and is also accumulated in ``stall_time_total``.
        """
        if self.double_buffered:
            read_index = 1 - self._active_buffer
            self._active_buffer = read_index
        else:
            read_index = self._active_buffer

        query = self._buffers[read_index]
        if query is None:
            return None

        stall_started = self.env.now
        gpu_time = yield from self.gl.get_query_result(query, blocking=True)
        self.stall_time_total += self.env.now - stall_started

        self._buffers[read_index] = None
        if gpu_time is not None:
            self.gpu_times.append(gpu_time)
            self.gpu_times_by_frame[query.frame_id] = gpu_time
        return gpu_time

    # -- reporting -------------------------------------------------------------------
    def mean_gpu_time(self) -> float:
        if not self.gpu_times:
            return 0.0
        return sum(self.gpu_times) / len(self.gpu_times)

    def gpu_time_for_frame(self, frame_id: int) -> Optional[float]:
        return self.gpu_times_by_frame.get(frame_id)

    @property
    def collected(self) -> int:
        return len(self.gpu_times)
