"""Performance-monitoring-unit readers.

Architecture-level measurements in the paper come from three sources:
CPU PMUs read with PAPI inside the API hooks (Top-Down cycle breakdown
and L3 miss rates, Figures 14–15), AMD GPU counters read through the GPU
Performance API, and NVidia GPU counters read with the external NSight
tool (GPU L2 and texture cache miss rates, Figure 16).  0 A.D. still uses
OpenGL 1.3, which the NVidia tooling cannot attach to, so its GPU
counters are reported as unavailable.

The readers below expose the same quantities from the simulated hardware
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.cpu import Cpu, CycleBreakdown
from repro.hardware.gpu import RenderContext
from repro.hardware.memory import LlcModel, MemorySystem

__all__ = ["CpuPmuReader", "CpuPmuSample", "GpuPmuReader", "GpuPmuSample"]


@dataclass(frozen=True)
class CpuPmuSample:
    """One CPU PMU reading: Top-Down shares plus L3 statistics."""

    retiring: float
    frontend_bound: float
    backend_bound: float
    bad_speculation: float
    l3_miss_rate: float
    total_cycles: float

    def as_dict(self) -> dict[str, float]:
        return {
            "retiring": self.retiring,
            "frontend_bound": self.frontend_bound,
            "backend_bound": self.backend_bound,
            "bad_speculation": self.bad_speculation,
            "l3_miss_rate": self.l3_miss_rate,
            "total_cycles": self.total_cycles,
        }


@dataclass(frozen=True)
class GpuPmuSample:
    """One GPU PMU reading; fields are None when the PMU is unreadable."""

    l2_miss_rate: Optional[float]
    texture_miss_rate: Optional[float]
    frames_rendered: int

    @property
    def available(self) -> bool:
        return self.l2_miss_rate is not None


class CpuPmuReader:
    """Reads Top-Down cycle shares and L3 miss rates for one workload.

    The reader is attached to one benchmark instance: ``owner`` selects the
    CPU threads belonging to that instance (Pictor separates the
    application's counters from the VNC proxy's by reading the PMU from
    within the per-process API hooks) and ``llc`` is the instance's
    last-level-cache behaviour model.
    """

    def __init__(self, cpu: Cpu, memory: MemorySystem, owner: str,
                 llc: LlcModel):
        self.cpu = cpu
        self.memory = memory
        self.owner = owner
        self.llc = llc

    def read(self) -> CpuPmuSample:
        breakdown: CycleBreakdown = self.cpu.cycle_breakdown(self.owner)
        fractions = breakdown.fractions()
        return CpuPmuSample(
            retiring=fractions["retiring"],
            frontend_bound=fractions["frontend_bound"],
            backend_bound=fractions["backend_bound"],
            bad_speculation=fractions["bad_speculation"],
            l3_miss_rate=self.memory.effective_miss_rate(self.llc),
            total_cycles=breakdown.total,
        )

    def instructions_per_cycle(self, instructions_per_retired_cycle: float = 1.6) -> float:
        """Approximate IPC: only retiring cycles make forward progress."""
        sample = self.read()
        return sample.retiring * instructions_per_retired_cycle


class GpuPmuReader:
    """Reads GPU cache-miss counters for one rendering context."""

    def __init__(self, context: RenderContext):
        self.context = context

    def read(self) -> GpuPmuSample:
        return GpuPmuSample(
            l2_miss_rate=self.context.l2_miss_rate(),
            texture_miss_rate=self.context.texture_miss_rate(),
            frames_rendered=self.context.frames_rendered,
        )
