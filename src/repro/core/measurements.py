"""Distribution statistics shared by the tracker, monitors and experiments.

The paper reports latency distributions as mean, 1st, 25th, 75th and 99th
percentiles (Figure 6) and compares methodologies by the percentage error
of their mean RTTs against the human-user baseline (Table 3); this module
provides exactly those summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["LatencyStats", "percentage_error", "summarize"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency distribution, Figure-6 style."""

    count: int
    mean: float
    p1: float
    p25: float
    median: float
    p75: float
    p99: float
    std: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencyStats":
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            return LatencyStats(count=0, mean=0.0, p1=0.0, p25=0.0, median=0.0,
                                p75=0.0, p99=0.0, std=0.0)
        # Compensated (exact) summation, then clamp: naive pairwise
        # summation can land the mean a few ULPs outside [min, max],
        # which breaks the ordering invariant downstream checks rely on.
        mean = math.fsum(values.tolist()) / values.size
        mean = min(max(mean, float(values.min())), float(values.max()))
        return LatencyStats(
            count=int(values.size),
            mean=mean,
            p1=float(np.percentile(values, 1)),
            p25=float(np.percentile(values, 25)),
            median=float(np.percentile(values, 50)),
            p75=float(np.percentile(values, 75)),
            p99=float(np.percentile(values, 99)),
            std=float(values.std()),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count, "mean": self.mean, "p1": self.p1,
            "p25": self.p25, "median": self.median, "p75": self.p75,
            "p99": self.p99, "std": self.std,
        }

    def scaled(self, factor: float) -> "LatencyStats":
        """The same distribution with every statistic multiplied by ``factor``
        (used to convert seconds to milliseconds for reporting)."""
        return LatencyStats(
            count=self.count, mean=self.mean * factor, p1=self.p1 * factor,
            p25=self.p25 * factor, median=self.median * factor,
            p75=self.p75 * factor, p99=self.p99 * factor, std=self.std * factor)


def percentage_error(measured: float, reference: float) -> float:
    """Absolute percentage error of ``measured`` against ``reference``.

    This is the Table-3 metric: |measured − reference| / reference × 100.
    """
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return abs(measured - reference) / abs(reference) * 100.0


def summarize(samples: Iterable[float]) -> dict[str, float]:
    """Convenience wrapper returning the LatencyStats of ``samples`` as a dict."""
    return LatencyStats.from_samples(list(samples)).as_dict()
