"""InMind (IM) — closed-source VR education/game title.

InMind is one of the two VR benchmarks.  It has the largest CPU-resident
memory footprint of the suite (≈4 GB in the paper's characterization) and
the highest GPU L2 miss rate (Figure 16) — VR scenes stream large volumes
of geometry and render at high resolution per eye.  Input arrives as a
continuous stream of head-pose (HMD) updates rather than discrete
keystrokes, which is why the authors had to extend TurboVNC with VR
device-input support.

Interaction is gaze-driven: the player steers their gaze toward neuron
targets and "selects" them by holding the gaze (the primary action).
"""

from __future__ import annotations

from repro.apps.base import Application3D, ApplicationProfile, InputKind, SceneDynamics
from repro.graphics.frame import ObjectClass
from repro.hardware.gpu import GpuWorkloadProfile

__all__ = ["InMind"]


class InMind(Application3D):
    """VR education/game benchmark (Table 2, "VR: Education/Game")."""

    profile = ApplicationProfile(
        name="InMind",
        short_name="IM",
        genre="VR education/game",
        input_kind=InputKind.HMD,
        is_vr=True,
        open_source=False,
        opengl_version="4.1",
        al_ms=11.0,
        al_cv=0.18,
        cpu_demand=1.4,
        memory_intensity=0.75,
        working_set_mb=14.0,
        cpu_memory_mb=3900.0,
        base_l3_miss_rate=0.80,
        render_ms=13.0,
        render_cv=0.22,
        gpu_profile=GpuWorkloadProfile(
            base_l2_miss_rate=0.55,
            base_texture_miss_rate=0.30,
            gpu_memory_mb=760.0,
        ),
        upload_bytes_per_frame=0.5e6,
        scene_change_mean=0.35,
        scene_change_cv=0.25,
        complexity_cv=0.20,
        human_apm=220.0,
        reaction_time_ms=170.0,
        reaction_time_std_ms=40.0,
    )

    dynamics = SceneDynamics(
        object_classes=(ObjectClass.TARGET, ObjectClass.UI_ELEMENT),
        object_counts=(5, 2),
        spawn_rate=1.5,
        despawn_rate=1.0,
        object_speed=0.12,
        steer_class=ObjectClass.TARGET,
        primary_class=ObjectClass.TARGET,
        primary_trigger_distance=0.18,
        viewpoint_sensitivity=0.40,
    )
