"""IMHOTEP (ITP) — open-source VR framework for surgical planning.

IMHOTEP renders patient-specific anatomy (organ surfaces, annotations)
for pre-operative planning in VR.  Compared with the games it has slower
scene dynamics — the surgeon inspects a mostly static model by moving
their head and highlighting structures — so its scene-change rate and
input rate are the lowest of the suite, but the organ meshes keep the GPU
render time high.  Like InMind it feeds head-pose (HMD) input through the
TurboVNC VR extension, and it is one of the benchmarks that still meets
the 25 FPS QoS bar with three colocated instances (Figure 10).
"""

from __future__ import annotations

from repro.apps.base import Application3D, ApplicationProfile, InputKind, SceneDynamics
from repro.graphics.frame import ObjectClass
from repro.hardware.gpu import GpuWorkloadProfile

__all__ = ["Imhotep"]


class Imhotep(Application3D):
    """VR health benchmark (Table 2, "VR: Health")."""

    profile = ApplicationProfile(
        name="IMHOTEP",
        short_name="ITP",
        genre="VR health",
        input_kind=InputKind.HMD,
        is_vr=True,
        open_source=True,
        opengl_version="4.1",
        al_ms=10.0,
        al_cv=0.15,
        cpu_demand=1.1,
        memory_intensity=0.60,
        working_set_mb=8.0,
        cpu_memory_mb=2200.0,
        base_l3_miss_rate=0.72,
        render_ms=12.0,
        render_cv=0.20,
        gpu_profile=GpuWorkloadProfile(
            base_l2_miss_rate=0.36,
            base_texture_miss_rate=0.21,
            gpu_memory_mb=690.0,
        ),
        upload_bytes_per_frame=0.4e6,
        scene_change_mean=0.25,
        scene_change_cv=0.30,
        complexity_cv=0.15,
        human_apm=180.0,
        reaction_time_ms=240.0,
        reaction_time_std_ms=70.0,
    )

    dynamics = SceneDynamics(
        object_classes=(ObjectClass.ORGAN, ObjectClass.UI_ELEMENT, ObjectClass.TARGET),
        object_counts=(4, 2, 2),
        spawn_rate=0.8,
        despawn_rate=0.5,
        object_speed=0.06,
        steer_class=ObjectClass.ORGAN,
        primary_class=ObjectClass.TARGET,
        primary_trigger_distance=0.25,
        viewpoint_sensitivity=0.30,
    )
