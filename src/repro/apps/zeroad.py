"""0 A.D. (0AD) — open-source real-time strategy game.

RTS games simulate hundreds of units on the CPU every frame, so 0AD has
the longest application-logic stage of the suite and the lowest client
FPS in the paper (27 FPS single-instance, the QoS floor in Figure 10).
It is also the odd one out architecturally: it still uses OpenGL 1.3,
which the vendor GPU-PMU tools cannot instrument, so its GPU cache miss
rates are reported as unavailable (Figure 16 note).

The scene exposes friendly units and buildings (the player keeps the
camera over their units) and enemy raiders that should be attacked when
they approach the centre of the view.
"""

from __future__ import annotations

from repro.apps.base import Application3D, ApplicationProfile, InputKind, SceneDynamics
from repro.graphics.frame import ObjectClass
from repro.hardware.gpu import GpuWorkloadProfile

__all__ = ["ZeroAD"]


class ZeroAD(Application3D):
    """Real-time-strategy benchmark (Table 2, "Game: Real-time Strategy")."""

    profile = ApplicationProfile(
        name="0 A.D.",
        short_name="0AD",
        genre="real-time strategy",
        input_kind=InputKind.KEYBOARD_MOUSE,
        open_source=True,
        opengl_version="1.3",
        al_ms=24.0,
        al_cv=0.18,
        cpu_demand=1.9,
        memory_intensity=0.65,
        # Mostly pointer-chasing game logic over a compact working set: 0 A.D.
        # is the least contentious co-runner in the Figure 19 study.
        working_set_mb=4.5,
        cpu_memory_mb=2500.0,
        base_l3_miss_rate=0.74,
        render_ms=8.0,
        render_cv=0.22,
        gpu_profile=GpuWorkloadProfile(
            base_l2_miss_rate=0.30,
            base_texture_miss_rate=0.22,
            gpu_memory_mb=520.0,
            pmu_readable=False,
        ),
        upload_bytes_per_frame=0.6e6,
        scene_change_mean=0.20,
        scene_change_cv=0.40,
        complexity_cv=0.18,
        human_apm=260.0,
        reaction_time_ms=260.0,
        reaction_time_std_ms=80.0,
    )

    dynamics = SceneDynamics(
        object_classes=(ObjectClass.UNIT, ObjectClass.BUILDING, ObjectClass.ENEMY),
        object_counts=(6, 3, 2),
        spawn_rate=1.2,
        despawn_rate=0.8,
        object_speed=0.08,
        steer_class=ObjectClass.UNIT,
        primary_class=ObjectClass.ENEMY,
        primary_trigger_distance=0.30,
        viewpoint_sensitivity=0.25,
    )
