"""SuperTuxKart (STK) — open-source kart-racing game.

Racing games redraw essentially the whole screen every frame as the
camera flies along the track, which gives STK the most distinctive
behaviour in the paper's characterization: it is the only benchmark with
substantial CPU→GPU PCIe upload traffic (Figure 9 — "likely due to its
frequent and drastic changes in the rendered frames"), a high scene-change
rate that makes its compressed frames large, and the highest
contentiousness toward co-runners (Figure 19).

The scene exposes the track ahead (whose centre the player steers
toward), opposing karts, and item pickups that should be collected when
they line up with the kart.
"""

from __future__ import annotations

from repro.apps.base import Application3D, ApplicationProfile, InputKind, SceneDynamics
from repro.graphics.frame import ObjectClass
from repro.hardware.gpu import GpuWorkloadProfile

__all__ = ["SuperTuxKart"]


class SuperTuxKart(Application3D):
    """Racing-game benchmark (Table 2, "Game: Racing")."""

    profile = ApplicationProfile(
        name="SuperTuxKart",
        short_name="STK",
        genre="racing",
        input_kind=InputKind.KEYBOARD,
        open_source=True,
        opengl_version="4.3",
        al_ms=13.0,
        al_cv=0.22,
        cpu_demand=1.7,
        memory_intensity=0.70,
        # The streaming uploads keep a large footprint live in the LLC, which
        # is what makes SuperTuxKart the most contentious co-runner (Fig. 19).
        working_set_mb=16.0,
        cpu_memory_mb=1800.0,
        base_l3_miss_rate=0.78,
        render_ms=9.0,
        render_cv=0.30,
        gpu_profile=GpuWorkloadProfile(
            base_l2_miss_rate=0.34,
            base_texture_miss_rate=0.26,
            gpu_memory_mb=720.0,
        ),
        upload_bytes_per_frame=3.5e6,
        scene_change_mean=0.55,
        scene_change_cv=0.30,
        complexity_cv=0.25,
        human_apm=360.0,
        reaction_time_ms=200.0,
        reaction_time_std_ms=55.0,
    )

    dynamics = SceneDynamics(
        object_classes=(ObjectClass.TRACK, ObjectClass.OPPONENT, ObjectClass.PICKUP),
        object_counts=(4, 3, 2),
        spawn_rate=2.5,
        despawn_rate=1.8,
        object_speed=0.35,
        steer_class=ObjectClass.TRACK,
        primary_class=ObjectClass.PICKUP,
        primary_trigger_distance=0.20,
        viewpoint_sensitivity=0.50,
    )
