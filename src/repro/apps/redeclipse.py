"""Red Eclipse (RE) — open-source first-person arena shooter.

Arena shooters run a comparatively light game simulation (small maps, a
handful of actors) but push the GPU hard with fast camera motion and
particle effects.  Red Eclipse therefore shows the lowest CPU utilization
of the suite (≈68% in Figure 8) while its GPU share and scene-change rate
sit near the top, and it tolerates colocation well — it is one of the
three benchmarks that still clear 25 FPS with three instances per server
(Figure 10).

The scene exposes enemies (aim at them, fire when they cross the
crosshair), pickups, and projectiles to dodge.
"""

from __future__ import annotations

from repro.apps.base import Application3D, ApplicationProfile, InputKind, SceneDynamics
from repro.graphics.frame import ObjectClass
from repro.hardware.gpu import GpuWorkloadProfile

__all__ = ["RedEclipse"]


class RedEclipse(Application3D):
    """First-person-shooter benchmark (Table 2, "Game: First-person Shoot")."""

    profile = ApplicationProfile(
        name="Red Eclipse",
        short_name="RE",
        genre="first-person shooter",
        input_kind=InputKind.KEYBOARD_MOUSE,
        open_source=True,
        opengl_version="2.1",
        al_ms=7.0,
        al_cv=0.25,
        cpu_demand=0.9,
        memory_intensity=0.55,
        working_set_mb=6.0,
        cpu_memory_mb=1200.0,
        base_l3_miss_rate=0.71,
        render_ms=11.0,
        render_cv=0.30,
        gpu_profile=GpuWorkloadProfile(
            base_l2_miss_rate=0.38,
            base_texture_miss_rate=0.28,
            gpu_memory_mb=650.0,
        ),
        upload_bytes_per_frame=0.8e6,
        scene_change_mean=0.45,
        scene_change_cv=0.35,
        complexity_cv=0.28,
        human_apm=420.0,
        reaction_time_ms=180.0,
        reaction_time_std_ms=45.0,
    )

    dynamics = SceneDynamics(
        object_classes=(ObjectClass.ENEMY, ObjectClass.PICKUP, ObjectClass.PROJECTILE),
        object_counts=(3, 2, 2),
        spawn_rate=2.0,
        despawn_rate=1.5,
        object_speed=0.30,
        steer_class=ObjectClass.ENEMY,
        primary_class=ObjectClass.ENEMY,
        primary_trigger_distance=0.15,
        viewpoint_sensitivity=0.55,
    )
