"""DoTA 2 (D2) — closed-source multiplayer online battle arena.

Dota 2 is the heaviest CPU consumer of the suite (≈266% CPU in Figure 8 —
its engine fans game logic, particle simulation and command buffers out
over several threads) while its resident memory is the smallest (≈600 MB).
Being closed source, it is also the benchmark that demonstrates Pictor's
no-source-modification requirement: all instrumentation happens through
the standard GL/X API hooks.

Figure 19 studies Dota 2's sensitivity to co-runners: its performance
loss and cache-miss increase vary a lot with which benchmark shares the
server (SuperTuxKart hurts the most, 0 A.D. the least).

The scene exposes friendly and enemy units, projectiles, and the UI
elements (minimap, ability bar) that 2D-oriented replay tools latch onto.
"""

from __future__ import annotations

from repro.apps.base import Application3D, ApplicationProfile, InputKind, SceneDynamics
from repro.graphics.frame import ObjectClass
from repro.hardware.gpu import GpuWorkloadProfile

__all__ = ["Dota2"]


class Dota2(Application3D):
    """Online-battle-arena benchmark (Table 2, "Game: Online Battle Arena")."""

    profile = ApplicationProfile(
        name="DoTA 2",
        short_name="D2",
        genre="online battle arena",
        input_kind=InputKind.KEYBOARD_MOUSE,
        open_source=False,
        opengl_version="4.5",
        al_ms=21.0,
        al_cv=0.20,
        cpu_demand=3.0,
        memory_intensity=0.60,
        working_set_mb=12.0,
        cpu_memory_mb=600.0,
        base_l3_miss_rate=0.73,
        render_ms=10.0,
        render_cv=0.25,
        gpu_profile=GpuWorkloadProfile(
            base_l2_miss_rate=0.32,
            base_texture_miss_rate=0.24,
            gpu_memory_mb=780.0,
        ),
        upload_bytes_per_frame=0.7e6,
        scene_change_mean=0.30,
        scene_change_cv=0.35,
        complexity_cv=0.22,
        human_apm=320.0,
        reaction_time_ms=230.0,
        reaction_time_std_ms=70.0,
    )

    dynamics = SceneDynamics(
        object_classes=(ObjectClass.UNIT, ObjectClass.ENEMY,
                        ObjectClass.PROJECTILE, ObjectClass.UI_ELEMENT),
        object_counts=(4, 3, 2, 2),
        spawn_rate=1.8,
        despawn_rate=1.2,
        object_speed=0.18,
        steer_class=ObjectClass.ENEMY,
        primary_class=ObjectClass.ENEMY,
        primary_trigger_distance=0.22,
        viewpoint_sensitivity=0.30,
    )
