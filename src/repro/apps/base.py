"""Base classes for the synthetic 3D benchmark applications.

Every benchmark is an :class:`Application3D`: a frame-oriented loop that
consumes user inputs, advances a scene of randomly generated / placed
objects, and emits :class:`~repro.graphics.frame.Frame` objects for the
rendering pipeline.  The per-application behaviour is captured by two
value objects:

:class:`ApplicationProfile`
    Resource-demand parameters (application-logic time, CPU demand and
    memory intensity, GPU render time and cache behaviour, memory
    footprints, per-frame upload traffic, scene-change rate) calibrated to
    the paper's single-instance characterization (Figures 8, 9, 13–16).

:class:`SceneDynamics`
    How the scene evolves: object classes present, spawn/despawn rates,
    motion, and how the ground-truth "correct" action is computed from the
    visible objects.  The ground-truth action model is what the synthetic
    human player follows (with reaction delay and noise) and what the
    intelligent client's CNN+LSTM learns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graphics.frame import Frame, ObjectClass, SceneObject
from repro.hardware.cpu import StageCpuProfile
from repro.hardware.gpu import GpuWorkloadProfile
from repro.sim.randomness import StreamRandom

__all__ = ["Action", "Application3D", "ApplicationProfile", "InputKind",
           "SceneDynamics"]


class InputKind(enum.Enum):
    """The input device class a benchmark expects."""

    KEYBOARD = "keyboard"
    MOUSE = "mouse"
    KEYBOARD_MOUSE = "keyboard_mouse"
    HMD = "hmd"                      # VR head-mounted display pose updates


@dataclass
class Action:
    """One user action, as a continuous control vector plus a discrete key.

    ``steer`` and ``pitch`` are in [-1, 1] (mouse/HMD axes or steering
    keys), ``primary`` indicates the main discrete action (fire / select /
    accelerate), matching the low-dimensional encoding the LSTM produces.
    """

    steer: float = 0.0
    pitch: float = 0.0
    primary: bool = False
    issued_at: Optional[float] = None

    def as_vector(self) -> np.ndarray:
        return np.array([self.steer, self.pitch, 1.0 if self.primary else 0.0])

    @staticmethod
    def from_vector(vector: np.ndarray, issued_at: Optional[float] = None) -> "Action":
        return Action(steer=float(np.clip(vector[0], -1.0, 1.0)),
                      pitch=float(np.clip(vector[1], -1.0, 1.0)),
                      primary=bool(vector[2] > 0.5),
                      issued_at=issued_at)

    def distance(self, other: "Action") -> float:
        """L1 distance between two actions' control vectors."""
        return float(np.sum(np.abs(self.as_vector() - other.as_vector())))


@dataclass(frozen=True)
class ApplicationProfile:
    """Static resource-demand description of one benchmark."""

    name: str
    short_name: str
    genre: str
    input_kind: InputKind = InputKind.KEYBOARD_MOUSE
    is_vr: bool = False
    open_source: bool = True
    opengl_version: str = "3.3"

    # Application logic (stage AL)
    al_ms: float = 14.0                 # nominal per-frame logic time, idle machine
    al_cv: float = 0.20                 # coefficient of variation of AL time
    cpu_demand: float = 1.2             # cores kept busy during AL
    memory_intensity: float = 0.6       # exposure to memory-system contention
    working_set_mb: float = 6.0         # L3 pressure contributed by this app
    cpu_memory_mb: float = 1500.0       # resident set size (Figure 8 discussion)
    base_l3_miss_rate: float = 0.72     # standalone L3 miss rate (Figure 15)

    # GPU rendering (stage RD)
    render_ms: float = 7.0              # nominal GPU time for an average frame
    render_cv: float = 0.25
    gpu_profile: GpuWorkloadProfile = field(default_factory=GpuWorkloadProfile)

    # Per-frame CPU→GPU upload (vertex/texture streaming; Figure 9 "send-to GPU")
    upload_bytes_per_frame: float = 0.4e6

    # Scene dynamics
    scene_change_mean: float = 0.30     # fraction of pixels changed per frame
    scene_change_cv: float = 0.35
    complexity_cv: float = 0.20

    # Interaction
    human_apm: float = 300.0            # actions per minute of a skilled player
    reaction_time_ms: float = 220.0     # human reaction latency
    reaction_time_std_ms: float = 60.0

    def __post_init__(self) -> None:
        if self.al_ms <= 0 or self.render_ms <= 0:
            raise ValueError("stage times must be positive")
        if self.cpu_demand <= 0:
            raise ValueError("cpu_demand must be positive")
        if not 0.0 <= self.scene_change_mean <= 1.0:
            raise ValueError("scene_change_mean must be in [0, 1]")
        if self.human_apm <= 0:
            raise ValueError("human_apm must be positive")

    @property
    def al_cpu_profile(self) -> StageCpuProfile:
        """The Top-Down / contention profile of the application-logic stage."""
        return StageCpuProfile(
            demand=self.cpu_demand,
            memory_intensity=self.memory_intensity,
            base_retiring=0.28,
            base_frontend=0.12,
            base_bad_speculation=0.06,
            working_set_mb=self.working_set_mb,
        )

    @property
    def actions_per_second(self) -> float:
        return self.human_apm / 60.0


@dataclass(frozen=True)
class SceneDynamics:
    """How a benchmark's scene evolves and how it should be played.

    ``object_classes`` and ``object_counts`` describe what a frame contains;
    ``spawn_rate`` new objects appear per second at random positions (the
    randomness that defeats record-and-replay input generation);
    ``object_speed`` scales random motion; ``steer_class`` identifies the
    object class whose horizontal position determines the correct steering
    (track for the racing game, enemies for the shooter, ...), and
    ``primary_class`` the class whose presence should trigger the primary
    action.
    """

    object_classes: tuple[ObjectClass, ...] = (ObjectClass.TARGET,)
    object_counts: tuple[int, ...] = (3,)
    spawn_rate: float = 1.5
    despawn_rate: float = 1.0
    object_speed: float = 0.15
    steer_class: ObjectClass = ObjectClass.TARGET
    primary_class: Optional[ObjectClass] = None
    primary_trigger_distance: float = 0.25
    viewpoint_sensitivity: float = 0.35   # how much steering moves the scene

    def __post_init__(self) -> None:
        if len(self.object_classes) != len(self.object_counts):
            raise ValueError("object_classes and object_counts must align")
        if self.spawn_rate < 0 or self.despawn_rate < 0:
            raise ValueError("spawn/despawn rates cannot be negative")


class Application3D:
    """A synthetic interactive 3D application.

    The session drives it frame by frame: ``apply_actions`` consumes the
    inputs delivered since the previous frame, ``advance`` steps the scene
    and returns the next :class:`Frame`, and ``sample_al_time`` /
    ``sample_render_time`` provide the stochastic stage durations the
    pipeline charges to the CPU and GPU.
    """

    profile: ApplicationProfile = ApplicationProfile(
        name="Generic3D", short_name="GEN", genre="generic")
    dynamics: SceneDynamics = SceneDynamics()

    def __init__(self, rng: Optional[StreamRandom] = None,
                 width: int = 1920, height: int = 1080):
        self.rng = rng or StreamRandom(0)
        self.width = width
        self.height = height
        self.objects: list[SceneObject] = []
        self.viewpoint = 0.0
        self.frame_index = 0
        self.score = 0.0
        #: Exponential moving average of user activity relative to the
        #: expected input rate.  1.0 means the scene is being driven as hard
        #: as a skilled human would drive it; 0.0 means the app idles.  The
        #: activity level feeds back into frame complexity, scene change and
        #: application-logic time, which is what makes the benchmark's
        #: performance depend on *realistic* input generation (Section 1).
        self.activity_level = 1.0
        self._pending_actions: list[Action] = []
        self._last_frame: Optional[Frame] = None
        self._populate_initial_scene()

    # -- scene management ----------------------------------------------------
    def _populate_initial_scene(self) -> None:
        for object_class, count in zip(self.dynamics.object_classes,
                                       self.dynamics.object_counts):
            for _ in range(count):
                self.objects.append(self._spawn_object(object_class))

    def _spawn_object(self, object_class: ObjectClass) -> SceneObject:
        speed = self.dynamics.object_speed
        return SceneObject(
            object_class=object_class,
            x=self.rng.uniform(0.05, 0.95),
            y=self.rng.uniform(0.05, 0.95),
            size=self.rng.uniform(0.04, 0.10),
            velocity_x=self.rng.uniform(-speed, speed),
            velocity_y=self.rng.uniform(-speed, speed),
        )

    # -- input handling --------------------------------------------------------
    def apply_actions(self, actions: list[Action]) -> None:
        """Queue user actions; they take effect at the next ``advance``."""
        self._pending_actions.extend(actions)

    # -- frame production ---------------------------------------------------------
    def advance(self, dt: float) -> Frame:
        """Advance the scene by ``dt`` seconds and produce the next frame."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        steer = 0.0
        for action in self._pending_actions:
            steer += action.steer
            if action.primary:
                self.score += 1.0

        # Update the activity level: how many inputs arrived this frame
        # relative to how many a skilled human would have issued in ``dt``.
        # The EMA smooths over frames (most frames see no input even under a
        # fully engaged player) and is clamped only after smoothing.
        expected_inputs = max(self.profile.actions_per_second * dt, 1e-6)
        instantaneous = len(self._pending_actions) / expected_inputs
        smoothing = min(1.0, dt * 2.0)
        self.activity_level += smoothing * (instantaneous - self.activity_level)
        self.activity_level = float(np.clip(self.activity_level, 0.0, 2.0))
        self._pending_actions.clear()

        self.viewpoint = float(np.clip(
            self.viewpoint + steer * self.dynamics.viewpoint_sensitivity * dt,
            -1.0, 1.0))

        shift = -steer * self.dynamics.viewpoint_sensitivity * dt
        updated: list[SceneObject] = []
        for obj in self.objects:
            moved = obj.advanced(dt)
            moved = SceneObject(
                object_class=moved.object_class,
                x=float(np.clip(moved.x + shift, 0.0, 1.0)),
                y=moved.y, size=moved.size,
                velocity_x=moved.velocity_x, velocity_y=moved.velocity_y)
            if self.rng.random() > self.dynamics.despawn_rate * dt:
                updated.append(moved)
        expected_spawns = self.dynamics.spawn_rate * dt
        spawns = int(expected_spawns) + (1 if self.rng.random() < expected_spawns % 1 else 0)
        for _ in range(spawns):
            updated.append(self._spawn_object(self.rng.choice(
                list(self.dynamics.object_classes))))
        self.objects = updated

        frame = Frame(
            width=self.width, height=self.height,
            objects=list(self.objects),
            complexity=self._sample_complexity(),
            scene_change=self._sample_scene_change(abs(steer)),
        )
        self.frame_index += 1
        self._last_frame = frame
        return frame

    def _activity_factor(self) -> float:
        """How much the current interaction level inflates per-frame work.

        An idle scene (no inputs) still animates, but a driven scene has
        more motion, more draw calls and more game logic; this is why the
        paper insists benchmark inputs must resemble real human inputs.
        """
        return 0.70 + 0.30 * min(self.activity_level, 1.5)

    def _sample_complexity(self) -> float:
        mean = self._activity_factor()
        return max(0.2, self.rng.lognormal_mean_cv(mean, self.profile.complexity_cv))

    def _sample_scene_change(self, steer_magnitude: float) -> float:
        base = (self.profile.scene_change_mean * self._activity_factor()
                * (1.0 + 0.5 * min(steer_magnitude, 1.0)))
        return float(np.clip(
            self.rng.lognormal_mean_cv(max(base, 1e-3), self.profile.scene_change_cv),
            0.01, 1.0))

    # -- stage-time sampling -----------------------------------------------------------
    def sample_al_time(self) -> float:
        """Nominal application-logic time for the next frame (seconds)."""
        mean = self.profile.al_ms * 1e-3 * self._activity_factor()
        return self.rng.lognormal_mean_cv(mean, self.profile.al_cv)

    def sample_render_time(self) -> float:
        """Nominal GPU render time for the next frame (seconds)."""
        return self.rng.lognormal_mean_cv(self.profile.render_ms * 1e-3,
                                          self.profile.render_cv)

    def sample_upload_bytes(self) -> float:
        """CPU→GPU bytes streamed for the next frame."""
        return self.rng.jitter(self.profile.upload_bytes_per_frame, 0.3)

    # -- ground-truth interaction model ----------------------------------------------------
    def correct_action(self, frame: Frame) -> Action:
        """The "right" response to a frame, used by the human model and
        as the label source when training the intelligent client."""
        steer_targets = frame.objects_of_class(self.dynamics.steer_class)
        if steer_targets:
            mean_x = float(np.mean([o.x for o in steer_targets]))
            steer = float(np.clip((mean_x - 0.5) * 2.0, -1.0, 1.0))
            mean_y = float(np.mean([o.y for o in steer_targets]))
            pitch = float(np.clip((0.5 - mean_y) * 2.0, -1.0, 1.0))
        else:
            steer, pitch = 0.0, 0.0

        primary = False
        if self.dynamics.primary_class is not None:
            for obj in frame.objects_of_class(self.dynamics.primary_class):
                if abs(obj.x - 0.5) < self.dynamics.primary_trigger_distance:
                    primary = True
                    break
        return Action(steer=steer, pitch=pitch, primary=primary)

    @property
    def last_frame(self) -> Optional[Frame]:
        return self._last_frame

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} frame={self.frame_index} objects={len(self.objects)}>"
