"""Registry of the benchmark suite.

Pictor is designed to be extensible — new 3D applications can be added
without modifying their source (Section 3.3) — so the registry exposes a
simple name-based factory that the experiment harnesses, examples and
tests all go through.  Third-party applications register themselves with
:func:`register_benchmark`.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.apps.base import Application3D, ApplicationProfile
from repro.apps.dota2 import Dota2
from repro.apps.imhotep import Imhotep
from repro.apps.inmind import InMind
from repro.apps.redeclipse import RedEclipse
from repro.apps.supertuxkart import SuperTuxKart
from repro.apps.zeroad import ZeroAD
from repro.sim.randomness import StreamRandom

__all__ = [
    "BENCHMARK_NAMES",
    "BENCHMARK_SHORT_NAMES",
    "all_benchmarks",
    "create_benchmark",
    "get_profile",
    "register_benchmark",
]

_REGISTRY: dict[str, Type[Application3D]] = {}


def register_benchmark(app_class: Type[Application3D]) -> Type[Application3D]:
    """Add an application class to the registry (keyed by its short name)."""
    short_name = app_class.profile.short_name
    if not short_name:
        raise ValueError(f"{app_class.__name__} has no short_name in its profile")
    _REGISTRY[short_name] = app_class
    return app_class


for _app in (SuperTuxKart, ZeroAD, RedEclipse, Dota2, InMind, Imhotep):
    register_benchmark(_app)

#: Short names of the standard six-benchmark suite, in the paper's order.
BENCHMARK_SHORT_NAMES: tuple[str, ...] = ("STK", "0AD", "RE", "D2", "IM", "ITP")

#: Full names keyed by short name.
BENCHMARK_NAMES: dict[str, str] = {
    short: _REGISTRY[short].profile.name for short in BENCHMARK_SHORT_NAMES
}


def create_benchmark(short_name: str, rng: Optional[StreamRandom] = None,
                     **kwargs) -> Application3D:
    """Instantiate a benchmark application by its short name."""
    try:
        app_class = _REGISTRY[short_name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {short_name!r}; known: {known}") from None
    return app_class(rng=rng, **kwargs)


def get_profile(short_name: str) -> ApplicationProfile:
    """The static profile of a registered benchmark."""
    try:
        return _REGISTRY[short_name].profile
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {short_name!r}; known: {known}") from None


def all_benchmarks() -> list[str]:
    """All registered short names (the standard suite plus extensions)."""
    return list(_REGISTRY)
