"""The Pictor benchmark suite: six interactive 3D applications.

Table 2 of the paper lists four computer games and two VR applications
covering popular genres.  The original titles are real (partly closed-
source) games; here each is a synthetic application exposing the same
interface the cloud rendering stack sees — per-frame application logic,
GL draw/swap calls, randomly generated and moving scene objects, and a
ground-truth interaction model — parameterized to match the paper's
per-application characterization (CPU/GPU utilization, memory footprint,
PCIe traffic, scene dynamics).
"""

from repro.apps.base import (
    Action,
    Application3D,
    ApplicationProfile,
    InputKind,
    SceneDynamics,
)
from repro.apps.registry import (
    BENCHMARK_NAMES,
    BENCHMARK_SHORT_NAMES,
    all_benchmarks,
    create_benchmark,
    get_profile,
)
from repro.apps.supertuxkart import SuperTuxKart
from repro.apps.zeroad import ZeroAD
from repro.apps.redeclipse import RedEclipse
from repro.apps.dota2 import Dota2
from repro.apps.inmind import InMind
from repro.apps.imhotep import Imhotep

__all__ = [
    "Action",
    "Application3D",
    "ApplicationProfile",
    "BENCHMARK_NAMES",
    "BENCHMARK_SHORT_NAMES",
    "Dota2",
    "Imhotep",
    "InMind",
    "InputKind",
    "RedEclipse",
    "SceneDynamics",
    "SuperTuxKart",
    "ZeroAD",
    "all_benchmarks",
    "create_benchmark",
    "get_profile",
]
