"""PCIe bus model: shared bandwidth between the CPU and the GPU.

Frame copies from GPU memory back to system memory (the FC stage) and
upload traffic (vertex/texture data) both cross this bus.  The paper's
characterization shows per-benchmark PCIe usage up to ~5 GB/s out of the
31.5 GB/s a PCIe 3 x16 link offers (Figure 9) and identifies the frame
copy as a dominant latency component (Figure 13), so the model tracks
per-direction byte counters and lets concurrent transfers share the link
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Environment, SimulationError

__all__ = ["PcieBus", "PcieSpec", "PcieTransfer"]


@dataclass(frozen=True)
class PcieSpec:
    """Static link description (defaults: PCIe 3.0 x16)."""

    bandwidth_gbps: float = 31.5  # GB/s usable
    latency_us: float = 5.0       # per-transfer setup latency

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9


@dataclass
class PcieTransfer:
    """Record of one completed DMA transfer."""

    direction: str          # "to_gpu" or "from_gpu"
    size_bytes: float
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class PcieBus:
    """The shared PCIe link of one server machine.

    Transfers are modelled with an effective-bandwidth approach: a transfer
    observes the number of concurrent transfers when it starts and receives
    an equal share of the link for its whole duration.
    """

    VALID_DIRECTIONS = ("to_gpu", "from_gpu")

    def __init__(self, env: Environment, spec: Optional[PcieSpec] = None):
        self.env = env
        self.spec = spec or PcieSpec()
        self._active_transfers = 0
        self.transfers: list[PcieTransfer] = []
        self.bytes_by_direction: dict[str, float] = {d: 0.0 for d in self.VALID_DIRECTIONS}

    def transfer(self, size_bytes: float, direction: str):
        """Generator performing one DMA transfer; returns the record."""
        if direction not in self.VALID_DIRECTIONS:
            raise SimulationError(
                f"direction must be one of {self.VALID_DIRECTIONS}, got {direction!r}")
        if size_bytes < 0:
            raise SimulationError(f"transfer size cannot be negative: {size_bytes}")

        started = self.env.now
        self._active_transfers += 1
        try:
            share = max(1, self._active_transfers)
            effective_bw = self.spec.bandwidth_bytes_per_s / share
            duration = self.spec.latency_us * 1e-6 + size_bytes / effective_bw
            yield self.env.timeout(duration)
        finally:
            self._active_transfers = max(0, self._active_transfers - 1)

        record = PcieTransfer(direction=direction, size_bytes=size_bytes,
                              started_at=started, finished_at=self.env.now)
        self.transfers.append(record)
        self.bytes_by_direction[direction] += size_bytes
        return record

    # -- reporting -------------------------------------------------------------
    def bandwidth_usage(self, direction: str, elapsed: Optional[float] = None) -> float:
        """Average bytes/second moved in ``direction`` over the run."""
        if direction not in self.VALID_DIRECTIONS:
            raise SimulationError(
                f"direction must be one of {self.VALID_DIRECTIONS}, got {direction!r}")
        horizon = elapsed if elapsed is not None else self.env.now
        if horizon <= 0:
            return 0.0
        return self.bytes_by_direction[direction] / horizon

    @property
    def active_transfers(self) -> int:
        return self._active_transfers

    def total_bytes(self) -> float:
        return sum(self.bytes_by_direction.values())
