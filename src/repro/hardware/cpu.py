"""Multicore CPU model with contention, utilization and Top-Down accounting.

The model is an *effective-rate* model: every piece of CPU work declares a
nominal service time (the time it would take on an idle machine) and a
demand (how many cores' worth of parallelism it uses).  The CPU tracks the
total demand of all concurrently running work; when demand exceeds the
core count, everything currently running is slowed down proportionally.
Memory-boundness adds a further penalty derived from the shared last-level
cache model.

The CPU also keeps Top-Down cycle accounting (retiring / front-end /
back-end / bad-speculation) per thread so the Pictor PMU reader can
reproduce Figure 14, and exposes time-weighted utilization for Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Environment, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.hardware.memory import MemorySystem

__all__ = ["Cpu", "CpuSpec", "CpuThread", "CycleBreakdown", "StageCpuProfile"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a CPU package.

    The defaults model the paper's server part (Intel i7-7820X): 8 cores at
    a nominal 3.6 GHz with an 11 MB L3.
    """

    cores: int = 8
    frequency_ghz: float = 3.6
    l3_mb: float = 11.0
    smt: int = 1

    @property
    def hardware_threads(self) -> int:
        return self.cores * self.smt

    @property
    def cycles_per_second(self) -> float:
        return self.frequency_ghz * 1e9


@dataclass
class CycleBreakdown:
    """Top-Down level-1 cycle accounting."""

    retiring: float = 0.0
    frontend_bound: float = 0.0
    backend_bound: float = 0.0
    bad_speculation: float = 0.0

    @property
    def total(self) -> float:
        return (self.retiring + self.frontend_bound
                + self.backend_bound + self.bad_speculation)

    def add(self, other: "CycleBreakdown") -> None:
        self.retiring += other.retiring
        self.frontend_bound += other.frontend_bound
        self.backend_bound += other.backend_bound
        self.bad_speculation += other.bad_speculation

    def fractions(self) -> dict[str, float]:
        """Normalized shares; zeros if no cycles were recorded yet."""
        total = self.total
        if total <= 0:
            return {"retiring": 0.0, "frontend_bound": 0.0,
                    "backend_bound": 0.0, "bad_speculation": 0.0}
        return {
            "retiring": self.retiring / total,
            "frontend_bound": self.frontend_bound / total,
            "backend_bound": self.backend_bound / total,
            "bad_speculation": self.bad_speculation / total,
        }


@dataclass(frozen=True)
class StageCpuProfile:
    """How a pipeline stage uses the CPU.

    ``demand``
        Cores' worth of parallelism while the stage runs (e.g. 1.6 for an
        application-logic stage that keeps ~1.6 cores busy).
    ``memory_intensity``
        Fraction of the stage's nominal time that is exposed to the memory
        system; higher values mean the stage slows down more when the L3
        miss rate rises (uncached CPU→GPU upload buffers behave this way).
    ``base_retiring`` / ``base_frontend`` / ``base_bad_speculation``
        Baseline Top-Down shares when memory is uncontended.  The remaining
        share is back-end bound and grows with memory pressure.
    ``working_set_mb``
        The stage's contribution to L3 pressure.
    """

    demand: float = 1.0
    memory_intensity: float = 0.5
    base_retiring: float = 0.30
    base_frontend: float = 0.10
    base_bad_speculation: float = 0.05
    working_set_mb: float = 4.0

    def __post_init__(self) -> None:
        base = self.base_retiring + self.base_frontend + self.base_bad_speculation
        if base >= 1.0:
            raise ValueError(
                "baseline Top-Down shares must leave room for back-end stalls, "
                f"got {base:.2f} >= 1.0"
            )
        if self.demand <= 0:
            raise ValueError(f"CPU demand must be positive, got {self.demand}")
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ValueError(
                f"memory_intensity must be in [0, 1], got {self.memory_intensity}"
            )


class CpuThread:
    """A software thread registered on a :class:`Cpu`.

    Pipeline stages call :meth:`run` to burn CPU time.  The thread keeps
    its own Top-Down cycle accounting and busy-time integral so per-process
    utilization (application vs. VNC proxy) can be reported separately.
    """

    def __init__(self, cpu: "Cpu", name: str, owner: str = ""):
        self.cpu = cpu
        self.name = name
        self.owner = owner or name
        self.cycles = CycleBreakdown()
        self.busy_time = 0.0
        self.core_seconds = 0.0

    def run(self, nominal_time: float, profile: StageCpuProfile):
        """Generator: occupy the CPU for ``nominal_time`` of idle-machine work.

        The actual elapsed time reflects core oversubscription and memory
        contention at the moment the work starts.  Yields exactly one
        timeout, so callers embed it with ``yield from thread.run(...)``.
        """
        if nominal_time < 0:
            raise SimulationError(f"negative CPU time requested: {nominal_time}")
        if nominal_time == 0:
            return 0.0

        self.cpu._begin_work(profile.demand)
        try:
            slowdown = self.cpu.scheduling_slowdown()
            memory_penalty = self.cpu.memory_penalty(profile)
            actual = nominal_time * slowdown * memory_penalty
            yield self.cpu.env.timeout(actual)
        finally:
            self.cpu._end_work(profile.demand)

        self._account(nominal_time, actual, profile)
        return actual

    def _account(self, nominal: float, actual: float,
                 profile: StageCpuProfile) -> None:
        self.busy_time += actual
        self.core_seconds += actual * min(profile.demand, self.cpu.spec.cores)
        cycles = actual * self.cpu.spec.cycles_per_second * min(
            profile.demand, self.cpu.spec.cores)
        base_backend = 1.0 - (profile.base_retiring + profile.base_frontend
                              + profile.base_bad_speculation)
        # Extra stall cycles beyond the idle-machine baseline are attributed
        # to the back end: that is where memory contention shows up.
        stretch = max(actual / nominal, 1.0) if nominal > 0 else 1.0
        extra_backend = 1.0 - 1.0 / stretch
        scale = 1.0 - extra_backend
        self.cycles.add(CycleBreakdown(
            retiring=cycles * profile.base_retiring * scale,
            frontend_bound=cycles * profile.base_frontend * scale,
            bad_speculation=cycles * profile.base_bad_speculation * scale,
            backend_bound=cycles * (base_backend * scale + extra_backend),
        ))

    def utilization(self, elapsed: float) -> float:
        """Average core occupancy over ``elapsed`` seconds (1.0 == one core)."""
        if elapsed <= 0:
            return 0.0
        return self.core_seconds / elapsed


class Cpu:
    """The shared multicore CPU of a server or client machine."""

    def __init__(self, env: Environment, spec: Optional[CpuSpec] = None,
                 memory: Optional["MemorySystem"] = None):
        self.env = env
        self.spec = spec or CpuSpec()
        self.memory = memory
        self.threads: list[CpuThread] = []
        self._active_demand = 0.0
        self._last_change = env.now
        self._demand_integral = 0.0
        self._peak_demand = 0.0

    # -- thread management ---------------------------------------------------
    def thread(self, name: str, owner: str = "") -> CpuThread:
        t = CpuThread(self, name, owner)
        self.threads.append(t)
        return t

    # -- contention ------------------------------------------------------------
    @property
    def active_demand(self) -> float:
        return self._active_demand

    def scheduling_slowdown(self) -> float:
        """Slowdown due to runnable demand exceeding the core count."""
        if self._active_demand <= self.spec.cores:
            return 1.0
        return self._active_demand / self.spec.cores

    def memory_penalty(self, profile: StageCpuProfile) -> float:
        """Slowdown from shared-cache / DRAM contention for this stage."""
        if self.memory is None:
            return 1.0
        return self.memory.cpu_stall_factor(profile.memory_intensity)

    def _begin_work(self, demand: float) -> None:
        self._integrate()
        self._active_demand += demand
        self._peak_demand = max(self._peak_demand, self._active_demand)
        if self.memory is not None:
            self.memory.register_pressure(demand)

    def _end_work(self, demand: float) -> None:
        self._integrate()
        self._active_demand = max(0.0, self._active_demand - demand)
        if self.memory is not None:
            self.memory.release_pressure(demand)

    def _integrate(self) -> None:
        now = self.env.now
        span = now - self._last_change
        if span > 0:
            self._demand_integral += min(self._active_demand, self.spec.cores) * span
            self._last_change = now

    # -- reporting ---------------------------------------------------------------
    def demand_core_seconds(self) -> float:
        """The busy-core integral so far (fast-forward probe seam)."""
        self._integrate()
        return self._demand_integral

    def record_synthetic_demand(self, core_seconds: float) -> None:
        """Credit ``core_seconds`` of busy-core time skipped by a macro jump."""
        if core_seconds < 0:
            raise ValueError("synthetic core-seconds cannot be negative")
        self._integrate()
        self._demand_integral += core_seconds

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Machine-wide utilization in "cores busy" (e.g. 2.66 == 266%).

        Without an explicit horizon the virtual clock is used: the
        integral includes macro-jump credit, so dividing by the virtual
        elapsed keeps post-jump samples consistent (identical to
        ``env.now`` when fast-forward never fired).
        """
        self._integrate()
        horizon = elapsed if elapsed is not None else self.env.virtual_now
        if horizon <= 0:
            return 0.0
        return self._demand_integral / horizon

    def utilization_by_owner(self, elapsed: float) -> dict[str, float]:
        """Per-owner core occupancy (application vs. proxy processes)."""
        result: dict[str, float] = {}
        for thread in self.threads:
            result[thread.owner] = result.get(thread.owner, 0.0) + thread.utilization(elapsed)
        return result

    def cycle_breakdown(self, owner: Optional[str] = None) -> CycleBreakdown:
        """Aggregate Top-Down cycles, optionally restricted to one owner."""
        total = CycleBreakdown()
        for thread in self.threads:
            if owner is None or thread.owner == owner:
                total.add(thread.cycles)
        return total

    @property
    def peak_demand(self) -> float:
        return self._peak_demand
