"""Server power model and wall-power meter.

The paper measures whole-server power with an external clamp meter and
reports that each additional colocated instance adds less than ~20% to
total draw, so per-instance power falls by roughly 33%, 50% and 61% at
two, three and four instances (Figure 17).  That amortization comes from
the large idle floor of a GPU server: the model therefore splits power
into an idle component plus dynamic components proportional to CPU and
GPU utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cpu import Cpu
    from repro.hardware.gpu import Gpu

__all__ = ["PowerMeter", "PowerModel", "PowerSpec"]


@dataclass(frozen=True)
class PowerSpec:
    """Static power characteristics of one server machine."""

    # GPU servers have a high idle floor (PSU losses, fans, idle GPU/DRAM
    # clocks); the dynamic range above it is comparatively small, which is
    # what makes consolidation so effective in Figure 17.
    idle_watts: float = 200.0
    cpu_watts_per_core: float = 7.0
    gpu_max_dynamic_watts: float = 70.0
    # Fixed per-instance overhead (NIC, extra fans, proxy processes).
    per_instance_watts: float = 5.0

    def __post_init__(self) -> None:
        for name in ("idle_watts", "cpu_watts_per_core",
                     "gpu_max_dynamic_watts", "per_instance_watts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


class PowerModel:
    """Computes instantaneous and average server power from utilization."""

    def __init__(self, spec: Optional[PowerSpec] = None):
        self.spec = spec or PowerSpec()

    def average_power(self, cpu_cores_busy: float, gpu_utilization: float,
                      instances: int) -> float:
        """Average wall power for a run with the given average utilizations."""
        if cpu_cores_busy < 0 or gpu_utilization < 0 or instances < 0:
            raise ValueError("utilizations and instance counts cannot be negative")
        dynamic_cpu = self.spec.cpu_watts_per_core * cpu_cores_busy
        dynamic_gpu = self.spec.gpu_max_dynamic_watts * min(1.0, gpu_utilization)
        return (self.spec.idle_watts + dynamic_cpu + dynamic_gpu
                + self.spec.per_instance_watts * instances)

    def per_instance_power(self, cpu_cores_busy: float, gpu_utilization: float,
                           instances: int) -> float:
        """Average power attributed to each of ``instances`` colocated apps."""
        if instances <= 0:
            raise ValueError("instances must be positive")
        return self.average_power(cpu_cores_busy, gpu_utilization, instances) / instances


class PowerMeter:
    """A wall-power meter sampling a server machine over simulated time.

    The meter integrates energy so experiments can report both average
    power and total energy (the §5.3 energy-saving comparison).
    """

    def __init__(self, env: Environment, model: PowerModel,
                 cpu: "Cpu", gpu: "Gpu"):
        self.env = env
        self.model = model
        self.cpu = cpu
        self.gpu = gpu
        self.samples: list[tuple[float, float]] = []
        # Weighted samples credited by fast-forward macro jumps: the sum
        # and count a periodic sampler would have accumulated over the
        # skipped interval at the macro steady-state power level.
        self.synthetic_sum = 0.0
        self.synthetic_count = 0.0
        self._instances = 0

    def set_instance_count(self, instances: int) -> None:
        if instances < 0:
            raise ValueError("instance count cannot be negative")
        self._instances = instances

    def sample(self) -> float:
        """Take one power sample (watts) at the current simulation time."""
        watts = self.model.average_power(
            cpu_cores_busy=self.cpu.utilization(),
            gpu_utilization=self.gpu.utilization(),
            instances=self._instances,
        )
        self.samples.append((self.env.now, watts))
        return watts

    def sampling_process(self, interval: float = 1.0):
        """A simulation process that samples power periodically."""
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        while True:
            self.sample()
            yield self.env.timeout(interval)

    def record_synthetic(self, watts: float, weight: float) -> None:
        """Credit ``weight`` samples at ``watts`` skipped by a macro jump.

        ``weight`` is the (fractional) number of periodic samples the
        skipped interval would have produced; ``watts`` is the macro
        model's steady-state power level for that interval.
        """
        if weight < 0:
            raise ValueError("synthetic sample weight cannot be negative")
        self.synthetic_sum += watts * weight
        self.synthetic_count += weight

    def steady_power(self, cpu_cores_busy: float,
                     gpu_utilization: float) -> float:
        """The model's power level at the given steady utilizations."""
        return self.model.average_power(
            cpu_cores_busy=cpu_cores_busy, gpu_utilization=gpu_utilization,
            instances=self._instances)

    # -- reporting ---------------------------------------------------------------
    def average_power(self) -> float:
        if not self.samples and not self.synthetic_count:
            return self.sample()
        total = sum(w for _, w in self.samples) + self.synthetic_sum
        return total / (len(self.samples) + self.synthetic_count)

    def energy_joules(self, elapsed: Optional[float] = None) -> float:
        horizon = elapsed if elapsed is not None else self.env.now
        return self.average_power() * horizon

    def per_instance_power(self) -> float:
        if self._instances <= 0:
            raise ValueError("no instances registered on this meter")
        return self.average_power() / self._instances
