"""Machine composition: server and client boxes used in the experiments.

``ServerMachine`` mirrors the paper's testbed server (8-core i7-7820X,
16 GB RAM, GTX 1080 Ti, one 1 Gbps NIC per instance) and wires together
the CPU, memory system, GPU, PCIe bus and power meter.  ``ClientMachine``
models the thin clients (4-core i5-7400) that run the intelligent client
or display frames for a human user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.cpu import Cpu, CpuSpec
from repro.hardware.gpu import Gpu, GpuSpec
from repro.hardware.memory import MemorySpec, MemorySystem
from repro.hardware.pcie import PcieBus, PcieSpec
from repro.hardware.power import PowerMeter, PowerModel, PowerSpec
from repro.sim.engine import Environment

__all__ = ["ClientMachine", "MachineSpec", "ServerMachine"]


@dataclass(frozen=True)
class MachineSpec:
    """Full static description of a server machine."""

    cpu: CpuSpec = field(default_factory=CpuSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    gpu: GpuSpec = field(default_factory=GpuSpec)
    pcie: PcieSpec = field(default_factory=PcieSpec)
    power: PowerSpec = field(default_factory=PowerSpec)

    @staticmethod
    def paper_server() -> "MachineSpec":
        """The evaluation server from Section 4."""
        return MachineSpec(
            cpu=CpuSpec(cores=8, frequency_ghz=3.6, l3_mb=11.0),
            memory=MemorySpec(l3_mb=11.0, dram_gb=16.0),
            gpu=GpuSpec(memory_gb=11.0),
            pcie=PcieSpec(bandwidth_gbps=31.5),
            power=PowerSpec(),
        )

    @staticmethod
    def paper_client() -> "MachineSpec":
        """The client machines from Section 4 (4-core i5-7400, 8 GB)."""
        return MachineSpec(
            cpu=CpuSpec(cores=4, frequency_ghz=3.0, l3_mb=6.0),
            memory=MemorySpec(l3_mb=6.0, dram_gb=8.0),
            gpu=GpuSpec(memory_gb=1.0),
            pcie=PcieSpec(bandwidth_gbps=15.75),
            power=PowerSpec(idle_watts=30.0, cpu_watts_per_core=6.0,
                            gpu_max_dynamic_watts=20.0, per_instance_watts=2.0),
        )


class ServerMachine:
    """A cloud rendering server: CPU + memory + GPU + PCIe + power meter."""

    def __init__(self, env: Environment, spec: Optional[MachineSpec] = None,
                 name: str = "server"):
        self.env = env
        self.name = name
        self.spec = spec or MachineSpec.paper_server()
        self.memory = MemorySystem(env, self.spec.memory)
        self.cpu = Cpu(env, self.spec.cpu, memory=self.memory)
        self.gpu = Gpu(env, self.spec.gpu)
        self.pcie = PcieBus(env, self.spec.pcie)
        self.power_meter = PowerMeter(env, PowerModel(self.spec.power),
                                      self.cpu, self.gpu)

    def summary(self, elapsed: Optional[float] = None) -> dict[str, float]:
        """One-line machine-level counters, used by the resource monitors.

        Without an explicit horizon the virtual clock is used so the
        macro-jump credit in the counters divides by the matching
        elapsed time (identical to ``env.now`` without fast-forward).
        """
        horizon = elapsed if elapsed is not None else self.env.virtual_now
        return {
            "cpu_utilization_cores": self.cpu.utilization(horizon),
            "gpu_utilization": self.gpu.utilization(horizon),
            "gpu_memory_mb": self.gpu.allocated_memory_mb,
            "pcie_to_gpu_bytes_per_s": self.pcie.bandwidth_usage("to_gpu", horizon),
            "pcie_from_gpu_bytes_per_s": self.pcie.bandwidth_usage("from_gpu", horizon),
            "l3_miss_rate": self.memory.observed_miss_rate(),
        }


class ClientMachine:
    """A thin client machine: it only needs a CPU for decode + the agent."""

    def __init__(self, env: Environment, spec: Optional[MachineSpec] = None,
                 name: str = "client"):
        self.env = env
        self.name = name
        self.spec = spec or MachineSpec.paper_client()
        self.memory = MemorySystem(env, self.spec.memory)
        self.cpu = Cpu(env, self.spec.cpu, memory=self.memory)
