"""GPU model: render queue, shared L2 / private texture caches, utilization.

The GPU executes *render jobs* submitted by rendering contexts (one
context per application instance, the analogue of a vGPU).  The model
captures the behaviours the paper's evaluation depends on:

* GPU utilization between roughly 20% and 55% for a single instance
  (Figure 8) — rendering a frame takes far less than the frame interval,
  so the GPU idles between frames;
* render time inflation when several contexts share the GPU, driven by
  the internal graphics pipeline overlapping frames from different
  instances and thrashing the shared L2 (Figures 13 and 16);
* texture caches are private per context, so their miss rate does not
  move with colocation (Figure 16);
* GPU timestamps for the OpenGL time-query objects used by Pictor's
  measurement framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Environment, SimulationError

__all__ = ["Gpu", "GpuRenderJob", "GpuSpec", "GpuWorkloadProfile", "RenderContext"]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of the GPU (defaults model a GTX 1080 Ti)."""

    memory_gb: float = 11.0
    l2_kb: float = 2816.0
    # How many frames the internal pipeline can overlap before serialization.
    pipeline_depth: int = 2
    # Relative cost of sharing the shader array between concurrent contexts.
    sharing_slowdown_per_context: float = 0.18
    # How strongly concurrent contexts raise the shared-L2 miss rate.
    l2_pressure_sensitivity: float = 0.35
    # Extra render-time factor per unit of L2 miss-rate increase.
    l2_miss_penalty: float = 0.6


@dataclass(frozen=True)
class GpuWorkloadProfile:
    """Per-application GPU behaviour when running alone."""

    base_l2_miss_rate: float = 0.30
    base_texture_miss_rate: float = 0.20
    gpu_memory_mb: float = 600.0
    # Supported: whether PMU readings are available (0 A.D. uses OpenGL 1.3
    # which the vendor tools cannot instrument — Figure 16 note).
    pmu_readable: bool = True

    def __post_init__(self) -> None:
        for name in ("base_l2_miss_rate", "base_texture_miss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.gpu_memory_mb < 0:
            raise ValueError("GPU memory footprint cannot be negative")


@dataclass
class GpuRenderJob:
    """One frame's worth of GPU rendering."""

    context_name: str
    nominal_time: float
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def gpu_time(self) -> float:
        return self.finished_at - self.started_at


class RenderContext:
    """A per-application (vGPU) rendering context."""

    def __init__(self, gpu: "Gpu", name: str, profile: GpuWorkloadProfile,
                 virtualization_overhead: float = 0.0):
        self.gpu = gpu
        self.name = name
        self.profile = profile
        self.virtualization_overhead = virtualization_overhead
        self.frames_rendered = 0
        self.gpu_busy_time = 0.0
        self.l2_accesses = 0.0
        self.l2_misses = 0.0
        self.texture_accesses = 0.0
        self.texture_misses = 0.0
        self.jobs: list[GpuRenderJob] = []

    # -- rendering -------------------------------------------------------------
    def render(self, nominal_time: float, work_units: float = 1.0):
        """Generator rendering one frame; returns the finished job.

        ``work_units`` scales the cache traffic attributed to the frame
        (busier frames touch more data).
        """
        if nominal_time <= 0:
            raise SimulationError(f"render time must be positive, got {nominal_time}")
        job = GpuRenderJob(context_name=self.name, nominal_time=nominal_time)
        job.started_at = self.gpu.env.now

        self.gpu._begin_render(self)
        try:
            slowdown = self.gpu.sharing_slowdown()
            l2_penalty = self.gpu.l2_penalty(self)
            actual = nominal_time * slowdown * l2_penalty
            actual *= 1.0 + self.virtualization_overhead
            yield self.gpu.env.timeout(actual)
        finally:
            self.gpu._end_render(self)

        job.finished_at = self.gpu.env.now
        self._account(job, work_units)
        return job

    def _account(self, job: GpuRenderJob, work_units: float) -> None:
        self.frames_rendered += 1
        self.gpu_busy_time += job.gpu_time
        self.jobs.append(job)
        # Cache traffic grows with the frame's work units.
        l2_accesses = 1e5 * work_units
        texture_accesses = 4e4 * work_units
        self.l2_accesses += l2_accesses
        self.l2_misses += l2_accesses * self.gpu.effective_l2_miss_rate(self)
        self.texture_accesses += texture_accesses
        self.texture_misses += texture_accesses * self.profile.base_texture_miss_rate

    # -- counters ----------------------------------------------------------------
    def l2_miss_rate(self) -> Optional[float]:
        """Observed shared-L2 miss rate, or None if the PMU is unreadable."""
        if not self.profile.pmu_readable:
            return None
        if self.l2_accesses <= 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    def texture_miss_rate(self) -> Optional[float]:
        if not self.profile.pmu_readable:
            return None
        if self.texture_accesses <= 0:
            return 0.0
        return self.texture_misses / self.texture_accesses

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.gpu_busy_time / elapsed


class Gpu:
    """The shared GPU of one server machine."""

    def __init__(self, env: Environment, spec: Optional[GpuSpec] = None):
        self.env = env
        self.spec = spec or GpuSpec()
        self.contexts: list[RenderContext] = []
        self._active_renders = 0
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0
        self._allocated_memory_mb = 0.0

    # -- context management --------------------------------------------------------
    def create_context(self, name: str, profile: GpuWorkloadProfile,
                       virtualization_overhead: float = 0.0) -> RenderContext:
        if self._allocated_memory_mb + profile.gpu_memory_mb > self.spec.memory_gb * 1024:
            raise SimulationError(
                f"GPU memory exhausted allocating context {name!r}: "
                f"{self._allocated_memory_mb + profile.gpu_memory_mb:.0f} MB "
                f"> {self.spec.memory_gb * 1024:.0f} MB"
            )
        context = RenderContext(self, name, profile, virtualization_overhead)
        self.contexts.append(context)
        self._allocated_memory_mb += profile.gpu_memory_mb
        return context

    def destroy_context(self, context: RenderContext) -> None:
        if context in self.contexts:
            self.contexts.remove(context)
            self._allocated_memory_mb -= context.profile.gpu_memory_mb

    # -- contention ------------------------------------------------------------------
    def sharing_slowdown(self) -> float:
        """Render-time inflation from sharing the shader array."""
        concurrent = max(1, self._active_renders)
        if concurrent <= 1:
            return 1.0
        overlapped = min(concurrent, self.spec.pipeline_depth)
        serialized = concurrent - overlapped
        return (1.0
                + self.spec.sharing_slowdown_per_context * (overlapped - 1)
                + 0.6 * serialized)

    def l2_pressure(self) -> float:
        """Shared-L2 pressure from the number of resident contexts."""
        others = max(0, len(self.contexts) - 1)
        return min(1.0, others * self.spec.l2_pressure_sensitivity)

    def effective_l2_miss_rate(self, context: RenderContext) -> float:
        base = context.profile.base_l2_miss_rate
        return min(1.0, base + (1.0 - base) * self.l2_pressure())

    def l2_penalty(self, context: RenderContext) -> float:
        """Render-time multiplier from L2 miss-rate increase over standalone."""
        extra = self.effective_l2_miss_rate(context) - context.profile.base_l2_miss_rate
        return 1.0 + self.spec.l2_miss_penalty * extra

    # -- busy-time bookkeeping ----------------------------------------------------------
    def _begin_render(self, context: RenderContext) -> None:
        if self._active_renders == 0:
            self._busy_since = self.env.now
        self._active_renders += 1

    def _end_render(self, context: RenderContext) -> None:
        self._active_renders = max(0, self._active_renders - 1)
        if self._active_renders == 0 and self._busy_since is not None:
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None

    # -- reporting -----------------------------------------------------------------------
    def busy_seconds(self) -> float:
        """Total busy time so far, folding any in-progress render
        (fast-forward probe seam)."""
        busy = self._busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return busy

    def record_synthetic_busy(self, seconds: float) -> None:
        """Credit ``seconds`` of busy time skipped by a macro jump."""
        if seconds < 0:
            raise ValueError("synthetic busy seconds cannot be negative")
        self._busy_time += seconds

    def utilization(self, elapsed: Optional[float] = None) -> float:
        # Without an explicit horizon the virtual clock is used, so the
        # macro-jump credit in _busy_time divides by the matching virtual
        # elapsed (identical to env.now when fast-forward never fired).
        horizon = elapsed if elapsed is not None else self.env.virtual_now
        if horizon <= 0:
            return 0.0
        busy = self._busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return min(1.0, busy / horizon)

    @property
    def allocated_memory_mb(self) -> float:
        return self._allocated_memory_mb

    @property
    def active_renders(self) -> int:
        return self._active_renders
