"""Hardware substrate models: CPU, GPU, PCIe, memory system, and power.

These models are deliberately *behavioural* rather than cycle-accurate:
they expose the quantities the paper's evaluation depends on — stage
latencies under contention, utilizations, Top-Down cycle shares, cache
miss rates, PCIe/network bandwidth, and power draw — as first-class,
queryable state.
"""

from repro.hardware.cpu import Cpu, CpuSpec, CpuThread, CycleBreakdown, StageCpuProfile
from repro.hardware.gpu import Gpu, GpuRenderJob, GpuSpec, GpuWorkloadProfile
from repro.hardware.machine import ClientMachine, MachineSpec, ServerMachine
from repro.hardware.memory import LlcModel, MemorySystem, MemorySpec
from repro.hardware.pcie import PcieBus, PcieSpec, PcieTransfer
from repro.hardware.power import PowerMeter, PowerModel, PowerSpec

__all__ = [
    "ClientMachine",
    "Cpu",
    "CpuSpec",
    "CpuThread",
    "CycleBreakdown",
    "Gpu",
    "GpuRenderJob",
    "GpuSpec",
    "GpuWorkloadProfile",
    "LlcModel",
    "MachineSpec",
    "MemorySpec",
    "MemorySystem",
    "PcieBus",
    "PcieSpec",
    "PcieTransfer",
    "PowerMeter",
    "PowerModel",
    "PowerSpec",
    "ServerMachine",
    "StageCpuProfile",
]
