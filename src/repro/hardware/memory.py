"""Shared memory system: last-level cache and DRAM contention model.

The evaluation in the paper leans on two memory-system observations:

* the benchmarks are off-chip memory bound — L3 miss rates above 70% even
  when running alone, because graphics drivers use uncached write-combining
  buffers for CPU→GPU uploads (Figure 15, Section 5.1.3);
* colocating more instances raises both back-end stall cycles and L3 miss
  rates (Figures 14 and 15).

The model therefore exposes a *miss rate* that starts high and grows with
cache pressure, plus a CPU stall factor derived from it that the CPU model
applies to memory-intensive stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Environment

__all__ = ["LlcModel", "MemorySpec", "MemorySystem"]


@dataclass(frozen=True)
class MemorySpec:
    """Static description of the memory hierarchy below the cores."""

    l3_mb: float = 11.0
    dram_gb: float = 16.0
    dram_bandwidth_gbps: float = 60.0
    # How strongly additional working sets raise the miss rate: a pressure
    # of 1.0 (working sets equal to the L3) adds this fraction of the
    # remaining headroom to the miss rate.
    pressure_sensitivity: float = 0.35
    # Maximum extra stall factor a fully memory-bound stage can incur when
    # the cache is completely thrashed.  Most of the colocation slowdown
    # comes from core oversubscription; the memory system adds the rest.
    max_stall_factor: float = 1.5


@dataclass
class LlcModel:
    """Last-level cache statistics for a single workload.

    ``base_miss_rate`` is the miss rate observed when the workload runs
    alone (already high for these graphics workloads); the effective rate
    adds a share of the remaining headroom proportional to cache pressure
    from co-runners.
    """

    base_miss_rate: float
    working_set_mb: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_miss_rate <= 1.0:
            raise ValueError(f"miss rate must be in [0, 1], got {self.base_miss_rate}")
        if self.working_set_mb < 0:
            raise ValueError("working set cannot be negative")

    def effective_miss_rate(self, pressure: float, sensitivity: float) -> float:
        headroom = 1.0 - self.base_miss_rate
        extra = headroom * min(1.0, pressure * sensitivity)
        return min(1.0, self.base_miss_rate + extra)


class MemorySystem:
    """The shared L3 + DRAM subsystem of one server machine.

    Workloads register their working sets; the resulting *cache pressure*
    (total co-runner working set relative to L3 capacity) drives both the
    reported miss rates and the stall factor applied to CPU stages.
    Instantaneous pressure from in-flight CPU work is also tracked so the
    stall factor reflects how many memory-hungry stages run concurrently.
    """

    def __init__(self, env: Environment, spec: Optional[MemorySpec] = None):
        self.env = env
        self.spec = spec or MemorySpec()
        self._registered_working_set_mb = 0.0
        self._resident_workloads = 0
        self._active_pressure = 0.0
        self.accesses = 0.0
        self.misses = 0.0
        self.dram_bytes = 0.0

    # -- workload registration ------------------------------------------------
    def register_workload(self, working_set_mb: float) -> None:
        """Declare a long-lived workload's working set (an app instance)."""
        if working_set_mb < 0:
            raise ValueError("working set cannot be negative")
        self._registered_working_set_mb += working_set_mb
        self._resident_workloads += 1

    def unregister_workload(self, working_set_mb: float) -> None:
        self._registered_working_set_mb = max(
            0.0, self._registered_working_set_mb - working_set_mb)
        self._resident_workloads = max(0, self._resident_workloads - 1)

    def register_pressure(self, demand: float) -> None:
        """Instantaneous pressure from a CPU stage entering execution."""
        self._active_pressure += demand

    def release_pressure(self, demand: float) -> None:
        self._active_pressure = max(0.0, self._active_pressure - demand)

    # -- derived quantities -----------------------------------------------------
    @property
    def resident_workloads(self) -> int:
        return self._resident_workloads

    def cache_pressure(self) -> float:
        """Working-set pressure relative to the L3 capacity.

        The first workload's own working set does not count as *pressure*
        — its footprint is already reflected in its base miss rate — so a
        single instance reproduces the paper's standalone miss rates.
        """
        if self._resident_workloads <= 1:
            return 0.0
        per_workload = self._registered_working_set_mb / self._resident_workloads
        competing = self._registered_working_set_mb - per_workload
        return competing / max(self.spec.l3_mb, 1e-9)

    def effective_miss_rate(self, llc: LlcModel) -> float:
        return llc.effective_miss_rate(self.cache_pressure(),
                                       self.spec.pressure_sensitivity)

    def cpu_stall_factor(self, memory_intensity: float) -> float:
        """Multiplier applied to a CPU stage's nominal time.

        Combines steady-state cache pressure with the instantaneous number
        of concurrently executing memory-hungry stages.
        """
        pressure = self.cache_pressure()
        concurrency = max(0.0, self._active_pressure - 1.0) / 8.0
        raw = 1.0 + (self.spec.max_stall_factor - 1.0) * min(
            1.0, 0.7 * min(1.0, pressure) + 0.3 * min(1.0, concurrency))
        return 1.0 + (raw - 1.0) * memory_intensity

    # -- counter bookkeeping -------------------------------------------------------
    def record_accesses(self, accesses: float, llc: LlcModel) -> float:
        """Record L3 accesses for a workload; returns the misses charged."""
        if accesses < 0:
            raise ValueError("access count cannot be negative")
        miss_rate = self.effective_miss_rate(llc)
        misses = accesses * miss_rate
        self.accesses += accesses
        self.misses += misses
        self.dram_bytes += misses * 64.0  # one cache line per miss
        return misses

    def observed_miss_rate(self) -> float:
        if self.accesses <= 0:
            return 0.0
        return self.misses / self.accesses
