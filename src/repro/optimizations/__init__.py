"""Section 6: the two frame-copy optimizations.

The characterization in Section 5 shows that the frame-copy (FC) stage is
the dominant component of the application-side latency in the TurboVNC /
VirtualGL stack.  Two inefficiencies are responsible, and each gets an
optimization:

1. **Window-attribute memoization** — the interposer calls
   ``XGetWindowAttributes`` before every copy just to learn the window
   resolution (6–9 ms per call).  Resolutions rarely change mid-session,
   so the result is cached and refreshed only when a resize event is seen.

2. **Two-step asynchronous frame copy** — the baseline copy halts the
   application thread until the PCIe DMA completes.  Splitting the copy
   into *start* and *finish* halves (issue the copy for frame *i−1*, keep
   working, and only finish it after the application logic of frame
   *i+1*) removes the halt, at the cost of one extra frame of delivery
   latency for the copied frame.

Together they improve server FPS by 57.7% on average (115.2% maximum) and
reduce RTT by 8.5% on average in the paper's measurements (Figure 22).
The mechanics live in :class:`~repro.graphics.interposer.GraphicsInterposer`
and the session's application loop; this package provides the
configuration helpers and the optimization metadata used by the
experiment harnesses and ablations.
"""

from repro.optimizations.frame_copy import (
    OPTIMIZATIONS,
    Optimization,
    apply_optimizations,
    optimized_pipeline_config,
)

__all__ = [
    "OPTIMIZATIONS",
    "Optimization",
    "apply_optimizations",
    "optimized_pipeline_config",
]
