"""Configuration helpers for the Section-6 frame-copy optimizations."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.graphics.pipeline import PipelineConfig
from repro.server.session import SessionConfig

__all__ = ["OPTIMIZATIONS", "Optimization", "apply_optimizations",
           "optimized_pipeline_config"]


@dataclass(frozen=True)
class Optimization:
    """Metadata describing one optimization, for reports and ablations."""

    key: str
    name: str
    description: str
    config_field: str


#: The two Section-6 optimizations, in the order the paper presents them.
OPTIMIZATIONS: tuple[Optimization, ...] = (
    Optimization(
        key="memoize_xgwa",
        name="XGetWindowAttributes memoization",
        description=(
            "Cache the window geometry returned by XGetWindowAttributes and "
            "only re-query it when a resize event is observed, removing a "
            "6-9 ms synchronous X round trip from every frame copy."),
        config_field="memoize_window_attributes",
    ),
    Optimization(
        key="two_step_copy",
        name="Two-step asynchronous frame copy",
        description=(
            "Split the frame copy into start/finish halves so the "
            "application thread issues the PCIe read for frame i-1, keeps "
            "computing frame i+1, and only finishes the copy afterwards, "
            "removing the per-frame stall on the DMA."),
        config_field="two_step_frame_copy",
    ),
)


def optimized_pipeline_config(base: PipelineConfig,
                              keys: Iterable[str] = ("memoize_xgwa", "two_step_copy"),
                              ) -> PipelineConfig:
    """A copy of ``base`` with the selected optimizations enabled."""
    known = {opt.key: opt for opt in OPTIMIZATIONS}
    updates = {}
    for key in keys:
        if key not in known:
            raise KeyError(f"unknown optimization {key!r}; known: {sorted(known)}")
        updates[known[key].config_field] = True
    return replace(base, **updates)


def apply_optimizations(config: SessionConfig,
                        keys: Iterable[str] = ("memoize_xgwa", "two_step_copy"),
                        ) -> SessionConfig:
    """A copy of the session config with the selected optimizations enabled."""
    return replace(config, pipeline=optimized_pipeline_config(config.pipeline, keys))
