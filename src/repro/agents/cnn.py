"""A small convolutional network for frame object recognition.

The paper uses MobileNets on TensorFlow for the computer-vision step of
the intelligent client.  Neither TensorFlow nor a GPU is available here,
so this module implements a compact convolutional network from scratch in
numpy — one strided convolution, a ReLU, and two dense layers — trained
with mini-batch SGD on mean-squared error.  The network maps a rasterized
frame to per-class object descriptors ([presence, mean-x, mean-y] for
every :class:`~repro.graphics.frame.ObjectClass`), which is exactly the
information the downstream LSTM consumes.

The network is intentionally small: the claim being reproduced is not
ImageNet-scale accuracy but that a vision model trained on a recorded
session recognizes the scene's input-relevant objects well enough for the
action model to mimic the human player.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ConvNet", "ConvNetConfig"]


@dataclass(frozen=True)
class ConvNetConfig:
    """Architecture and training hyper-parameters."""

    input_height: int = 36
    input_width: int = 64
    input_channels: int = 3
    conv_filters: int = 8
    conv_kernel: int = 5
    conv_stride: int = 3
    hidden_units: int = 64
    output_units: int = 30           # len(ObjectClass) * 3
    learning_rate: float = 0.05
    batch_size: int = 32
    epochs: int = 30
    weight_scale: float = 0.1

    @property
    def conv_output_height(self) -> int:
        return (self.input_height - self.conv_kernel) // self.conv_stride + 1

    @property
    def conv_output_width(self) -> int:
        return (self.input_width - self.conv_kernel) // self.conv_stride + 1

    @property
    def flattened_units(self) -> int:
        return self.conv_output_height * self.conv_output_width * self.conv_filters


def _im2col(images: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Rearrange image patches into rows for matrix-multiply convolution.

    ``images`` has shape (N, H, W, C); the result has shape
    (N, out_h, out_w, kernel*kernel*C).
    """
    n, height, width, channels = images.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    columns = np.empty((n, out_h, out_w, kernel * kernel * channels),
                       dtype=images.dtype)
    for row in range(out_h):
        for col in range(out_w):
            r0 = row * stride
            c0 = col * stride
            patch = images[:, r0:r0 + kernel, c0:c0 + kernel, :]
            columns[:, row, col, :] = patch.reshape(n, -1)
    return columns


class ConvNet:
    """conv → ReLU → dense → ReLU → dense, trained with SGD on MSE."""

    def __init__(self, config: Optional[ConvNetConfig] = None, seed: int = 0):
        self.config = config or ConvNetConfig()
        rng = np.random.default_rng(seed)
        cfg = self.config
        scale = cfg.weight_scale
        self.conv_w = rng.normal(0.0, scale,
                                 (cfg.conv_kernel * cfg.conv_kernel * cfg.input_channels,
                                  cfg.conv_filters))
        self.conv_b = np.zeros(cfg.conv_filters)
        self.dense1_w = rng.normal(0.0, scale, (cfg.flattened_units, cfg.hidden_units))
        self.dense1_b = np.zeros(cfg.hidden_units)
        self.dense2_w = rng.normal(0.0, scale, (cfg.hidden_units, cfg.output_units))
        self.dense2_b = np.zeros(cfg.output_units)
        self.training_losses: list[float] = []

    # -- forward -------------------------------------------------------------
    def forward(self, images: np.ndarray, keep_cache: bool = False):
        """Forward pass.  ``images`` has shape (N, H, W, C)."""
        cfg = self.config
        if images.ndim == 3:
            images = images[np.newaxis, ...]
        if images.shape[1:] != (cfg.input_height, cfg.input_width, cfg.input_channels):
            raise ValueError(
                f"expected input of shape (N, {cfg.input_height}, {cfg.input_width}, "
                f"{cfg.input_channels}), got {images.shape}")

        columns = _im2col(images, cfg.conv_kernel, cfg.conv_stride)
        conv_pre = columns @ self.conv_w + self.conv_b
        conv_out = np.maximum(conv_pre, 0.0)
        flat = conv_out.reshape(images.shape[0], -1)
        hidden_pre = flat @ self.dense1_w + self.dense1_b
        hidden = np.maximum(hidden_pre, 0.0)
        output = hidden @ self.dense2_w + self.dense2_b
        if keep_cache:
            cache = (columns, conv_pre, flat, hidden_pre, hidden)
            return output, cache
        return output

    def predict(self, image: np.ndarray) -> np.ndarray:
        """Predict the object-descriptor vector for one frame's pixels."""
        return self.forward(image)[0]

    # -- training --------------------------------------------------------------
    def train(self, images: np.ndarray, targets: np.ndarray,
              epochs: Optional[int] = None, seed: int = 0) -> float:
        """Train on (images, targets); returns the final epoch's mean loss."""
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        if images.shape[0] != targets.shape[0]:
            raise ValueError("images and targets must have the same first dimension")
        rng = np.random.default_rng(seed)
        n = images.shape[0]

        final_loss = float("inf")
        for _epoch in range(epochs):
            order = rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, cfg.batch_size):
                batch = order[start:start + cfg.batch_size]
                loss = self._train_batch(images[batch], targets[batch])
                epoch_losses.append(loss)
            final_loss = float(np.mean(epoch_losses))
            self.training_losses.append(final_loss)
        return final_loss

    def _train_batch(self, images: np.ndarray, targets: np.ndarray) -> float:
        cfg = self.config
        output, cache = self.forward(images, keep_cache=True)
        columns, conv_pre, flat, hidden_pre, hidden = cache
        batch = images.shape[0]

        error = output - targets
        loss = float(np.mean(error ** 2))

        grad_output = 2.0 * error / (batch * cfg.output_units)
        grad_dense2_w = hidden.T @ grad_output
        grad_dense2_b = grad_output.sum(axis=0)
        grad_hidden = grad_output @ self.dense2_w.T
        grad_hidden_pre = grad_hidden * (hidden_pre > 0)
        grad_dense1_w = flat.T @ grad_hidden_pre
        grad_dense1_b = grad_hidden_pre.sum(axis=0)
        grad_flat = grad_hidden_pre @ self.dense1_w.T
        grad_conv_out = grad_flat.reshape(conv_pre.shape)
        grad_conv_pre = grad_conv_out * (conv_pre > 0)
        grad_conv_w = columns.reshape(-1, columns.shape[-1]).T @ \
            grad_conv_pre.reshape(-1, cfg.conv_filters)
        grad_conv_b = grad_conv_pre.reshape(-1, cfg.conv_filters).sum(axis=0)

        lr = cfg.learning_rate
        self.dense2_w -= lr * grad_dense2_w
        self.dense2_b -= lr * grad_dense2_b
        self.dense1_w -= lr * grad_dense1_w
        self.dense1_b -= lr * grad_dense1_b
        self.conv_w -= lr * grad_conv_w
        self.conv_b -= lr * grad_conv_b
        return loss

    # -- introspection ------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        return int(self.conv_w.size + self.conv_b.size + self.dense1_w.size
                   + self.dense1_b.size + self.dense2_w.size + self.dense2_b.size)

    @property
    def final_training_loss(self) -> Optional[float]:
        return self.training_losses[-1] if self.training_losses else None
