"""Object detection: the computer-vision step of the intelligent client.

The :class:`ObjectDetector` wraps the convolutional network with the
frame-level plumbing the client needs: building labelled training data
from a recorded session, training, and turning a raw frame into a list of
detected objects (class, position, confidence) plus the flat feature
vector the LSTM consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.agents.cnn import ConvNet, ConvNetConfig
from repro.agents.recorder import RecordedSession
from repro.graphics.frame import Frame, ObjectClass

__all__ = ["DetectedObject", "ObjectDetector"]


@dataclass(frozen=True)
class DetectedObject:
    """One recognized object in a frame (normalized coordinates)."""

    object_class: ObjectClass
    x: float
    y: float
    confidence: float


class ObjectDetector:
    """CNN-based recognition of the input-relevant objects in a frame."""

    def __init__(self, net: Optional[ConvNet] = None,
                 presence_threshold: float = 0.5):
        self.net = net or ConvNet(ConvNetConfig())
        if not 0.0 < presence_threshold < 1.0:
            raise ValueError("presence_threshold must be in (0, 1)")
        self.presence_threshold = presence_threshold
        self.classes = list(ObjectClass)

    # -- training -------------------------------------------------------------
    def train(self, session: RecordedSession,
              epochs: Optional[int] = None) -> float:
        """Train the CNN on a recorded session's (frame, labels) pairs."""
        if len(session) == 0:
            raise ValueError("cannot train on an empty recorded session")
        images = np.stack([step.frame.pixels for step in session.steps])
        targets = session.feature_matrix()
        return self.net.train(images, targets, epochs=epochs)

    # -- inference ---------------------------------------------------------------
    def features(self, frame: Frame) -> np.ndarray:
        """The raw per-class descriptor vector for ``frame``."""
        return self.net.predict(frame.pixels)

    def detect(self, frame: Frame) -> list[DetectedObject]:
        """Detected objects above the presence threshold."""
        raw = self.features(frame)
        detections = []
        for index, object_class in enumerate(self.classes):
            presence = float(raw[index * 3])
            if presence < self.presence_threshold:
                continue
            detections.append(DetectedObject(
                object_class=object_class,
                x=float(np.clip(raw[index * 3 + 1], 0.0, 1.0)),
                y=float(np.clip(raw[index * 3 + 2], 0.0, 1.0)),
                confidence=min(presence, 1.0),
            ))
        return detections

    # -- evaluation ----------------------------------------------------------------
    def detection_error(self, session: RecordedSession) -> float:
        """Mean absolute error of the descriptors over a recorded session."""
        if len(session) == 0:
            raise ValueError("cannot evaluate on an empty recorded session")
        images = np.stack([step.frame.pixels for step in session.steps])
        targets = session.feature_matrix()
        predictions = self.net.forward(images)
        return float(np.mean(np.abs(predictions - targets)))
