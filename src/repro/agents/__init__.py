"""The intelligent client framework and its baselines.

This package implements the paper's other primary contribution: the
AI-driven client that mimics human interaction with 3D applications
(Section 3.1).  It contains:

* :mod:`repro.agents.human` — the synthetic human reference player whose
  recorded sessions provide both the training data and the ground-truth
  performance distributions;
* :mod:`repro.agents.recorder` — session recording (frames + actions);
* :mod:`repro.agents.cnn` — a small convolutional network (the MobileNets
  analogue) for object recognition, implemented in numpy;
* :mod:`repro.agents.rnn` — an LSTM (the TensorFlow LSTM analogue) that
  maps recognized objects to human-like actions;
* :mod:`repro.agents.vision` — the object-detection wrapper around the CNN;
* :mod:`repro.agents.intelligent_client` — the trained client that drives
  a benchmark;
* :mod:`repro.agents.baselines` — the prior-work methodologies Pictor is
  compared against in Figure 6 / Table 3 (DeskBench-style record/replay,
  Chen et al.'s stage-sum estimation, and Slow-Motion benchmarking).
"""

from repro.agents.human import HumanPlayer
from repro.agents.recorder import RecordedSession, RecordedStep, SessionRecorder
from repro.agents.cnn import ConvNet, ConvNetConfig
from repro.agents.rnn import Lstm, LstmConfig
from repro.agents.vision import DetectedObject, ObjectDetector
from repro.agents.intelligent_client import IntelligentClient, train_intelligent_client
from repro.agents.baselines import (
    ChenMethodology,
    DeskBenchClient,
    SlowMotionMethodology,
)

__all__ = [
    "ChenMethodology",
    "ConvNet",
    "ConvNetConfig",
    "DeskBenchClient",
    "DetectedObject",
    "HumanPlayer",
    "IntelligentClient",
    "Lstm",
    "LstmConfig",
    "ObjectDetector",
    "RecordedSession",
    "RecordedStep",
    "SessionRecorder",
    "SlowMotionMethodology",
    "train_intelligent_client",
]
