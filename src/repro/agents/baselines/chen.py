"""Chen et al.'s cloud-gaming measurement methodology.

Chen et al. measure cloud gaming systems with real human players but
without any input tracking, so they cannot observe the round-trip time at
the client.  Instead they *reconstruct* RTT by summing the stages they
can measure on the server: input network time (CS), input parsing (SP),
application logic (AL), compression (CP) and frame network time (SS).
The paper identifies two systematic errors in that reconstruction
(Section 4):

* the AL latency is measured **offline**, without the VNC proxy running,
  so it misses the CPU/memory contention between the game and the proxy;
* the inter-process-communication stages (PS, frame copy FC, and the
  application-to-proxy hand-off AS) are invisible without tracking and
  are simply dropped.

Both errors push the estimate down, which is why the methodology
under-reports mean RTT by ~30% on the paper's testbed.  This module
reproduces the estimator so the error can be reproduced too.
"""

from __future__ import annotations


import numpy as np

from repro.apps.base import ApplicationProfile
from repro.core.measurements import LatencyStats
from repro.core.tags import InputRecord
from repro.core.tracker import InputTracker
from repro.graphics.pipeline import Stage

__all__ = ["ChenMethodology"]


class ChenMethodology:
    """Stage-sum RTT estimation without input tracking."""

    #: Stages the methodology can observe and therefore sums.
    OBSERVED_STAGES = (Stage.CS, Stage.SP, Stage.AL, Stage.CP, Stage.SS)
    #: Stages that are invisible without input tracking.
    MISSED_STAGES = (Stage.PS, Stage.FC, Stage.AS, Stage.CD)

    def __init__(self, profile: ApplicationProfile,
                 offline_al_scale: float = 1.0):
        """``offline_al_scale`` rescales the profile's idle-machine AL time
        if the offline measurement environment differs from the deployment
        machine (1.0 = identical hardware)."""
        if offline_al_scale <= 0:
            raise ValueError("offline_al_scale must be positive")
        self.profile = profile
        self.offline_al_scale = offline_al_scale

    # -- per-input estimation ------------------------------------------------------
    def offline_al_time(self) -> float:
        """The application-logic latency as measured offline (no proxy contention)."""
        return self.profile.al_ms * 1e-3 * self.offline_al_scale

    def estimate_rtt(self, record: InputRecord) -> float:
        """Reconstruct one input's RTT the way the methodology would."""
        total = 0.0
        for stage in self.OBSERVED_STAGES:
            if stage == Stage.AL:
                total += self.offline_al_time()
            else:
                total += record.stage_durations.get(stage, 0.0)
        return total

    # -- aggregate estimation ----------------------------------------------------------
    def estimate_rtts(self, tracker: InputTracker) -> list[float]:
        """Reconstructed RTTs for every completed input of a human-driven run."""
        return [self.estimate_rtt(record) for record in tracker.completed_records()]

    def rtt_stats(self, tracker: InputTracker) -> LatencyStats:
        return LatencyStats.from_samples(self.estimate_rtts(tracker))

    def mean_rtt(self, tracker: InputTracker) -> float:
        rtts = self.estimate_rtts(tracker)
        return float(np.mean(rtts)) if rtts else 0.0

    def missed_time(self, tracker: InputTracker) -> float:
        """Mean per-input time in the stages the methodology cannot see."""
        records = tracker.completed_records()
        if not records:
            return 0.0
        missed = [sum(r.stage_durations.get(stage, 0.0) for stage in self.MISSED_STAGES)
                  for r in records]
        return float(np.mean(missed))
