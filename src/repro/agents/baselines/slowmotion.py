"""Slow-Motion benchmarking (Nieh, Yang and Novik).

Slow-Motion measures thin-client response time by injecting delays so
that only one input (and its response frame) is in flight at a time: the
next input is not issued until the previous frame has been rendered,
delivered and displayed.  Associating an input with its frame then
becomes trivial — there is only ever one of each.

The cost, as the original authors themselves noted and the paper
quantifies, is that serialization changes the system's behaviour: the
parallel processing of inputs and frames disappears, and with it the
resource contention between the benchmark and the VNC proxy, so the
measured RTTs are systematically lower (~28%) than what a client observes
against a server running at full capacity.

Slow-Motion provides no input-generation technique of its own, so the
paper drives it with Pictor's intelligent client; this module packages
the session configuration that reproduces the methodology.
"""

from __future__ import annotations

from dataclasses import replace

from repro.server.session import SessionConfig

__all__ = ["SlowMotionMethodology"]


class SlowMotionMethodology:
    """Builds the serialized-session configuration used by Slow-Motion."""

    def __init__(self, injected_delay_s: float = 0.0):
        """``injected_delay_s`` is an extra pause between input/frame pairs;
        the original tool inserts such delays to make frame boundaries
        unambiguous on slow links."""
        if injected_delay_s < 0:
            raise ValueError("injected delay cannot be negative")
        self.injected_delay_s = injected_delay_s

    def session_config(self, base: SessionConfig) -> SessionConfig:
        """Derive a slow-motion session config from a baseline config."""
        client = replace(base.client, wait_for_response=True,
                         slow_motion_timeout_s=max(1.0, 2 * self.injected_delay_s + 1.0))
        return replace(base, slow_motion=True, client=client)

    @staticmethod
    def describe() -> str:
        return ("Slow-Motion benchmarking: one input/frame processed at a time; "
                "trivial input-frame association, but serialization removes the "
                "contention a full-capacity system exhibits.")
