"""Prior-work input-generation / measurement methodologies.

Section 4 compares Pictor against three earlier approaches:

* **DeskBench / VNCPlay** — record-and-replay with frame-similarity
  gating (:mod:`repro.agents.baselines.deskbench`);
* **Chen et al.** — human inputs with RTT reconstructed by summing
  server-side stages measured without input tracking
  (:mod:`repro.agents.baselines.chen`);
* **Slow-Motion benchmarking** — serialize the system so only one
  input/frame is in flight at a time
  (:mod:`repro.agents.baselines.slowmotion`).
"""

from repro.agents.baselines.chen import ChenMethodology
from repro.agents.baselines.deskbench import DeskBenchClient
from repro.agents.baselines.slowmotion import SlowMotionMethodology

__all__ = ["ChenMethodology", "DeskBenchClient", "SlowMotionMethodology"]
