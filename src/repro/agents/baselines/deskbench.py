"""DeskBench / VNCPlay-style record-and-replay input generation.

DeskBench replays a recorded human session, but it does not replay on a
timer alone: each recorded action also stored the screen content at the
moment it was issued, and during replay the action is only injected once
the currently displayed frame is sufficiently *similar* to the recorded
one (or a timeout expires).  That works well for 2D desktop applications
whose windows, icons and text always look the same, and it tolerates
network-latency variation.  It breaks down for 3D applications: the same
logical object appears with different pixels and positions depending on
viewing angle and the random flow of events, so the similarity gate
rarely opens and actions are issued late (or only at the timeout), which
distorts the measured performance — the paper reports an 11.6% average
mean-RTT error versus human-driven runs, against Pictor's 1.6%.

The similarity threshold is the tunable parameter the paper mentions;
:meth:`DeskBenchClient.sweep_thresholds` reproduces the methodology of
picking the best-performing value.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.recorder import RecordedSession
from repro.apps.base import Action, Application3D, InputKind
from repro.graphics.frame import Frame
from repro.sim.randomness import StreamRandom

__all__ = ["DeskBenchClient"]


class DeskBenchClient:
    """Replays a recorded session gated on frame similarity."""

    def __init__(self, app: Application3D, recording: RecordedSession,
                 similarity_threshold: float = 0.04,
                 timeout_s: float = 1.5,
                 rng: Optional[StreamRandom] = None):
        if len(recording) == 0:
            raise ValueError("cannot replay an empty recording")
        if similarity_threshold <= 0:
            raise ValueError("similarity_threshold must be positive")
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self.app = app
        self.recording = recording
        self.similarity_threshold = similarity_threshold
        self.timeout_s = timeout_s
        self.rng = rng or StreamRandom(0)
        self._index = 0
        self._waiting_since: Optional[float] = None
        self.actions_replayed = 0
        self.actions_delayed = 0
        self.wait_times: list[float] = []

    # -- agent interface ------------------------------------------------------------
    @property
    def input_kind(self) -> InputKind:
        return self.app.profile.input_kind

    @property
    def actions_per_second(self) -> float:
        """The replay is polled at the recording's native action rate."""
        return max(self.recording.actions_per_minute / 60.0, 0.5)

    def decide(self, frame: Optional[Frame], now: float):
        """Issue the next recorded action iff the frame matches the recording."""
        if self._index >= len(self.recording.steps):
            self._index = 0  # loop the recording, like a benchmark run would
        step = self.recording.steps[self._index]

        if self._waiting_since is None:
            self._waiting_since = now

        matches = frame is not None and self._similar(frame, step.frame)
        timed_out = (now - self._waiting_since) >= self.timeout_s
        if not matches and not timed_out:
            return None  # keep waiting for the expected screen content

        waited = now - self._waiting_since
        self.wait_times.append(waited)
        if timed_out and not matches:
            self.actions_delayed += 1
        self._index += 1
        self._waiting_since = None
        self.actions_replayed += 1
        action = Action(steer=step.action.steer, pitch=step.action.pitch,
                        primary=step.action.primary)
        replay_overhead = self.rng.uniform(0.001, 0.004)
        return action, replay_overhead

    # -- similarity gate -----------------------------------------------------------------
    def _similar(self, current: Frame, recorded: Frame) -> bool:
        return current.pixel_difference(recorded) <= self.similarity_threshold

    def match_rate(self) -> float:
        """Fraction of replayed actions issued by a genuine frame match."""
        if self.actions_replayed == 0:
            return 0.0
        return 1.0 - self.actions_delayed / self.actions_replayed

    # -- threshold tuning -----------------------------------------------------------------
    @staticmethod
    def sweep_thresholds(app: Application3D, recording: RecordedSession,
                         thresholds=(0.01, 0.02, 0.04, 0.08, 0.16),
                         probe_frames: int = 60) -> float:
        """Pick the threshold that maximizes genuine matches on held-out frames.

        Mirrors the paper's note that the DeskBench results use the best
        parameter value found by sweeping.
        """
        if not thresholds:
            raise ValueError("need at least one threshold to sweep")
        probe = type(app)(rng=StreamRandom(12345))
        frames = [probe.advance(1.0 / 30.0) for _ in range(probe_frames)]
        best_threshold, best_matches = thresholds[0], -1
        for threshold in thresholds:
            matches = 0
            for frame in frames:
                for step in recording.steps[:20]:
                    if frame.pixel_difference(step.frame) <= threshold:
                        matches += 1
                        break
            if matches > best_matches:
                best_matches, best_threshold = matches, threshold
        return best_threshold
