"""A Long Short-Term Memory network for action generation.

The paper's intelligent client uses an LSTM (trained with TensorFlow) to
map the objects recognized in each frame to the action a human would
issue.  This module implements a single-layer LSTM with a linear output
head in numpy, trained with truncated back-propagation through time on
the recorded (objects → action) sequences.

The goal, as the paper stresses, is not to train a competitive game AI
but a model that *mimics human actions on the scene it was trained on*;
a low training loss on that scene is sufficient (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Lstm", "LstmConfig"]


@dataclass(frozen=True)
class LstmConfig:
    """Architecture and training hyper-parameters."""

    input_units: int = 30
    hidden_units: int = 32
    output_units: int = 3
    sequence_length: int = 6          # truncated BPTT window
    learning_rate: float = 0.05
    epochs: int = 60
    weight_scale: float = 0.15
    gradient_clip: float = 1.0


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Lstm:
    """Single-layer LSTM with a linear readout, trained by truncated BPTT."""

    def __init__(self, config: Optional[LstmConfig] = None, seed: int = 0):
        self.config = config or LstmConfig()
        cfg = self.config
        rng = np.random.default_rng(seed)
        scale = cfg.weight_scale
        concat = cfg.input_units + cfg.hidden_units
        # Gate order: input, forget, cell candidate, output.
        self.w_gates = rng.normal(0.0, scale, (concat, 4 * cfg.hidden_units))
        self.b_gates = np.zeros(4 * cfg.hidden_units)
        self.b_gates[cfg.hidden_units:2 * cfg.hidden_units] = 1.0  # forget-gate bias
        self.w_out = rng.normal(0.0, scale, (cfg.hidden_units, cfg.output_units))
        self.b_out = np.zeros(cfg.output_units)
        self.training_losses: list[float] = []
        self.reset_state()

    # -- state ---------------------------------------------------------------
    def reset_state(self) -> None:
        """Clear the recurrent state (start of a new play session)."""
        self._h = np.zeros(self.config.hidden_units)
        self._c = np.zeros(self.config.hidden_units)

    # -- forward --------------------------------------------------------------
    def _step(self, x: np.ndarray, h: np.ndarray, c: np.ndarray):
        cfg = self.config
        concat = np.concatenate([x, h])
        gates = concat @ self.w_gates + self.b_gates
        hidden = cfg.hidden_units
        i = _sigmoid(gates[:hidden])
        f = _sigmoid(gates[hidden:2 * hidden])
        g = np.tanh(gates[2 * hidden:3 * hidden])
        o = _sigmoid(gates[3 * hidden:])
        c_new = f * c + i * g
        h_new = o * np.tanh(c_new)
        cache = (concat, i, f, g, o, c, c_new)
        return h_new, c_new, cache

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict the action vector for one frame, carrying the state forward."""
        features = np.asarray(features, dtype=float)
        if features.shape != (self.config.input_units,):
            raise ValueError(
                f"expected features of shape ({self.config.input_units},), "
                f"got {features.shape}")
        self._h, self._c, _cache = self._step(features, self._h, self._c)
        return self._h @ self.w_out + self.b_out

    def predict_sequence(self, features: np.ndarray) -> np.ndarray:
        """Predict actions for a whole (T, input_units) sequence from reset state."""
        self.reset_state()
        return np.stack([self.predict(row) for row in features])

    # -- training ----------------------------------------------------------------
    def train(self, features: np.ndarray, actions: np.ndarray,
              epochs: Optional[int] = None) -> float:
        """Train on an aligned (T, in) / (T, out) sequence; returns final loss."""
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        features = np.asarray(features, dtype=float)
        actions = np.asarray(actions, dtype=float)
        if features.shape[0] != actions.shape[0]:
            raise ValueError("features and actions must have the same length")
        if features.shape[0] < 2:
            raise ValueError("need at least two steps to train the LSTM")

        final_loss = float("inf")
        for _epoch in range(epochs):
            losses = []
            for start in range(0, features.shape[0] - 1, cfg.sequence_length):
                window_x = features[start:start + cfg.sequence_length]
                window_y = actions[start:start + cfg.sequence_length]
                losses.append(self._train_window(window_x, window_y))
            final_loss = float(np.mean(losses))
            self.training_losses.append(final_loss)
        return final_loss

    def _train_window(self, xs: np.ndarray, ys: np.ndarray) -> float:
        cfg = self.config
        hidden = cfg.hidden_units
        h = np.zeros(hidden)
        c = np.zeros(hidden)
        caches = []
        outputs = []
        hs = []
        for x in xs:
            h, c, cache = self._step(x, h, c)
            caches.append(cache)
            hs.append(h)
            outputs.append(h @ self.w_out + self.b_out)
        outputs = np.stack(outputs)
        errors = outputs - ys
        loss = float(np.mean(errors ** 2))

        grad_w_gates = np.zeros_like(self.w_gates)
        grad_b_gates = np.zeros_like(self.b_gates)
        grad_w_out = np.zeros_like(self.w_out)
        grad_b_out = np.zeros_like(self.b_out)
        dh_next = np.zeros(hidden)
        dc_next = np.zeros(hidden)
        steps = len(xs)

        for t in reversed(range(steps)):
            concat, i, f, g, o, c_prev, c_new = caches[t]
            dout = 2.0 * errors[t] / (steps * cfg.output_units)
            grad_w_out += np.outer(hs[t], dout)
            grad_b_out += dout
            dh = dout @ self.w_out.T + dh_next
            tanh_c = np.tanh(c_new)
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c ** 2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f
            d_gates = np.concatenate([
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g ** 2),
                do * o * (1.0 - o),
            ])
            grad_w_gates += np.outer(concat, d_gates)
            grad_b_gates += d_gates
            dh_next = (d_gates @ self.w_gates.T)[cfg.input_units:]

        clip = cfg.gradient_clip
        for grad in (grad_w_gates, grad_b_gates, grad_w_out, grad_b_out):
            np.clip(grad, -clip, clip, out=grad)

        lr = cfg.learning_rate
        self.w_gates -= lr * grad_w_gates
        self.b_gates -= lr * grad_b_gates
        self.w_out -= lr * grad_w_out
        self.b_out -= lr * grad_b_out
        return loss

    # -- introspection ------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        return int(self.w_gates.size + self.b_gates.size
                   + self.w_out.size + self.b_out.size)

    @property
    def final_training_loss(self) -> Optional[float]:
        return self.training_losses[-1] if self.training_losses else None
