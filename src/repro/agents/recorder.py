"""Session recording: capturing frames and the human actions they caused.

The intelligent client framework "provides tools to perform this
recording" (Section 3.1): a human plays one scene of the application and
the framework stores the sequence of frames together with the action the
human issued for each.  The recorded session is then used twice —

* the frames are labelled (automatically here, from the scene's known
  objects, standing in for the ~4 hours of manual labelling per title)
  and used to train the CNN;
* the (recognized objects → action) pairs train the LSTM;

and the same recording is what DeskBench-style record-and-replay tools
play back, which is why both consume the identical data structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps.base import Action, Application3D
from repro.graphics.frame import Frame, ObjectClass
from repro.sim.randomness import StreamRandom

__all__ = ["RecordedSession", "RecordedStep", "SessionRecorder"]


@dataclass
class RecordedStep:
    """One (frame, action) pair with its timestamp in the recording."""

    time: float
    frame: Frame
    action: Action

    def label_vector(self) -> np.ndarray:
        """The frame's ground-truth object labels (the "manual" annotation).

        For each object class: [presence, mean_x, mean_y], flattened.  Only
        the objects that determine user inputs are labelled, matching the
        paper's note that labelling is fast because only those matter.
        """
        classes = list(ObjectClass)
        labels = np.zeros(len(classes) * 3)
        for index, object_class in enumerate(classes):
            members = self.frame.objects_of_class(object_class)
            if not members:
                continue
            labels[index * 3] = 1.0
            labels[index * 3 + 1] = float(np.mean([o.x for o in members]))
            labels[index * 3 + 2] = float(np.mean([o.y for o in members]))
        return labels


@dataclass
class RecordedSession:
    """A full recording of one scene played by a human."""

    benchmark: str
    steps: list[RecordedStep] = field(default_factory=list)
    frame_interval: float = 1.0 / 30.0

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def duration(self) -> float:
        if not self.steps:
            return 0.0
        return self.steps[-1].time - self.steps[0].time + self.frame_interval

    @property
    def actions_per_minute(self) -> float:
        if self.duration <= 0:
            return 0.0
        return len(self.steps) / self.duration * 60.0

    def frames(self) -> list[Frame]:
        return [step.frame for step in self.steps]

    def actions(self) -> list[Action]:
        return [step.action for step in self.steps]

    def feature_matrix(self) -> np.ndarray:
        """Stacked label vectors (the CNN training targets)."""
        return np.stack([step.label_vector() for step in self.steps])

    def action_matrix(self) -> np.ndarray:
        """Stacked action vectors (the LSTM training targets)."""
        return np.stack([step.action.as_vector() for step in self.steps])


class SessionRecorder:
    """Records a human playing one application scene.

    The recording runs *offline* — it steps the application directly at a
    fixed frame rate, without the cloud rendering pipeline — exactly like
    recording on a local workstation before deploying the benchmark.
    """

    def __init__(self, rng: Optional[StreamRandom] = None):
        self.rng = rng or StreamRandom(0)

    def record(self, app: Application3D, player, duration_s: float = 60.0,
               frame_rate: float = 30.0) -> RecordedSession:
        """Record ``player`` interacting with ``app`` for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("recording duration must be positive")
        if frame_rate <= 0:
            raise ValueError("frame rate must be positive")

        interval = 1.0 / frame_rate
        session = RecordedSession(benchmark=app.profile.short_name,
                                  frame_interval=interval)
        action_period = 1.0 / max(player.actions_per_second, 1e-6)
        time_since_action = action_period  # act on the very first frame

        now = 0.0
        frame = app.advance(interval)
        while now < duration_s:
            time_since_action += interval
            if time_since_action >= action_period:
                decision = player.decide(frame, now)
                if decision is not None:
                    action, _think = decision
                    app.apply_actions([action])
                    session.steps.append(RecordedStep(time=now, frame=frame,
                                                      action=action))
                time_since_action = 0.0
            frame = app.advance(interval)
            now += interval
        return session
