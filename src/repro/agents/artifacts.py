"""Trained-agent artefacts: train once, measure everywhere.

Training an intelligent client is the expensive half of every Figure-6 /
Figure-7 job — and it is fully deterministic: the whole procedure draws
from streams derived from one training seed (the recording's human player
and its private application copy reseed themselves from ``rng.seed``, and
the CNN / LSTM seed their own numpy generators), so the same
:class:`ArtifactSpec` always produces bit-identical model weights and the
bit-identical recorded session.  That makes a trained agent a perfect
**content-addressed artefact**: compute it once, store it by the hash of
what *defines* it (benchmark, training seed, training knobs), and let any
number of measurement runs — on any machine, in any process — consume it
warmly.

Three layers live here:

* :class:`ArtifactSpec` — the frozen value object naming a training run.
  Its :meth:`~ArtifactSpec.content_hash` covers exactly the inputs that
  determine the trained weights, nothing else (measurement intervals, for
  instance, are irrelevant to training and deliberately excluded).
* :class:`AgentArtifact` — the trained detector + policy + recording,
  with a ``to_bytes`` / ``from_bytes`` round trip (pickled, schema-
  stamped) and :meth:`~AgentArtifact.client`, which materializes an
  :class:`~repro.agents.intelligent_client.IntelligentClient` whose RNG
  is advanced to **exactly** the state the fused train-then-measure path
  would have left it in — training consumes nothing from the training
  stream, so replaying the benchmark construction alone reproduces it —
  which is what makes warm replays byte-identical to cold ones.
* The **resolution path** — :func:`resolve_artifact` checks a process
  memo, then the ambient :class:`~repro.experiments.store.ResultStore`
  (bound per-process with :func:`set_artifact_store` by the suite, the
  pool initializer and the queue workers), and only then trains on
  demand, storing what it trained.  A missing store degrades to
  deterministic retraining, never to a wrong result.

:func:`bind_scenario_agent` is the scenario agent registry's hook: it
turns a declarative placement agent name — ``intelligent``,
``intelligent@3`` (training-seed offset), ``intelligent#<hash>`` (an
explicit stored artefact), ``deskbench@3`` — into a per-instance agent
factory, so artefact-driven scenarios stay content-hashable values like
every other scenario.
"""

from __future__ import annotations

import hashlib
import json
import logging
import pickle
import time
from dataclasses import dataclass
from typing import Optional

from repro.agents.intelligent_client import (
    IntelligentClient,
    train_intelligent_client,
)
from repro.agents.recorder import RecordedSession
from repro.agents.rnn import Lstm
from repro.agents.vision import ObjectDetector
from repro.apps.registry import all_benchmarks, create_benchmark
from repro.sim.randomness import StreamRandom

__all__ = ["AGENT_TRAIN_SEED_SALT", "ARTIFACT_SCHEMA_VERSION",
           "AgentArtifact", "ArtifactSpec", "artifact_store",
           "bind_scenario_agent", "resolve_artifact",
           "resolve_artifact_by_hash", "set_artifact_store",
           "train_artifact"]

logger = logging.getLogger(__name__)

#: Bump when the serialized artefact layout changes; stamped into every
#: payload and store row so stale artefacts are rejected (with a log
#: line) and retrained, never silently deserialized.
ARTIFACT_SCHEMA_VERSION = 1

#: The training-stream salt the fused path has always used
#: (``StreamRandom(config.seed + seed_offset + 7919)``); part of the
#: artefact's identity, so it is named once here.
AGENT_TRAIN_SEED_SALT = 7919


@dataclass(frozen=True)
class ArtifactSpec:
    """What defines one trained agent: the training inputs, nothing else."""

    benchmark: str
    train_seed: int
    recording_seconds: float
    cnn_epochs: int
    lstm_epochs: int

    def __post_init__(self) -> None:
        known = all_benchmarks()
        if self.benchmark not in known:
            raise ValueError(f"unknown benchmark {self.benchmark!r}; "
                             f"known: {', '.join(sorted(known))}")
        if self.recording_seconds <= 0:
            raise ValueError("recording_seconds must be positive")
        if self.cnn_epochs < 1 or self.lstm_epochs < 1:
            raise ValueError("training epochs must be at least 1")

    @classmethod
    def for_config(cls, benchmark: str, config,
                   seed_offset: int = 0) -> "ArtifactSpec":
        """The spec the fused path implicitly trained under: the training
        stream is ``config.seed + seed_offset + 7919`` (the benchmark
        harness offsets ``seed_offset`` by the benchmark's index), and
        the knobs come straight from the experiment config."""
        return cls(benchmark=benchmark,
                   train_seed=config.seed + seed_offset + AGENT_TRAIN_SEED_SALT,
                   recording_seconds=config.recording_seconds,
                   cnn_epochs=config.cnn_epochs,
                   lstm_epochs=config.lstm_epochs)

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "train_seed": self.train_seed,
            "recording_seconds": self.recording_seconds,
            "cnn_epochs": self.cnn_epochs,
            "lstm_epochs": self.lstm_epochs,
        }

    @staticmethod
    def from_dict(data: dict) -> "ArtifactSpec":
        unknown = set(data) - {"schema", "benchmark", "train_seed",
                               "recording_seconds", "cnn_epochs",
                               "lstm_epochs"}
        if unknown:
            raise KeyError(f"unknown artifact spec fields {sorted(unknown)}")
        return ArtifactSpec(
            benchmark=data["benchmark"],
            train_seed=int(data["train_seed"]),
            recording_seconds=float(data["recording_seconds"]),
            cnn_epochs=int(data["cnn_epochs"]),
            lstm_epochs=int(data["lstm_epochs"]),
        )

    def content_hash(self) -> str:
        """A stable SHA-256 over the training inputs (schema excluded,
        like every other content hash in the codebase — staleness is a
        provenance question, answered by the stamp inside the payload)."""
        payload = {key: value for key, value in self.to_dict().items()
                   if key != "schema"}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def short_hash(self) -> str:
        return self.content_hash()[:12]


@dataclass
class AgentArtifact:
    """One trained agent: spec + detector + policy + the recorded session.

    The recording rides along because two consumers need it beyond the
    client itself — the DeskBench baseline replays it, and
    ``imitation_error`` evaluates against it — and it is a training
    *output*, produced from the same seed chain as the weights.
    """

    spec: ArtifactSpec
    detector: ObjectDetector
    policy: Lstm
    recording: RecordedSession

    def content_hash(self) -> str:
        """The artefact is addressed by what produced it: the spec hash."""
        return self.spec.content_hash()

    # -- serialization ----------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """A schema-stamped pickled payload; :meth:`from_bytes` inverts it.

        Canonical: the policy's transient hidden state is reset first,
        so an artefact serializes identically whether it was just
        trained or has already driven measurement runs (every
        :meth:`client` materialization resets it again anyway).
        """
        self.policy.reset_state()
        payload = {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "detector": self.detector,
            "policy": self.policy,
            "recording": self.recording,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(payload: bytes) -> "AgentArtifact":
        try:
            data = pickle.loads(payload)
        except Exception as error:
            raise ValueError(
                f"agent artifact payload does not unpickle ({error!r})")
        if not isinstance(data, dict) or "schema" not in data:
            raise ValueError("agent artifact payload is not schema-stamped")
        if data["schema"] != ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                f"agent artifact schema version {data['schema']} != current "
                f"{ARTIFACT_SCHEMA_VERSION}")
        return AgentArtifact(spec=ArtifactSpec.from_dict(data["spec"]),
                             detector=data["detector"],
                             policy=data["policy"],
                             recording=data["recording"])

    # -- materialization --------------------------------------------------------------
    def client(self, app=None) -> IntelligentClient:
        """An :class:`IntelligentClient` in the exact post-training state.

        The fused path hands measurement runs a client whose RNG is the
        training stream *after* benchmark construction — training itself
        never draws from it (the recorder's human player and application
        copy are reseeded from ``rng.seed``, and the models seed their
        own numpy generators).  Replaying the benchmark construction
        here therefore reproduces that stream state bit-for-bit, which
        is what makes a warm replay byte-identical to the fused run.

        ``app`` rebinds the client to a run's freshly built application
        (:meth:`IntelligentClient.bound_to` does the same later); without
        one the client keeps the replayed construction's application.
        """
        rng = StreamRandom(self.spec.train_seed)
        replay_app = create_benchmark(self.spec.benchmark, rng=rng)
        client = IntelligentClient(app if app is not None else replay_app,
                                   self.detector, self.policy, rng=rng)
        client.policy.reset_state()
        return client


def train_artifact(spec: ArtifactSpec) -> AgentArtifact:
    """Train the agent ``spec`` describes — the same seed chain and calls
    as the fused ``prepare_intelligent_client`` path, so the weights,
    recording and RNG consumption are bit-identical to it."""
    rng = StreamRandom(spec.train_seed)
    app = create_benchmark(spec.benchmark, rng=rng)
    client, recording = train_intelligent_client(
        app, rng=rng,
        recording_seconds=spec.recording_seconds,
        cnn_epochs=spec.cnn_epochs,
        lstm_epochs=spec.lstm_epochs)
    return AgentArtifact(spec=spec, detector=client.detector,
                         policy=client.policy, recording=recording)


# -- the ambient store and the resolution path ----------------------------------------
#: The process-ambient artifact store (a ResultStore, or a queue-backed
#: adapter with the same two methods).  Bound by whoever owns the
#: process's storage story: the suite binds its cache around run(), the
#: parallel pool binds one per worker in its initializer, and queue
#: workers bind their queue's store for the life of the work loop.
_ARTIFACT_STORE = None

#: Per-process artefact memo.  Experiments touch a handful of
#: (benchmark, seed) pairs, so this stays tiny; it is what makes the
#: fused path — which resolves the same spec several times per job —
#: train exactly once per process even without a store.
_MEMO: dict[str, AgentArtifact] = {}


def set_artifact_store(store) -> object:
    """Bind the ambient artifact store; returns the previous binding so
    callers can restore it (``finally: set_artifact_store(previous)``)."""
    global _ARTIFACT_STORE
    previous = _ARTIFACT_STORE
    _ARTIFACT_STORE = store
    return previous


def artifact_store():
    """The currently bound ambient artifact store (None when unbound)."""
    return _ARTIFACT_STORE


def _load_from_store(store, key: str) -> Optional[AgentArtifact]:
    payload = store.get_artifact_bytes(key, schema=ARTIFACT_SCHEMA_VERSION)
    if payload is None:
        return None
    try:
        artifact = AgentArtifact.from_bytes(payload)
    except Exception as error:
        logger.warning("stored agent artifact %s is unreadable (%r); "
                       "retraining", key[:12], error)
        return None
    if artifact.content_hash() != key:
        # The artefact analogue of the store's tampered-entry rejection:
        # a payload filed under the wrong hash is never consumed.
        logger.warning(
            "rejecting tampered agent artifact %s: payload spec hashes to "
            "%s; retraining", key[:12], artifact.content_hash()[:12])
        return None
    return artifact


def resolve_artifact(spec: ArtifactSpec, store=None) -> AgentArtifact:
    """The warm path: memo, then store, then train-on-demand (stored).

    Every consumer — the fused accuracy/inference executors, the split
    ``train`` / ``methodology`` executors, scenario agent factories —
    funnels through here, so an artefact is trained at most once per
    store (and once per process without one), and a replay against a
    warm store never trains at all.
    """
    key = spec.content_hash()
    artifact = _MEMO.get(key)
    if artifact is not None:
        return artifact
    store = store if store is not None else _ARTIFACT_STORE
    if store is not None:
        artifact = _load_from_store(store, key)
        if artifact is not None:
            _MEMO[key] = artifact
            return artifact
    started = time.perf_counter()
    artifact = train_artifact(spec)
    runtime_s = time.perf_counter() - started
    _MEMO[key] = artifact
    if store is not None:
        store.put_artifact_bytes(key, artifact.to_bytes(),
                                 schema=ARTIFACT_SCHEMA_VERSION,
                                 benchmark=spec.benchmark,
                                 spec=spec.to_dict(), runtime_s=runtime_s)
    return artifact


def resolve_artifact_by_hash(key: str, store=None) -> AgentArtifact:
    """Resolve an explicitly named stored artefact (``agent#<hash>``).

    Unlike :func:`resolve_artifact` there is no train-on-demand fallback:
    a bare hash does not carry the training knobs, so a miss is an error
    — train it first (``agents train`` or a ``train`` job).  ``key`` may
    be a unique prefix (the short hashes humans copy around).
    """
    store = store if store is not None else _ARTIFACT_STORE
    for memo_key in sorted(_MEMO):
        if memo_key.startswith(key):
            return _MEMO[memo_key]
    if store is not None:
        matches = [row["hash"] for row in store.artifact_rows()
                   if row["hash"].startswith(key)]
        if len(matches) > 1:
            raise ValueError(f"artifact hash prefix {key!r} is ambiguous: "
                             + ", ".join(match[:12] for match in matches))
        if matches:
            artifact = _load_from_store(store, matches[0])
            if artifact is not None:
                _MEMO[matches[0]] = artifact
                return artifact
    raise KeyError(
        f"no stored agent artifact matches {key!r}; train one first with "
        "`python -m repro.experiments agents train` or a 'train' job")


# -- the scenario agent registry hook -------------------------------------------------
def bind_scenario_agent(kind: str, scenario, benchmark: str, agent: str):
    """A per-instance agent factory for one placement of ``scenario``.

    ``agent`` is the placement's declarative name — ``intelligent``,
    ``intelligent@K`` (artefact trained at seed offset ``K``),
    ``intelligent#HASH`` (an explicit stored artefact), or the
    ``deskbench`` equivalents.  The artefact resolves lazily, inside the
    executing process, when the host builds its instances — exactly like
    every other scenario registry — and the seed chain mirrors the fused
    accuracy path (training stream ``base + K + 7919``; DeskBench's
    threshold probe and replay streams at ``base + 31`` / ``base + 37``),
    so a declarative scenario reproduces the imperative runs bit for bit.
    """
    from repro.scenarios.scenario import split_agent_name
    _, sep, param = split_agent_name(agent)
    config = scenario.config
    base_seed = config.seed if scenario.seed.base is None else scenario.seed.base

    def _resolve() -> AgentArtifact:
        if sep == "#":
            return resolve_artifact_by_hash(param)
        offset = int(param) if sep == "@" else 0
        spec = ArtifactSpec(
            benchmark=benchmark,
            train_seed=base_seed + offset + AGENT_TRAIN_SEED_SALT,
            recording_seconds=config.recording_seconds,
            cnn_epochs=config.cnn_epochs,
            lstm_epochs=config.lstm_epochs)
        return resolve_artifact(spec)

    if kind == "intelligent":
        return lambda app: _resolve().client(app)
    if kind == "deskbench":
        from repro.agents.baselines.deskbench import DeskBenchClient

        def factory(app):
            recording = _resolve().recording
            threshold = DeskBenchClient.sweep_thresholds(
                create_benchmark(benchmark,
                                 rng=StreamRandom(base_seed + 31)), recording)
            return DeskBenchClient(app, recording,
                                   similarity_threshold=threshold,
                                   rng=StreamRandom(base_seed + 37))

        return factory
    raise ValueError(f"unknown artifact agent kind {kind!r}")
