"""The synthetic human reference player.

The paper's ground truth comes from real humans playing each benchmark
for three 15-minute sessions.  Here the reference player is a stochastic
policy built on each application's ground-truth interaction model: it
issues the "correct" response to the visible objects, but with human
imperfections — reaction delay, motor noise, occasional missed frames and
attention lapses.  Recorded sessions of this player train the intelligent
client, and live sessions of this player produce the human RTT/FPS
distributions every methodology is compared against (Figure 6, Table 3).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import Action, Application3D, InputKind
from repro.graphics.frame import Frame
from repro.sim.randomness import StreamRandom

__all__ = ["HumanPlayer"]


class HumanPlayer:
    """A stochastic human-like policy for one application."""

    def __init__(self, app: Application3D, rng: Optional[StreamRandom] = None,
                 skill: float = 0.85, lapse_probability: float = 0.04):
        if not 0.0 < skill <= 1.0:
            raise ValueError(f"skill must be in (0, 1], got {skill}")
        if not 0.0 <= lapse_probability < 1.0:
            raise ValueError("lapse_probability must be in [0, 1)")
        self.app = app
        self.rng = rng or StreamRandom(0)
        self.skill = skill
        self.lapse_probability = lapse_probability
        self.actions_issued = 0

    # -- agent interface --------------------------------------------------------
    @property
    def input_kind(self) -> InputKind:
        return self.app.profile.input_kind

    @property
    def actions_per_second(self) -> float:
        return self.app.profile.actions_per_second

    def decide(self, frame: Optional[Frame], now: float):
        """Return ``(action, think_time)`` or ``None`` for an attention lapse."""
        if self.rng.bernoulli(self.lapse_probability):
            return None
        action = self.policy(frame)
        reaction = self.reaction_time()
        self.actions_issued += 1
        return action, reaction

    # -- policy -------------------------------------------------------------------
    def policy(self, frame: Optional[Frame]) -> Action:
        """The action a human would take in response to ``frame``."""
        if frame is None:
            # Nothing on screen yet: press forward and wait.
            return Action(steer=0.0, pitch=0.0, primary=True)
        ideal = self.app.correct_action(frame)
        noise = 1.0 - self.skill
        steer = ideal.steer + self.rng.normal(0.0, 0.25 * noise + 0.03)
        pitch = ideal.pitch + self.rng.normal(0.0, 0.25 * noise + 0.03)
        primary = ideal.primary and self.rng.bernoulli(self.skill)
        return Action(steer=float(max(-1.0, min(1.0, steer))),
                      pitch=float(max(-1.0, min(1.0, pitch))),
                      primary=primary)

    def reaction_time(self) -> float:
        """Seconds between seeing the frame and completing the action."""
        profile = self.app.profile
        return self.rng.truncated_normal(
            profile.reaction_time_ms * 1e-3,
            profile.reaction_time_std_ms * 1e-3,
            low=0.05, high=1.0)
