"""The intelligent client: CNN + LSTM driving a benchmark like a human.

The client operates exactly as Figure 3 describes: it receives a
decompressed frame, runs the CNN to recognize the objects, feeds the
recognized objects into the LSTM to generate the user input, and hands
that input to the client proxy for delivery to the server.  Because the
actions are generated purely from what is on screen, the client copes
with randomly generated/placed objects and with varying network latency —
the two properties that defeat record-and-replay input generation.

The inference *latency* the client exhibits inside the simulation is a
modelled quantity (Figure 7 reports ~72.7 ms for the CNN and ~1.9 ms for
the LSTM on the paper's client machines); the inference *computation* is
performed for real by the numpy models so the full pipeline is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.agents.human import HumanPlayer
from repro.agents.recorder import RecordedSession, SessionRecorder
from repro.agents.rnn import Lstm, LstmConfig
from repro.agents.vision import ObjectDetector
from repro.apps.base import Action, Application3D, InputKind
from repro.graphics.frame import Frame
from repro.sim.randomness import StreamRandom

__all__ = ["InferenceTimingModel", "IntelligentClient", "train_intelligent_client"]


@dataclass(frozen=True)
class InferenceTimingModel:
    """Per-application inference latency on the thin client machine.

    Figure 7: computer-vision (CNN) inference averages 72.7 ms across the
    suite (heavier scenes take longer) and input generation (LSTM) averages
    1.9 ms.  Together they allow ~804 actions per minute, comfortably above
    a professional player's ~300 APM.
    """

    cv_mean_ms: float = 72.7
    cv_std_ms: float = 12.0
    rnn_mean_ms: float = 1.9
    rnn_std_ms: float = 0.5

    def sample_cv_time(self, rng: StreamRandom) -> float:
        return rng.truncated_normal(self.cv_mean_ms * 1e-3, self.cv_std_ms * 1e-3,
                                    low=0.01, high=0.3)

    def sample_rnn_time(self, rng: StreamRandom) -> float:
        return rng.truncated_normal(self.rnn_mean_ms * 1e-3, self.rnn_std_ms * 1e-3,
                                    low=0.0005, high=0.02)

    @property
    def max_actions_per_minute(self) -> float:
        """Upper bound on the client's action rate set by inference speed."""
        return 60.0 / ((self.cv_mean_ms + self.rnn_mean_ms) * 1e-3)


#: Per-benchmark CV inference times (ms), scaled with scene complexity so
#: the Figure 7 per-application variation is preserved.
DEFAULT_CV_TIMES_MS: dict[str, float] = {
    "STK": 78.0, "0AD": 84.0, "RE": 66.0, "D2": 81.0, "IM": 62.0, "ITP": 65.0,
}


class IntelligentClient:
    """A trained CNN+LSTM agent for one benchmark scene."""

    def __init__(self, app: Application3D, detector: ObjectDetector, policy: Lstm,
                 rng: Optional[StreamRandom] = None,
                 timing: Optional[InferenceTimingModel] = None):
        self.app = app
        self.detector = detector
        self.policy = policy
        self.rng = rng or StreamRandom(0)
        cv_ms = DEFAULT_CV_TIMES_MS.get(app.profile.short_name, 72.7)
        self.timing = timing or InferenceTimingModel(cv_mean_ms=cv_ms)
        self.actions_issued = 0
        self.cv_times: list[float] = []
        self.rnn_times: list[float] = []

    # -- agent interface ----------------------------------------------------------
    @property
    def input_kind(self) -> InputKind:
        return self.app.profile.input_kind

    @property
    def actions_per_second(self) -> float:
        """The client mimics the human's action *rate* for the scene.

        It could act faster (up to ``timing.max_actions_per_minute``), but
        the goal is performance results that match human-driven runs, so it
        issues inputs at the learned human cadence.
        """
        return self.app.profile.actions_per_second

    def decide(self, frame: Optional[Frame], now: float):
        """Run CV + input generation on the latest frame (Figure 3, steps 3–4)."""
        cv_time = self.timing.sample_cv_time(self.rng)
        rnn_time = self.timing.sample_rnn_time(self.rng)
        self.cv_times.append(cv_time)
        self.rnn_times.append(rnn_time)

        if frame is None:
            action = Action(steer=0.0, pitch=0.0, primary=True)
        else:
            features = self.detector.features(frame)
            vector = self.policy.predict(features)
            action = Action.from_vector(np.asarray(vector))
        self.actions_issued += 1
        return action, cv_time + rnn_time

    def bound_to(self, app: Application3D) -> "IntelligentClient":
        """Attach this trained client to a freshly created application.

        The supported re-binding seam for ``run_custom`` agent factories
        and warm artefact replays: the client keeps its inference RNG
        stream and timing accumulators (a run that continues with the
        same client must continue the same stream, exactly as the fused
        train-then-measure path did) while the policy's recurrent state
        is cleared so every run starts from the trained-and-reset state.
        Returns ``self`` so factories can be written as
        ``lambda app: client.bound_to(app)``.
        """
        self.app = app
        self.policy.reset_state()
        return self

    # -- reporting -------------------------------------------------------------------
    def mean_cv_time(self) -> float:
        return float(np.mean(self.cv_times)) if self.cv_times else 0.0

    def mean_rnn_time(self) -> float:
        return float(np.mean(self.rnn_times)) if self.rnn_times else 0.0

    def achievable_apm(self) -> float:
        """Actions per minute the client could sustain at full inference speed."""
        per_action = self.mean_cv_time() + self.mean_rnn_time()
        if per_action <= 0:
            return self.timing.max_actions_per_minute
        return 60.0 / per_action

    def imitation_error(self, session: RecordedSession) -> float:
        """Mean action-vector error against a recorded human session."""
        if len(session) == 0:
            raise ValueError("cannot evaluate on an empty recorded session")
        features = np.stack([self.detector.features(step.frame)
                             for step in session.steps])
        predictions = self.policy.predict_sequence(features)
        targets = session.action_matrix()
        return float(np.mean(np.abs(predictions - targets)))


def train_intelligent_client(app: Application3D,
                             rng: Optional[StreamRandom] = None,
                             recording_seconds: float = 20.0,
                             frame_rate: float = 30.0,
                             cnn_epochs: int = 20,
                             lstm_epochs: int = 40,
                             recorded_session: Optional[RecordedSession] = None,
                             ) -> tuple[IntelligentClient, RecordedSession]:
    """Record a human session for ``app`` and train an intelligent client on it.

    Returns the trained client together with the recorded session (which
    the DeskBench baseline and the accuracy evaluation reuse).
    """
    rng = rng or StreamRandom(0)
    if recorded_session is None:
        recorder = SessionRecorder(rng=rng)
        human = HumanPlayer(type(app)(rng=StreamRandom(rng.seed + 1)),
                            rng=StreamRandom(rng.seed + 2))
        recorded_session = recorder.record(human.app, human,
                                           duration_s=recording_seconds,
                                           frame_rate=frame_rate)

    detector = ObjectDetector()
    detector.train(recorded_session, epochs=cnn_epochs)

    features = np.stack([detector.features(step.frame)
                         for step in recorded_session.steps])
    actions = recorded_session.action_matrix()
    policy = Lstm(LstmConfig(input_units=features.shape[1]))
    policy.train(features, actions, epochs=lstm_epochs)
    policy.reset_state()

    client = IntelligentClient(app, detector, policy, rng=rng)
    return client, recorded_session
