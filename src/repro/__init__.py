"""Pictor reproduction: benchmarking framework for cloud 3D applications.

This package reproduces *"A Benchmarking Framework for Interactive 3D
Applications in the Cloud"* (Liu et al., 2020) as a self-contained Python
library.  The real testbed (GPU server, TurboVNC/VirtualGL, six games and
VR titles, human players) is replaced by calibrated simulation substrates
and small, genuinely trained numpy ML models; see ``DESIGN.md`` for the
complete substitution map and the per-experiment index.

Typical entry points:

* :class:`repro.server.CloudHost` — build and run a testbed (one server
  machine, N benchmark instances with their clients and agents).
* :class:`repro.core.Pictor` — the measurement framework facade.
* :func:`repro.agents.train_intelligent_client` — record a human session
  and train the CNN+LSTM intelligent client for a benchmark.
* :mod:`repro.experiments` — one generator per figure/table of the paper.
"""

__version__ = "1.0.0"

from repro.core.pictor import PerformanceReport, Pictor, PictorConfig
from repro.server.host import CloudHost, HostConfig, HostResult
from repro.server.session import RenderingSession, SessionConfig

__all__ = [
    "CloudHost",
    "HostConfig",
    "HostResult",
    "PerformanceReport",
    "Pictor",
    "PictorConfig",
    "RenderingSession",
    "SessionConfig",
    "__version__",
]
