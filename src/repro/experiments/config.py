"""Shared experiment configuration.

The :class:`ExperimentConfig` dataclass moved to
:mod:`repro.scenarios.config` (every scenario embeds one, and the
scenario package sits below the experiment generators in the dependency
stack); this module re-exports it so existing imports keep working.
"""

from repro.scenarios.config import ExperimentConfig

__all__ = ["ExperimentConfig"]
