"""Figure 20: overhead of running each benchmark inside a container.

Each benchmark instance (and its VNC server) is placed in a container and
the run is compared with the bare-metal configuration.  The paper reports
low average overheads (1.3% RTT, 1.5% server FPS), occasional spikes
(8.5% RTT / 6% FPS), GPU render time up ~2.9% on average, and a few cases
of *negative* overhead where the container's isolation reduces
interference between the benchmark and the VNC proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario

__all__ = ["ContainerOverheadRow", "ContainerOverheadSummary",
           "container_jobs", "container_overhead",
           "container_overhead_from_results"]


@dataclass
class ContainerOverheadRow:
    """One benchmark's bare-metal vs. containerized comparison."""

    benchmark: str
    bare_fps: float
    container_fps: float
    bare_rtt_ms: float
    container_rtt_ms: float
    bare_gpu_render_ms: float
    container_gpu_render_ms: float

    @property
    def fps_overhead_percent(self) -> float:
        if self.bare_fps <= 0:
            return 0.0
        return (self.bare_fps - self.container_fps) / self.bare_fps * 100.0

    @property
    def rtt_overhead_percent(self) -> float:
        if self.bare_rtt_ms <= 0:
            return 0.0
        return (self.container_rtt_ms - self.bare_rtt_ms) / self.bare_rtt_ms * 100.0

    @property
    def gpu_render_overhead_percent(self) -> float:
        if self.bare_gpu_render_ms <= 0:
            return 0.0
        return (self.container_gpu_render_ms - self.bare_gpu_render_ms) \
            / self.bare_gpu_render_ms * 100.0


@dataclass
class ContainerOverheadSummary:
    rows: list[ContainerOverheadRow] = field(default_factory=list)

    @property
    def mean_fps_overhead_percent(self) -> float:
        return float(np.mean([r.fps_overhead_percent
                              for r in self.rows])) if self.rows else 0.0

    @property
    def mean_rtt_overhead_percent(self) -> float:
        return float(np.mean([r.rtt_overhead_percent
                              for r in self.rows])) if self.rows else 0.0

    @property
    def mean_gpu_render_overhead_percent(self) -> float:
        return float(np.mean([r.gpu_render_overhead_percent
                              for r in self.rows])) if self.rows else 0.0

    @property
    def max_rtt_overhead_percent(self) -> float:
        return float(max((r.rtt_overhead_percent for r in self.rows), default=0.0))


def container_jobs(benchmarks, config: ExperimentConfig) -> list[ExperimentJob]:
    """A (bare, containerized) scenario pair per benchmark, interleaved."""
    jobs = []
    for index, benchmark in enumerate(benchmarks):
        jobs.append(ExperimentJob(Scenario.single(
            benchmark, config, seed_offset=600 + index)))
        jobs.append(ExperimentJob(Scenario.single(
            benchmark, config, seed_offset=600 + index, containerized=True)))
    return jobs


def container_overhead_from_results(benchmarks,
                                    results) -> ContainerOverheadSummary:
    summary = ContainerOverheadSummary()
    for index, benchmark in enumerate(benchmarks):
        bare_report = results[2 * index].reports[0]
        contained_report = results[2 * index + 1].reports[0]
        summary.rows.append(ContainerOverheadRow(
            benchmark=benchmark,
            bare_fps=bare_report.server_fps,
            container_fps=contained_report.server_fps,
            bare_rtt_ms=bare_report.rtt.mean * 1e3,
            container_rtt_ms=contained_report.rtt.mean * 1e3,
            bare_gpu_render_ms=bare_report.extra.get("gpu_render_time_mean", 0.0) * 1e3,
            container_gpu_render_ms=contained_report.extra.get(
                "gpu_render_time_mean", 0.0) * 1e3,
        ))
    return summary


def container_overhead(benchmarks=None, config: Optional[ExperimentConfig] = None,
                       suite: Optional[ExperimentSuite] = None,
                       ) -> ContainerOverheadSummary:
    """Figure 20: per-benchmark container overheads (negative = speed-up)."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    results = run_jobs(container_jobs(benchmarks, config), suite)
    return container_overhead_from_results(benchmarks, results)
