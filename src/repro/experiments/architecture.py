"""Figures 14–16: architecture-level counters under colocation.

* Figure 14 — Top-Down CPU cycle breakdown (retiring / front-end /
  back-end / bad speculation) for one instance as 1–4 instances colocate;
* Figure 15 — L3 miss rate under the same sweep;
* Figure 16 — GPU L2 and texture cache miss rates (unavailable for 0 A.D.
  whose OpenGL 1.3 context the vendor PMU tools cannot attach to).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario

__all__ = ["ArchitecturePoint", "architecture_jobs",
           "architecture_points_from_results", "architecture_sweep",
           "topdown_scaling", "l3_miss_scaling", "gpu_cache_scaling"]


@dataclass
class ArchitecturePoint:
    """Architecture counters of the first instance at one colocation level."""

    benchmark: str
    instances: int
    topdown: dict[str, float] = field(default_factory=dict)
    l3_miss_rate: float = 0.0
    gpu_l2_miss_rate: Optional[float] = None
    gpu_texture_miss_rate: Optional[float] = None


def architecture_jobs(benchmark: str, config: Optional[ExperimentConfig] = None,
                      max_instances: Optional[int] = None) -> list[ExperimentJob]:
    """The 1..N colocation runs of the sweep, as declarative jobs."""
    config = config or ExperimentConfig()
    max_instances = max_instances or config.max_instances
    return [ExperimentJob(Scenario.colocated(benchmark, count, config,
                                             seed_offset=100 + count))
            for count in range(1, max_instances + 1)]


def architecture_points_from_results(benchmark: str,
                                     results) -> list[ArchitecturePoint]:
    """Read the first instance's counters out of each sweep result."""
    points = []
    for result in results:
        report = result.reports[0]
        points.append(ArchitecturePoint(
            benchmark=benchmark,
            instances=len(result.reports),
            topdown={
                "retiring": report.cpu_pmu.get("retiring", 0.0),
                "frontend_bound": report.cpu_pmu.get("frontend_bound", 0.0),
                "backend_bound": report.cpu_pmu.get("backend_bound", 0.0),
                "bad_speculation": report.cpu_pmu.get("bad_speculation", 0.0),
            },
            l3_miss_rate=report.cpu_pmu.get("l3_miss_rate", 0.0),
            gpu_l2_miss_rate=report.gpu_pmu.get("l2_miss_rate"),
            gpu_texture_miss_rate=report.gpu_pmu.get("texture_miss_rate"),
        ))
    return points


def architecture_sweep(benchmark: str, config: Optional[ExperimentConfig] = None,
                       max_instances: Optional[int] = None,
                       suite: Optional[ExperimentSuite] = None,
                       ) -> list[ArchitecturePoint]:
    """Colocate 1..N instances and read the first instance's counters."""
    jobs = architecture_jobs(benchmark, config, max_instances)
    return architecture_points_from_results(benchmark, run_jobs(jobs, suite))


def topdown_scaling(benchmark: str, config: Optional[ExperimentConfig] = None,
                    max_instances: Optional[int] = None,
                    suite: Optional[ExperimentSuite] = None) -> list[dict]:
    """Figure 14 rows for one benchmark."""
    return [{"instances": p.instances, **p.topdown}
            for p in architecture_sweep(benchmark, config, max_instances, suite)]


def l3_miss_scaling(benchmark: str, config: Optional[ExperimentConfig] = None,
                    max_instances: Optional[int] = None,
                    suite: Optional[ExperimentSuite] = None) -> list[dict]:
    """Figure 15 rows for one benchmark."""
    return [{"instances": p.instances, "l3_miss_rate": p.l3_miss_rate}
            for p in architecture_sweep(benchmark, config, max_instances, suite)]


def gpu_cache_scaling(benchmark: str, config: Optional[ExperimentConfig] = None,
                      max_instances: Optional[int] = None,
                      suite: Optional[ExperimentSuite] = None) -> list[dict]:
    """Figure 16 rows for one benchmark (None when the PMU is unreadable)."""
    return [{"instances": p.instances,
             "gpu_l2_miss_rate": p.gpu_l2_miss_rate,
             "gpu_texture_miss_rate": p.gpu_texture_miss_rate}
            for p in architecture_sweep(benchmark, config, max_instances, suite)]
