"""A content-addressed work queue: the distributed backend's transport.

The queue hands :class:`~repro.experiments.jobs.ExperimentJob` values
(frozen, picklable, content-hashed) from one submitter to any number of
workers, possibly on other machines.  :class:`WorkQueue` is the small
transport-agnostic interface; :class:`DirectoryQueue` is the base
implementation — a plain directory on a filesystem every participant
can see — and :class:`~repro.experiments.socket_queue.SocketQueue`
reaches the same directory over TCP through a
:class:`~repro.experiments.server.QueueServer`, inheriting every
semantic below.

The directory protocol::

    <queue>/
      pending/   00000003-<key>.job            submitted, unclaimed
      claimed/   00000003-<key>.job@<worker>   claimed by one worker
      results/   results.sqlite                provenance-stamped ResultStore
      failed/    <key>.json                    error + traceback markers
      workers/   <worker>.log                  spawned-worker logs

* **Submission** writes the pickled job atomically (temp file +
  ``os.replace``) under a monotonically increasing priority prefix, so
  the lexicographic order of ``pending/`` *is* the submission order —
  the executor submits largest-estimated-cost first and workers drain in
  exactly that order.  Submitting a key that is already pending,
  claimed, or completed is a no-op (idempotent).
* **Claiming** is one ``os.rename`` from ``pending/`` into ``claimed/``
  — atomic on POSIX, so exactly one of any number of racing workers
  wins; losers see ``FileNotFoundError`` and move to the next file.
* **Completion** writes the result through the SQLite
  :class:`~repro.experiments.store.ResultStore` (the same
  provenance-stamped rows the in-process backends write; rollback
  journal + a busy timeout coordinate concurrent workers, including
  workers on other machines — with the usual SQLite caveat that the
  shared filesystem's advisory locking must work) and removes the
  claim.
* **Crash recovery**: a dead worker leaves its claim file behind.
  :meth:`requeue_stale` renames claims older than a lease back into
  ``pending/`` (a successful claim refreshes its mtime, starting the
  lease); :meth:`requeue_worker` requeues a specific worker's claims
  immediately when the submitter *knows* it died (it spawned the
  process).  Delivery is therefore **at least once** — a worker that
  merely stalled past its lease may complete a job a second worker
  re-ran — which is safe because :func:`execute_job` is deterministic:
  both completions write byte-identical cache entries.
"""

from __future__ import annotations

import abc
import json
import os
import pickle
import re
import socket
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.jobs import ExperimentJob
from repro.experiments.store import ResultStore, atomic_write_bytes

__all__ = ["ClaimedJob", "DirectoryQueue", "QueueCounts", "WorkQueue",
           "default_worker_id"]

#: Zero-padded width of the submission-priority filename prefix.
_PRIORITY_WIDTH = 8

_SAFE_ID = re.compile(r"[^A-Za-z0-9._-]")


def default_worker_id() -> str:
    """A host-unique worker identity: ``<hostname>-<pid>``."""
    return _SAFE_ID.sub("_", f"{socket.gethostname()}-{os.getpid()}")


@dataclass(frozen=True)
class ClaimedJob:
    """One job a worker holds exclusively until completed/failed/requeued.

    ``path`` is the claim file for directory-transport claims; socket
    claims have no local file (the server holds it) and carry None.
    """

    key: str
    job: ExperimentJob
    worker_id: str
    path: Optional[Path] = None


@dataclass(frozen=True)
class QueueCounts:
    pending: int = 0
    claimed: int = 0
    completed: int = 0
    failed: int = 0


class WorkQueue(abc.ABC):
    """The transport-agnostic queue interface the executor programs against."""

    @abc.abstractmethod
    def submit(self, job: ExperimentJob) -> str:
        """Enqueue ``job`` (idempotent per content hash); returns its key."""

    def submit_many(self, jobs: Sequence[ExperimentJob]) -> list[str]:
        """Enqueue ``jobs`` in order; returns their keys.

        Semantically ``[self.submit(job) for job in jobs]``; transports
        override it when a batch is materially cheaper (one duplicate
        scan for the directory protocol, one frame for the socket one).
        """
        return [self.submit(job) for job in jobs]

    @abc.abstractmethod
    def claim(self, worker_id: Optional[str] = None) -> Optional[ClaimedJob]:
        """Exclusively claim the highest-priority pending job, or None."""

    def heartbeat(self, worker_id: str,
                  keys: Optional[Sequence[str]] = None) -> list[str]:
        """Signal that ``worker_id`` is alive and working on ``keys``.

        Refreshes the lease of the listed claims (``None`` = every claim
        the worker holds) so an in-flight job outlives ``lease_s`` as
        long as its worker keeps beating; returns the refreshed keys.
        Transports without liveness tracking may treat it as a no-op.
        """
        return []

    @abc.abstractmethod
    def complete(self, claimed: ClaimedJob, result,
                 runtime_s: Optional[float] = None) -> None:
        """Store the provenance-stamped result and release the claim."""

    @abc.abstractmethod
    def fail(self, claimed: ClaimedJob, error: BaseException) -> None:
        """Record a failure marker for the job and release the claim."""

    @abc.abstractmethod
    def result_entry(self, key: str) -> Optional[dict]:
        """The completed job's full cache entry, or None while outstanding."""

    @abc.abstractmethod
    def failure(self, key: str) -> Optional[dict]:
        """The failure marker recorded for ``key``, or None."""

    @abc.abstractmethod
    def invalidate(self, key: str) -> None:
        """Drop a completed result (e.g. one that failed validation)."""

    @abc.abstractmethod
    def requeue_stale(self, lease_s: float) -> list[str]:
        """Requeue claims older than ``lease_s`` seconds; returns their keys."""

    @abc.abstractmethod
    def requeue_worker(self, worker_id: str) -> list[str]:
        """Requeue every claim held by ``worker_id``; returns the keys."""

    @abc.abstractmethod
    def counts(self) -> QueueCounts:
        """How many jobs sit in each lifecycle state."""

    def artifact_store(self):
        """The store workers should bind for trained-agent artefacts
        (see :mod:`repro.agents.artifacts`), or None when this transport
        has no shared artefact storage — workers then fall back to
        deterministic on-demand training."""
        return None


class DirectoryQueue(WorkQueue):
    """The shared-filesystem queue (see the module docstring protocol)."""

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.claimed_dir = self.root / "claimed"
        self.failed_dir = self.root / "failed"
        self.worker_log_dir = self.root / "workers"
        for directory in (self.pending_dir, self.claimed_dir,
                          self.failed_dir, self.worker_log_dir):
            directory.mkdir(parents=True, exist_ok=True)
        #: Completed results: the shared SQLite result database, in the
        #: same provenance-stamped rows the in-process backends write.
        #: Rollback-journal mode (wal=False): queue participants may sit
        #: on different machines, and WAL's shared-memory coordination
        #: does not span hosts.
        self.results = ResultStore(self.root / "results", wal=False)
        self._sequence = self._next_sequence()
        # Lease aging state for requeue_stale(): claim-file name ->
        # (st_mtime_ns, base) where ``base`` is the _mono() instant the
        # claim was last known fresh.  Ages are measured on the
        # monotonic clock so a wall-clock jump (NTP step, DST, manual
        # reset) can neither expire a healthy lease nor immortalize a
        # dead one; the wall clock is consulted only once per claim, on
        # first sighting, to credit age accrued before this sweeper
        # started watching.  Patchable clocks for tests.
        self._wall = time.time
        self._mono = time.monotonic
        self._lease_marks: dict[str, tuple[int, float]] = {}

    # -- filename helpers -------------------------------------------------------------
    @staticmethod
    def _key_of(name: str) -> str:
        stem = name.split("@", 1)[0]             # drop any @worker suffix
        stem = stem.split("-", 1)[1]             # drop the priority prefix
        return stem[: -len(".job")]

    def _next_sequence(self) -> int:
        highest = -1
        for directory in (self.pending_dir, self.claimed_dir):
            for path in directory.iterdir():
                prefix = path.name.split("-", 1)[0]
                if prefix.isdigit():
                    highest = max(highest, int(prefix))
        return highest + 1

    def _queued_keys(self) -> set[str]:
        keys = set()
        for directory in (self.pending_dir, self.claimed_dir):
            for path in directory.iterdir():
                if ".job" in path.name:
                    keys.add(self._key_of(path.name))
        return keys

    # -- submitter side ---------------------------------------------------------------
    def submit(self, job: ExperimentJob) -> str:
        return self._submit(job, self._queued_keys())

    def submit_many(self, jobs: Sequence[ExperimentJob]) -> list[str]:
        """Batch :meth:`submit`: one duplicate scan for the whole batch."""
        queued = self._queued_keys()
        return [self._submit(job, queued) for job in jobs]

    def _submit(self, job: ExperimentJob, queued: set[str]) -> str:
        key = job.key()
        if key in queued or self.result_entry(key) is not None:
            return key
        queued.add(key)
        name = f"{self._sequence:0{_PRIORITY_WIDTH}d}-{key}.job"
        self._sequence += 1
        atomic_write_bytes(self.root, self.pending_dir / name,
                           pickle.dumps(job,
                                        protocol=pickle.HIGHEST_PROTOCOL))
        return key

    def result_entry(self, key: str) -> Optional[dict]:
        return self.results.get_entry(key)

    def artifact_store(self):
        """Artefacts share the queue's result database, so every worker
        on the shared filesystem resolves the same trained agents."""
        return self.results

    def invalidate(self, key: str) -> None:
        self.results.invalidate(key)

    def failure(self, key: str) -> Optional[dict]:
        path = self.failed_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {"key": key, "error": "unreadable failure marker"}

    def requeue_stale(self, lease_s: float) -> list[str]:
        wall_now = self._wall()
        mono_now = self._mono()
        marks = self._lease_marks
        seen: set[str] = set()
        requeued = []
        for path in sorted(self.claimed_dir.iterdir()):
            name = path.name
            if "@" not in name:
                continue
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue                         # completed under our feet
            seen.add(name)
            mark = marks.get(name)
            if mark is None or stat.st_mtime_ns < mark[0]:
                # First sighting (or the claim file was replaced since):
                # trust the wall clock once for age accrued before we
                # started watching, clamping future stamps to zero age.
                base = mono_now - max(wall_now - stat.st_mtime, 0.0)
            elif stat.st_mtime_ns > mark[0]:
                base = mono_now                  # witnessed a heartbeat
            else:
                base = mark[1]                   # unchanged: keep aging
            marks[name] = (stat.st_mtime_ns, base)
            if mono_now - base >= lease_s:
                if self._requeue(path):
                    requeued.append(self._key_of(name))
                    marks.pop(name, None)
        # Forget claims that vanished (completed or requeued elsewhere);
        # a recycled name must re-enter through the first-sighting path.
        for name in list(marks):
            if name not in seen:
                del marks[name]
        return requeued

    def requeue_worker(self, worker_id: str) -> list[str]:
        suffix = f"@{_SAFE_ID.sub('_', worker_id)}"
        requeued = []
        for path in sorted(self.claimed_dir.iterdir()):
            if path.name.endswith(suffix) and self._requeue(path):
                requeued.append(self._key_of(path.name))
        return requeued

    def _requeue(self, claimed_path: Path) -> bool:
        pending_name = claimed_path.name.split("@", 1)[0]
        try:
            os.rename(claimed_path, self.pending_dir / pending_name)
        except FileNotFoundError:
            return False                         # raced with completion
        return True

    def counts(self) -> QueueCounts:
        return QueueCounts(
            pending=sum(1 for p in self.pending_dir.iterdir()
                        if p.name.endswith(".job")),
            claimed=sum(1 for p in self.claimed_dir.iterdir()
                        if "@" in p.name),
            completed=len(self.results),
            failed=sum(1 for p in self.failed_dir.iterdir()
                       if p.name.endswith(".json")),
        )

    def pending_files(self) -> list[tuple[str, Path]]:
        """``(key, path)`` of every pending job, in priority order.

        The paths feed :meth:`claim_file` — the queue server scans once
        and claims by file instead of re-scanning per claim.
        """
        return [(self._key_of(path.name), path)
                for path in sorted(self.pending_dir.iterdir())
                if path.name.endswith(".job")]

    def pending_keys(self) -> list[str]:
        """Every pending job key, in priority (i.e. submission) order."""
        return [key for key, _ in self.pending_files()]

    def claimed_workers(self) -> set[str]:
        """The worker ids currently holding claims (from the filenames).

        A restarted coordinator (the queue server) adopts these into its
        liveness registry: a worker that never heartbeats again has its
        claims requeued after the heartbeat timeout instead of the full
        lease.
        """
        return {path.name.split("@", 1)[1]
                for path in self.claimed_dir.iterdir() if "@" in path.name}

    # -- worker side ------------------------------------------------------------------
    def heartbeat(self, worker_id: str,
                  keys: Optional[Sequence[str]] = None) -> list[str]:
        """Refresh the lease clock (claim-file mtime) of a worker's claims.

        With ``keys``, only the listed claims are refreshed — a claim
        the worker does not acknowledge working on (e.g. one orphaned by
        a retried CLAIM whose first response was lost) keeps aging and
        is recovered by the ordinary lease expiry.
        """
        worker = _SAFE_ID.sub("_", worker_id) if worker_id \
            else default_worker_id()
        suffix = f"@{worker}"
        wanted = None if keys is None else set(keys)
        refreshed = []
        for path in self.claimed_dir.iterdir():
            if not path.name.endswith(suffix):
                continue
            key = self._key_of(path.name)
            if wanted is not None and key not in wanted:
                continue
            try:
                os.utime(path)
            except FileNotFoundError:
                continue                         # completed under our feet
            refreshed.append(key)
        return refreshed

    def release_claim(self, key: str, worker_id: str) -> bool:
        """Drop the claim ``worker_id`` holds on ``key`` (idempotent).

        The server-side half of a remote completion: the result has been
        stored, so the claim file — if a requeue has not already taken
        it — is simply removed.
        """
        worker = _SAFE_ID.sub("_", worker_id) if worker_id \
            else default_worker_id()
        suffix = f"@{worker}"
        for path in self.claimed_dir.iterdir():
            if path.name.endswith(suffix) and self._key_of(path.name) == key:
                path.unlink(missing_ok=True)
                return True
        return False

    def record_failure(self, key: str, worker_id: str, error_repr: str,
                       traceback_text: str = "") -> None:
        """Write a failure marker from already-formatted error text (the
        form a failure crosses the wire in)."""
        marker = {
            "key": key,
            "worker": worker_id,
            "error": error_repr,
            "traceback": traceback_text,
        }
        atomic_write_bytes(self.root, self.failed_dir / f"{key}.json",
                           json.dumps(marker, indent=2).encode("utf-8"))

    def claim(self, worker_id: Optional[str] = None,
              key: Optional[str] = None) -> Optional[ClaimedJob]:
        """Claim the highest-priority pending job — or, with ``key``,
        exactly that pending job (None when it is no longer pending)."""
        for pending_key, path in self.pending_files():
            if key is not None and pending_key != key:
                continue
            claimed = self.claim_file(path, worker_id)
            if claimed is not None:
                return claimed
            # Another worker won the race (or the file was corrupt);
            # with a specific key there is nothing else to try.
            if key is not None:
                return None
        return None

    def claim_file(self, path: Path,
                   worker_id: Optional[str] = None) -> Optional[ClaimedJob]:
        """Atomically claim one specific pending file, or None.

        None means the file is gone (another claimant won the rename
        race) or unreadable (a failure marker was recorded and the file
        dropped) — either way the caller just moves to its next
        candidate.
        """
        worker = _SAFE_ID.sub("_", worker_id) if worker_id \
            else default_worker_id()
        target = self.claimed_dir / f"{path.name}@{worker}"
        try:
            # The lease clock is the claim file's mtime, and rename
            # preserves mtime — so refresh it *before* the rename.
            # Refreshing after would leave a window where a job that
            # sat pending longer than the lease looks instantly
            # stale and requeue_stale snatches the claim back.
            os.utime(path)
            os.rename(path, target)
        except FileNotFoundError:
            return None                          # another worker won the race
        key = self._key_of(path.name)
        try:
            with target.open("rb") as handle:
                job = pickle.load(handle)
        except Exception as error:
            self._record_failure(key, error, worker)
            target.unlink(missing_ok=True)
            return None
        return ClaimedJob(key=key, job=job, worker_id=worker, path=target)

    def complete(self, claimed: ClaimedJob, result,
                 runtime_s: Optional[float] = None) -> None:
        self.results.put(claimed.job, result, runtime_s=runtime_s)
        # A claim requeued past its lease may already be gone (or even
        # completed by another worker — byte-identical by determinism).
        claimed.path.unlink(missing_ok=True)

    def fail(self, claimed: ClaimedJob, error: BaseException) -> None:
        self._record_failure(claimed.key, error, claimed.worker_id)
        claimed.path.unlink(missing_ok=True)

    def _record_failure(self, key: str, error: BaseException,
                        worker: str) -> None:
        self.record_failure(key, worker, repr(error),
                            "".join(traceback.format_exception(error)))
