"""Figures 10–13: colocating one to four instances of the same benchmark.

* Figure 10 — server and client FPS for 1–4 instances;
* Figure 11 — mean RTT broken into input-network / server / frame-network;
* Figure 12 — server time broken into PS / application / AS / CP;
* Figure 13 — application time broken into AL / FC with RD alongside.

One testbed run per (benchmark, instance-count) produces all four views,
so the generator returns a combined record and the per-figure accessors
slice it.  :func:`scaling_jobs` declares those runs as experiment jobs;
:func:`scaling_points_from_results` folds the (possibly parallel or
cached) results back into :class:`ScalingPoint` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.reporting import mean_breakdown
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario

__all__ = ["ScalingPoint", "scaling_jobs", "scaling_points_from_results",
           "scaling_sweep", "fps_scaling", "rtt_breakdown_scaling",
           "server_breakdown_scaling", "application_breakdown_scaling"]


@dataclass
class ScalingPoint:
    """Aggregated measurements for N colocated instances of one benchmark."""

    benchmark: str
    instances: int
    server_fps: float
    client_fps: float
    rtt_ms: float
    rtt_breakdown_ms: dict[str, float] = field(default_factory=dict)
    server_breakdown_ms: dict[str, float] = field(default_factory=dict)
    application_breakdown_ms: dict[str, float] = field(default_factory=dict)


def scaling_jobs(benchmark: str, config: Optional[ExperimentConfig] = None,
                 max_instances: Optional[int] = None) -> list[ExperimentJob]:
    """One colocation run per instance count, as declarative jobs."""
    config = config or ExperimentConfig()
    max_instances = max_instances or config.max_instances
    return [ExperimentJob(Scenario.colocated(benchmark, count, config,
                                             seed_offset=count))
            for count in range(1, max_instances + 1)]


def scaling_points_from_results(benchmark: str, results) -> list[ScalingPoint]:
    """Fold the job results of :func:`scaling_jobs` into scaling points."""
    points = []
    for result in results:
        reports = result.reports
        points.append(ScalingPoint(
            benchmark=benchmark,
            instances=len(reports),
            server_fps=float(np.mean([r.server_fps for r in reports])),
            client_fps=float(np.mean([r.client_fps for r in reports])),
            rtt_ms=float(np.mean([r.rtt.mean for r in reports])) * 1e3,
            rtt_breakdown_ms=mean_breakdown(
                [r.rtt_breakdown for r in reports], scale=1e3),
            server_breakdown_ms=mean_breakdown(
                [r.server_breakdown for r in reports], scale=1e3),
            application_breakdown_ms=mean_breakdown(
                [r.application_breakdown for r in reports], scale=1e3),
        ))
    return points


def scaling_sweep(benchmark: str, config: Optional[ExperimentConfig] = None,
                  max_instances: Optional[int] = None,
                  suite: Optional[ExperimentSuite] = None) -> list[ScalingPoint]:
    """Run 1..max_instances copies of ``benchmark`` and aggregate per count."""
    jobs = scaling_jobs(benchmark, config, max_instances)
    return scaling_points_from_results(benchmark, run_jobs(jobs, suite))


def fps_scaling(benchmark: str, config: Optional[ExperimentConfig] = None,
                max_instances: Optional[int] = None,
                suite: Optional[ExperimentSuite] = None) -> list[dict[str, float]]:
    """Figure 10 rows for one benchmark."""
    return [{"instances": p.instances, "server_fps": p.server_fps,
             "client_fps": p.client_fps}
            for p in scaling_sweep(benchmark, config, max_instances, suite)]


def rtt_breakdown_scaling(benchmark: str, config: Optional[ExperimentConfig] = None,
                          max_instances: Optional[int] = None,
                          suite: Optional[ExperimentSuite] = None) -> list[dict]:
    """Figure 11 rows for one benchmark."""
    return [{"instances": p.instances, "rtt_ms": p.rtt_ms,
             **{f"{k}_ms": v for k, v in p.rtt_breakdown_ms.items()}}
            for p in scaling_sweep(benchmark, config, max_instances, suite)]


def server_breakdown_scaling(benchmark: str,
                             config: Optional[ExperimentConfig] = None,
                             max_instances: Optional[int] = None,
                             suite: Optional[ExperimentSuite] = None) -> list[dict]:
    """Figure 12 rows for one benchmark."""
    return [{"instances": p.instances,
             **{f"{k}_ms": v for k, v in p.server_breakdown_ms.items()}}
            for p in scaling_sweep(benchmark, config, max_instances, suite)]


def application_breakdown_scaling(benchmark: str,
                                  config: Optional[ExperimentConfig] = None,
                                  max_instances: Optional[int] = None,
                                  suite: Optional[ExperimentSuite] = None,
                                  ) -> list[dict]:
    """Figure 13 rows for one benchmark."""
    return [{"instances": p.instances,
             **{f"{k}_ms": v for k, v in p.application_breakdown_ms.items()}}
            for p in scaling_sweep(benchmark, config, max_instances, suite)]
