"""Experiment generators: one per table/figure of the paper's evaluation.

Every module exposes functions that run the relevant testbed
configuration and return structured rows mirroring what the paper
reports; the ``benchmarks/`` harnesses call them and print the rows.
Durations and training budgets are parameters so the same generators can
run in a quick CI-friendly mode or a longer, lower-variance mode.

| Paper artefact | Module / function |
|---|---|
| Figure 6 / Table 3 (methodology accuracy) | :func:`repro.experiments.accuracy.methodology_accuracy` |
| Figure 7 (inference times)                | :func:`repro.experiments.accuracy.inference_times` |
| Section 4 overhead                        | :func:`repro.experiments.overhead.framework_overhead` |
| Figure 8 (CPU/GPU utilization)            | :func:`repro.experiments.characterization.utilization` |
| Figure 9 (network/PCIe bandwidth)         | :func:`repro.experiments.characterization.bandwidth` |
| Figures 10–13 (FPS/RTT/server/app scaling)| :mod:`repro.experiments.scaling` |
| Figures 14–16 (Top-Down, L3, GPU caches)  | :mod:`repro.experiments.architecture` |
| Figure 17 (per-instance power)            | :func:`repro.experiments.power.per_instance_power` |
| Figures 18–19 (mixed pairs)               | :mod:`repro.experiments.mixed` |
| Figure 20 (container overhead)            | :func:`repro.experiments.containers.container_overhead` |
| Figures 21–22 (optimizations)             | :func:`repro.experiments.optimizations.optimization_improvements` |
| Table 4 (feature comparison)              | :func:`repro.experiments.feature_matrix.feature_matrix` |

Execution goes through the suite subsystem: every generator expresses its
testbed runs as declarative :class:`~repro.scenarios.Scenario` values
wrapped in :class:`~repro.experiments.jobs.ExperimentJob` lists that an
:class:`~repro.experiments.executor.ExperimentSuite` runs serially,
across local worker processes, over a distributed work queue
(:mod:`repro.experiments.queue` — drained by ``python -m
repro.experiments worker`` processes on any machine sharing the queue
directory), over TCP to a queue server (:mod:`repro.experiments.server`
behind ``python -m repro.experiments serve``, reached by
:class:`~repro.experiments.socket_queue.SocketQueue` clients and
heartbeating ``worker --addr`` processes, optionally autoscaled by a
:class:`~repro.experiments.coordinator.Coordinator`), or out of the
content-addressed SQLite result database
(:mod:`repro.experiments.store`) — always with bit-identical results,
submitted largest-estimated-cost first
(:mod:`repro.experiments.cost`).  ``python -m repro.experiments``
exposes the whole registry (plus a ``scenario`` subcommand for running
ad-hoc scenario specs and a ``results`` subcommand for listing,
showing, diffing and exporting stored results) on the command line (see
:mod:`repro.experiments.figures`).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.cost import CostModel, order_by_cost
from repro.experiments.executor import (
    BACKENDS,
    ExperimentSuite,
    default_suite,
    run_jobs,
)
from repro.experiments.store import (
    PickleResultCache,
    ResultCache,
    ResultStore,
    diff_result_sets,
    migrate_pickle_dir,
)
from repro.experiments.jobs import ExperimentJob, JobVariant, execute_job
from repro.experiments.queue import DirectoryQueue, WorkQueue
from repro.experiments.coordinator import Coordinator
from repro.experiments.server import QueueServer
from repro.experiments.socket_queue import SocketQueue
from repro.experiments.worker import run_worker, spawn_worker
from repro.experiments.runner import (
    run_colocated,
    run_custom,
    run_mixed_pair,
    run_single,
)
from repro.scenarios.mixes import n_way_mixes
from repro.scenarios.scenario import Placement, Scenario, SeedPolicy
from repro.scenarios.variants import SessionVariant, session_variant

__all__ = [
    "BACKENDS",
    "Coordinator",
    "CostModel",
    "DirectoryQueue",
    "ExperimentConfig",
    "ExperimentJob",
    "ExperimentSuite",
    "JobVariant",
    "PickleResultCache",
    "Placement",
    "QueueServer",
    "ResultCache",
    "ResultStore",
    "Scenario",
    "SeedPolicy",
    "SessionVariant",
    "SocketQueue",
    "WorkQueue",
    "default_suite",
    "diff_result_sets",
    "execute_job",
    "migrate_pickle_dir",
    "n_way_mixes",
    "order_by_cost",
    "run_colocated",
    "run_custom",
    "run_jobs",
    "run_mixed_pair",
    "run_single",
    "run_worker",
    "session_variant",
    "spawn_worker",
]
