"""Section 4: overhead of the performance analysis framework.

The framework's cost is measured by running each benchmark with the
instrumentation on and off (native TurboVNC) and comparing server FPS —
the native system provides no RTT readings, which is precisely why FPS is
the comparison metric.  The paper reports a 2.7% average FPS reduction
(5% maximum) with double-buffered GPU time queries, rising to ~10% when a
single query buffer forces the CPU to stall on query retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario
from repro.scenarios.variants import session_variant

__all__ = ["OverheadRow", "OverheadSummary", "overhead_jobs",
           "framework_overhead", "framework_overhead_from_results",
           "query_buffer_ablation"]


@dataclass
class OverheadRow:
    """Per-benchmark FPS with and without the measurement framework."""

    benchmark: str
    native_fps: float
    instrumented_fps: float

    @property
    def overhead_percent(self) -> float:
        if self.native_fps <= 0:
            return 0.0
        return max(0.0, (self.native_fps - self.instrumented_fps)
                   / self.native_fps * 100.0)


@dataclass
class OverheadSummary:
    rows: list[OverheadRow] = field(default_factory=list)

    @property
    def mean_overhead_percent(self) -> float:
        if not self.rows:
            return 0.0
        return float(np.mean([row.overhead_percent for row in self.rows]))

    @property
    def max_overhead_percent(self) -> float:
        if not self.rows:
            return 0.0
        return float(max(row.overhead_percent for row in self.rows))


def overhead_jobs(benchmarks, config: ExperimentConfig,
                  double_buffered: bool = True) -> list[ExperimentJob]:
    """A (native, instrumented) scenario pair per benchmark, interleaved."""
    instrumented = session_variant("default" if double_buffered
                                   else "single_buffered")
    jobs = []
    for index, benchmark in enumerate(benchmarks):
        jobs.append(ExperimentJob(Scenario.single(
            benchmark, config, seed_offset=index,
            variant=session_variant("native"))))
        jobs.append(ExperimentJob(Scenario.single(
            benchmark, config, seed_offset=index, variant=instrumented)))
    return jobs


def framework_overhead_from_results(benchmarks, results) -> OverheadSummary:
    summary = OverheadSummary()
    for index, benchmark in enumerate(benchmarks):
        summary.rows.append(OverheadRow(
            benchmark=benchmark,
            native_fps=results[2 * index].reports[0].server_fps,
            instrumented_fps=results[2 * index + 1].reports[0].server_fps))
    return summary


def framework_overhead(benchmarks=None, config: Optional[ExperimentConfig] = None,
                       double_buffered: bool = True,
                       suite: Optional[ExperimentSuite] = None) -> OverheadSummary:
    """FPS overhead of enabling Pictor's measurement framework."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    results = run_jobs(overhead_jobs(benchmarks, config, double_buffered), suite)
    return framework_overhead_from_results(benchmarks, results)


def query_buffer_jobs(benchmark: str, config: ExperimentConfig,
                      ) -> list[ExperimentJob]:
    """Native plus double- and single-buffered instrumented runs."""
    return [
        ExperimentJob(Scenario.single(benchmark, config,
                                      variant=session_variant("native"))),
        ExperimentJob(Scenario.single(benchmark, config,
                                      variant=session_variant("default"))),
        ExperimentJob(Scenario.single(benchmark, config,
                                      variant=session_variant("single_buffered"))),
    ]


def query_buffer_ablation(benchmark: str = "STK",
                          config: Optional[ExperimentConfig] = None,
                          suite: Optional[ExperimentSuite] = None,
                          ) -> dict[str, float]:
    """Design-choice ablation: double- vs single-buffered GPU time queries.

    Returns the FPS overhead (percent, against the native run) of each
    query-buffer configuration; the double-buffered scheme should cost
    noticeably less.
    """
    config = config or ExperimentConfig()
    native, double, single = run_jobs(query_buffer_jobs(benchmark, config), suite)
    native_fps = native.reports[0].server_fps

    results = {}
    for label, run in (("double_buffered", double), ("single_buffered", single)):
        fps = run.reports[0].server_fps
        results[label] = max(0.0, (native_fps - fps) / native_fps * 100.0)
    results["native_fps"] = native_fps
    return results
