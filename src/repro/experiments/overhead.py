"""Section 4: overhead of the performance analysis framework.

The framework's cost is measured by running each benchmark with the
instrumentation on and off (native TurboVNC) and comparing server FPS —
the native system provides no RTT readings, which is precisely why FPS is
the comparison metric.  The paper reports a 2.7% average FPS reduction
(5% maximum) with double-buffered GPU time queries, rising to ~10% when a
single query buffer forces the CPU to stall on query retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_session_config, run_single

__all__ = ["OverheadRow", "framework_overhead", "query_buffer_ablation"]


@dataclass
class OverheadRow:
    """Per-benchmark FPS with and without the measurement framework."""

    benchmark: str
    native_fps: float
    instrumented_fps: float

    @property
    def overhead_percent(self) -> float:
        if self.native_fps <= 0:
            return 0.0
        return max(0.0, (self.native_fps - self.instrumented_fps)
                   / self.native_fps * 100.0)


@dataclass
class OverheadSummary:
    rows: list[OverheadRow] = field(default_factory=list)

    @property
    def mean_overhead_percent(self) -> float:
        if not self.rows:
            return 0.0
        return float(np.mean([row.overhead_percent for row in self.rows]))

    @property
    def max_overhead_percent(self) -> float:
        if not self.rows:
            return 0.0
        return float(max(row.overhead_percent for row in self.rows))


def framework_overhead(benchmarks=None, config: Optional[ExperimentConfig] = None,
                       double_buffered: bool = True) -> OverheadSummary:
    """FPS overhead of enabling Pictor's measurement framework."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    summary = OverheadSummary()
    for index, benchmark in enumerate(benchmarks):
        native = run_single(
            benchmark, config, seed_offset=index,
            measurement_enabled=False,
            session_config=make_session_config(measurement_enabled=False))
        instrumented = run_single(
            benchmark, config, seed_offset=index,
            measurement_enabled=True,
            double_buffered_queries=double_buffered,
            session_config=make_session_config(
                measurement_enabled=True,
                double_buffered_queries=double_buffered))
        summary.rows.append(OverheadRow(
            benchmark=benchmark,
            native_fps=native.reports[0].server_fps,
            instrumented_fps=instrumented.reports[0].server_fps))
    return summary


def query_buffer_ablation(benchmark: str = "STK",
                          config: Optional[ExperimentConfig] = None,
                          ) -> dict[str, float]:
    """Design-choice ablation: double- vs single-buffered GPU time queries.

    Returns the FPS overhead (percent, against the native run) of each
    query-buffer configuration; the double-buffered scheme should cost
    noticeably less.
    """
    config = config or ExperimentConfig()
    native = run_single(benchmark, config, seed_offset=0,
                        measurement_enabled=False,
                        session_config=make_session_config(measurement_enabled=False))
    native_fps = native.reports[0].server_fps

    results = {}
    for label, double in (("double_buffered", True), ("single_buffered", False)):
        run = run_single(benchmark, config, seed_offset=0,
                         measurement_enabled=True,
                         double_buffered_queries=double,
                         session_config=make_session_config(
                             measurement_enabled=True,
                             double_buffered_queries=double))
        fps = run.reports[0].server_fps
        results[label] = max(0.0, (native_fps - fps) / native_fps * 100.0)
    results["native_fps"] = native_fps
    return results
