"""The socket transport's wire format: length-prefixed, checksummed frames.

Every message between a :class:`~repro.experiments.socket_queue.SocketQueue`
client and the :class:`~repro.experiments.server.QueueServer` is one
**frame** — a fixed 12-byte header followed by a pickled payload::

    offset  size  field
    0       2     magic     b"PQ"
    2       1     version   PROTOCOL_VERSION (bumped on incompatible change)
    3       1     type      a MessageType code
    4       4     length    payload byte count, big-endian unsigned
    8       4     crc32     zlib.crc32 of the payload bytes
    12      N     payload   pickle.dumps(object)

The checksum makes corruption *detectable* rather than silently
deserialized: a frame whose magic, version, declared length or CRC-32 is
wrong is **rejected with a log line** (grep for ``"rejecting corrupt
frame"``) and raises :class:`CorruptFrameError`; a stream that ends in
the middle of a frame is likewise logged (``"rejecting truncated
frame"``) and raises :class:`TruncatedFrameError`.  Neither error is
ever turned into a half-read message — the connection is the unit of
failure, and the queue's retry/requeue machinery (client backoff, worker
heartbeats, lease recovery) turns a dropped connection into a re-run,
never a lost or corrupted result.

Request/response types mirror the :class:`~repro.experiments.queue.WorkQueue`
interface — SUBMIT / CLAIM / COMPLETE / FAIL / HEARTBEAT / COUNTS /
REQUEUE plus the result-query messages — and every request is answered
by exactly one OK (payload: the reply) or ERROR (payload: the remote
failure description) frame.

Payloads are pickled, exactly like the jobs the
:class:`~repro.experiments.queue.DirectoryQueue` already writes to its
shared directory: the transport carries the same trusted-cluster traffic
the shared filesystem did, only over TCP.
"""

from __future__ import annotations

import enum
import logging
import pickle
import socket
import struct
import zlib
from typing import BinaryIO, Optional, Union

__all__ = [
    "CorruptFrameError",
    "FrameError",
    "HEADER",
    "MAGIC",
    "MAX_PAYLOAD",
    "MessageType",
    "PROTOCOL_VERSION",
    "TruncatedFrameError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
]

logger = logging.getLogger(__name__)

MAGIC = b"PQ"
PROTOCOL_VERSION = 1

#: magic, version, type, payload length, payload crc32 — big-endian.
HEADER = struct.Struct(">2sBBII")

#: Sanity cap on a frame's declared payload size.  Real payloads are a
#: pickled job (KBs) or result (MBs at the most); a corrupt length field
#: must not make a reader allocate gigabytes before the CRC check.
MAX_PAYLOAD = 256 * 1024 * 1024


class MessageType(enum.IntEnum):
    """One byte on the wire; requests mirror the WorkQueue interface."""

    SUBMIT = 1
    CLAIM = 2
    COMPLETE = 3
    FAIL = 4
    HEARTBEAT = 5
    COUNTS = 6
    REQUEUE = 7
    RESULT = 8
    FAILURE = 9
    INVALIDATE = 10
    ARTIFACT_GET = 11
    ARTIFACT_PUT = 12
    #: Response types: every request gets exactly one of these back.
    OK = 64
    ERROR = 65


class FrameError(ConnectionError):
    """A frame could not be decoded; the stream is no longer trustworthy."""


class CorruptFrameError(FrameError):
    """Bad magic, version, length or checksum (see the module docstring)."""


class TruncatedFrameError(FrameError):
    """The stream ended (or the buffer ran out) mid-frame."""


def encode_frame(kind: Union[MessageType, int], payload: object = None) -> bytes:
    """One wire-ready frame: header + pickled ``payload``."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_PAYLOAD:
        raise ValueError(f"frame payload of {len(body)} bytes exceeds the {MAX_PAYLOAD}-byte cap")
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, int(kind), len(body), zlib.crc32(body))
    return header + body


def _reject_corrupt(reason: str) -> CorruptFrameError:
    # THE documented corruption log line — tests (and operators) grep
    # for it, so keep the prefix stable.
    logger.warning("rejecting corrupt frame: %s", reason)
    return CorruptFrameError(reason)


def decode_frame(buffer: Union[bytes, bytearray, memoryview]) -> tuple[MessageType, object, int]:
    """Decode one frame from the head of ``buffer``.

    Returns ``(type, payload, bytes_consumed)``.  Raises
    :class:`TruncatedFrameError` when ``buffer`` holds less than one full
    frame (callers streaming from a socket read more and retry;
    :func:`read_frame` turns it into the documented rejection when the
    stream has actually ended) and :class:`CorruptFrameError` — after
    the documented log line — when the header or checksum is wrong.
    """
    view = memoryview(buffer)
    if len(view) < HEADER.size:
        raise TruncatedFrameError(f"need {HEADER.size} header bytes, have {len(view)}")
    magic, version, kind, length, crc = HEADER.unpack_from(view)
    if magic != MAGIC:
        raise _reject_corrupt(f"bad magic {bytes(magic)!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise _reject_corrupt(f"protocol version {version} (speaking {PROTOCOL_VERSION})")
    if length > MAX_PAYLOAD:
        raise _reject_corrupt(f"declared payload of {length} bytes exceeds the {MAX_PAYLOAD} cap")
    end = HEADER.size + length
    if len(view) < end:
        raise TruncatedFrameError(f"need {end} bytes for the payload, have {len(view)}")
    body = view[HEADER.size:end]
    if zlib.crc32(body) != crc:
        raise _reject_corrupt(f"payload checksum mismatch ({length}-byte payload, type {kind})")
    try:
        payload = pickle.loads(body)
    except Exception as error:
        raise _reject_corrupt(f"payload does not unpickle ({error!r})")
    try:
        message_type = MessageType(kind)
    except ValueError:
        raise _reject_corrupt(f"unknown message type {kind}")
    return message_type, payload, end


def _reject_truncated(got: int, wanted: int) -> TruncatedFrameError:
    # THE documented truncation log line (see the module docstring).
    reason = f"stream ended after {got} of {wanted} frame bytes"
    logger.warning("rejecting truncated frame: %s", reason)
    return TruncatedFrameError(reason)


def read_frame(stream: BinaryIO) -> Optional[tuple[MessageType, object]]:
    """Read exactly one frame from a blocking binary stream.

    Returns ``(type, payload)``, or None on a clean end-of-stream (the
    peer closed between frames).  An end-of-stream *inside* a frame is a
    truncation: logged and raised, never silently swallowed.
    """
    header = _read_exact(stream.read, HEADER.size, allow_clean_eof=True)
    if header is None:
        return None
    length = HEADER.unpack(header)[3]
    if length > MAX_PAYLOAD:
        raise _reject_corrupt(f"declared payload of {length} bytes exceeds the {MAX_PAYLOAD} cap")
    body = _read_exact(stream.read, length, prefix=header)
    kind, payload, _ = decode_frame(header + body)
    return kind, payload


def recv_frame(sock: socket.socket) -> Optional[tuple[MessageType, object]]:
    """:func:`read_frame` over a connected socket (``recv`` semantics)."""

    class _SocketStream:
        def read(self, n: int) -> bytes:
            return sock.recv(n)

    return read_frame(_SocketStream())


def send_frame(sock: socket.socket, kind: Union[MessageType, int], payload: object = None) -> None:
    """Encode and send one frame over a connected socket."""
    sock.sendall(encode_frame(kind, payload))


def _read_exact(read, n: int, allow_clean_eof: bool = False, prefix: bytes = b""):
    """``n`` bytes from ``read()``, or a documented truncation error.

    ``prefix`` is what the current frame already consumed — only used to
    report *frame* progress accurately when the stream dies mid-payload.
    With ``allow_clean_eof``, end-of-stream before the first byte
    returns None (a peer closing between frames is not an error).
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = read(n - got)
        if not chunk:
            if not chunks and not prefix and allow_clean_eof:
                return None
            raise _reject_truncated(len(prefix) + got, len(prefix) + n)
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)
