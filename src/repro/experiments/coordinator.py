"""The ``Coordinator``: an elastic local worker fleet for a queue server.

``python -m repro.experiments serve --queue DIR --port N --min 0 --max 8``
runs one inside the server process; tests and soaks drive the class
directly.  Every ``scale_interval_s`` the coordinator asks the queue for
its depth and sizes the fleet to::

    target = clamp(pending + claimed, min_workers, max_workers)

— one worker per outstanding job, bounded.  Scaling **up** spawns
``python -m repro.experiments worker --addr HOST:PORT`` subprocesses
(heartbeating, so the server requeues their claims within seconds if
they die).  Scaling **down** is left to the workers themselves: each is
spawned with an idle timeout of a few scale intervals, so workers that
find the queue empty exit on their own and the coordinator merely reaps
them.  That keeps the shrink path race-free — the coordinator never
kills a worker that might hold a claim.

A reaped worker that exited *without* being idle (crashed, killed) gets
its claims requeued immediately via ``requeue_worker`` — the
coordinator spawned it, so it knows the death for certain and need not
wait for the missed-heartbeat sweep.
"""

from __future__ import annotations

import logging
import subprocess
import time
from typing import Optional

from repro.experiments.queue import WorkQueue
from repro.experiments.socket_queue import SocketQueue
from repro.experiments.worker import spawn_worker

__all__ = ["Coordinator"]

logger = logging.getLogger(__name__)


class Coordinator:
    """Autoscale local worker subprocesses against queue depth."""

    def __init__(
        self,
        addr: str,
        *,
        min_workers: int = 0,
        max_workers: int = 4,
        scale_interval_s: float = 1.0,
        poll_s: float = 0.05,
        heartbeat_s: float = 2.0,
        queue: Optional[WorkQueue] = None,
        name: str = "coord",
    ):
        if min_workers < 0 or max_workers < min_workers:
            raise ValueError(
                f"need 0 <= min_workers <= max_workers, got {min_workers}..{max_workers}"
            )
        self.addr = addr
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.scale_interval_s = scale_interval_s
        self.poll_s = poll_s
        self.heartbeat_s = heartbeat_s
        #: Idle workers exit on their own after this long; the fleet
        #: shrinks itself without the coordinator ever killing a worker
        #: that might hold a claim.
        self.idle_timeout_s = max(4 * scale_interval_s, 2.0)
        self.queue = queue if queue is not None else SocketQueue(addr)
        self.name = name
        self._workers: dict[str, subprocess.Popen] = {}
        self._spawned = 0
        #: Most workers ever alive at once (the soak test's acceptance
        #: criterion: the fleet really did scale out).
        self.peak_workers = 0

    # -- one scaling step -------------------------------------------------------------
    def scale_once(self) -> int:
        """Reap exits, spawn up to the target; returns the live count."""
        self._reap()
        counts = self.queue.counts()
        outstanding = counts.pending + counts.claimed
        target = max(self.min_workers, min(self.max_workers, outstanding))
        while len(self._workers) < target:
            worker_id = f"{self.name}-{self._spawned}"
            self._spawned += 1
            self._workers[worker_id] = spawn_worker(
                addr=self.addr,
                worker_id=worker_id,
                poll_s=self.poll_s,
                idle_timeout_s=self.idle_timeout_s,
                heartbeat_s=self.heartbeat_s,
            )
            logger.info(
                "coordinator scaled up to %d/%d workers (%d outstanding)",
                len(self._workers),
                target,
                outstanding,
            )
        self.peak_workers = max(self.peak_workers, len(self._workers))
        return len(self._workers)

    def _reap(self) -> None:
        for worker_id, process in list(self._workers.items()):
            code = process.poll()
            if code is None:
                continue
            del self._workers[worker_id]
            if code != 0:
                # A crash, not an idle exit: we *know* it died, so
                # requeue its claims now instead of waiting for the
                # missed-heartbeat sweep.
                logger.warning(
                    "worker %s exited with code %d; requeueing its claims",
                    worker_id,
                    code,
                )
                try:
                    self.queue.requeue_worker(worker_id)
                except Exception as error:
                    logger.warning(
                        "requeue for dead worker %s failed: %r",
                        worker_id,
                        error,
                    )

    # -- the loop ---------------------------------------------------------------------
    def run(
        self,
        *,
        until_drained: bool = False,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Scale every interval; with ``until_drained``, return once the
        queue is empty (no pending, no claimed) and the fleet has been
        reaped down to ``min_workers`` or fewer."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            self.scale_once()
            if until_drained:
                counts = self.queue.counts()
                if counts.pending == 0 and counts.claimed == 0:
                    self._reap()
                    return
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"queue not drained within {timeout_s}s: final counts {self.queue.counts()}"
                )
            time.sleep(self.scale_interval_s)

    def stop(self, *, kill: bool = False) -> None:
        """Reap everything; with ``kill``, terminate live workers too.

        Idle timeouts normally wind the fleet down on their own —
        ``kill`` is for tests and for ``serve`` shutting down.
        """
        self._reap()
        if kill:
            for process in self._workers.values():
                process.terminate()
            for process in self._workers.values():
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
            self._workers.clear()
        if isinstance(self.queue, SocketQueue):
            self.queue.close()
