"""Design-choice ablations called out in DESIGN.md.

These are not figures from the paper; they justify the modelling choices
of this reproduction:

* the effective-rate contention model — disabling the contention levers
  should make colocated performance unrealistically flat;
* the double-buffered GPU time queries (see
  :func:`repro.experiments.overhead.query_buffer_ablation`);
* the activity coupling between input generation and workload intensity —
  without it the Table 3 methodology comparison loses its signal.

The contention-free machine is declared through the ``no_contention``
entry of :data:`repro.experiments.jobs.MACHINE_SPECS`, so the ablation is
four plain host jobs and parallelizes like any other experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario

__all__ = ["contention_model_ablation", "contention_jobs",
           "contention_from_results"]


def contention_jobs(benchmark: str, instances: int,
                    config: ExperimentConfig) -> list[ExperimentJob]:
    """Single and loaded runs on the realistic and contention-free machines."""
    return [
        ExperimentJob(Scenario.single(benchmark, config, seed_offset=800)),
        ExperimentJob(Scenario.colocated(benchmark, instances, config,
                                         seed_offset=801)),
        ExperimentJob(Scenario.single(benchmark, config, seed_offset=802,
                                      machine="no_contention")),
        ExperimentJob(Scenario.colocated(benchmark, instances, config,
                                         seed_offset=803,
                                         machine="no_contention")),
    ]


def contention_from_results(results) -> dict[str, float]:
    single, loaded, flat_single, flat_loaded = results
    realistic_inflation = _mean_rtt(loaded) / max(_mean_rtt(single), 1e-9)
    flat_inflation = _mean_rtt(flat_loaded) / max(_mean_rtt(flat_single), 1e-9)
    return {
        "realistic_rtt_inflation": realistic_inflation,
        "contention_free_rtt_inflation": flat_inflation,
    }


def contention_model_ablation(benchmark: str = "D2", instances: int = 4,
                              config: Optional[ExperimentConfig] = None,
                              suite: Optional[ExperimentSuite] = None,
                              ) -> dict[str, float]:
    """Compare colocated RTT inflation with and without the contention model."""
    config = config or ExperimentConfig()
    results = run_jobs(contention_jobs(benchmark, instances, config), suite)
    return contention_from_results(results)


def _mean_rtt(result) -> float:
    reports = result.reports
    if not reports:
        return 0.0
    return sum(r.rtt.mean for r in reports) / len(reports)
