"""Design-choice ablations called out in DESIGN.md.

These are not figures from the paper; they justify the modelling choices
of this reproduction:

* the effective-rate contention model — disabling the contention levers
  should make colocated performance unrealistically flat;
* the double-buffered GPU time queries (see
  :func:`repro.experiments.overhead.query_buffer_ablation`);
* the activity coupling between input generation and workload intensity —
  without it the Table 3 methodology comparison loses its signal.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_colocated
from repro.hardware.cpu import CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.machine import MachineSpec
from repro.hardware.memory import MemorySpec
from repro.core.pictor import PictorConfig
from repro.server.host import CloudHost, HostConfig

__all__ = ["contention_model_ablation"]


def _no_contention_spec() -> MachineSpec:
    """A machine whose shared resources never push back.

    Plenty of cores, an enormous L3 with no pressure sensitivity, and a
    GPU that does not slow down when shared: colocation then costs almost
    nothing, which is exactly what the contention model is there to avoid.
    """
    return MachineSpec(
        cpu=CpuSpec(cores=64, frequency_ghz=3.6, l3_mb=2048.0),
        memory=MemorySpec(l3_mb=2048.0, pressure_sensitivity=0.0,
                          max_stall_factor=1.0),
        gpu=GpuSpec(sharing_slowdown_per_context=0.0,
                    l2_pressure_sensitivity=0.0, l2_miss_penalty=0.0,
                    pipeline_depth=16),
    )


def contention_model_ablation(benchmark: str = "D2", instances: int = 4,
                              config: Optional[ExperimentConfig] = None,
                              ) -> dict[str, float]:
    """Compare colocated RTT inflation with and without the contention model."""
    config = config or ExperimentConfig()

    # Realistic machine.
    single = run_colocated(benchmark, 1, config, seed_offset=800)
    loaded = run_colocated(benchmark, instances, config, seed_offset=801)
    realistic_inflation = _mean_rtt(loaded) / max(_mean_rtt(single), 1e-9)

    # Contention-free machine.
    flat_single = _run_on_spec(benchmark, 1, config, _no_contention_spec(), 802)
    flat_loaded = _run_on_spec(benchmark, instances, config, _no_contention_spec(), 803)
    flat_inflation = _mean_rtt(flat_loaded) / max(_mean_rtt(flat_single), 1e-9)

    return {
        "realistic_rtt_inflation": realistic_inflation,
        "contention_free_rtt_inflation": flat_inflation,
    }


def _run_on_spec(benchmark: str, instances: int, config: ExperimentConfig,
                 spec: MachineSpec, seed_offset: int):
    host = CloudHost(HostConfig(seed=config.seed + seed_offset, machine_spec=spec,
                                pictor=PictorConfig()))
    for _ in range(instances):
        host.add_instance(benchmark)
    return host.run(duration=config.duration_s, warmup=config.warmup_s)


def _mean_rtt(result) -> float:
    reports = result.reports
    if not reports:
        return 0.0
    return sum(r.rtt.mean for r in reports) / len(reports)
