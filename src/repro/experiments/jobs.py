"""Declarative experiment jobs: the unit of work of the execution subsystem.

An :class:`ExperimentJob` is now a thin wrapper around the canonical
:class:`~repro.scenarios.Scenario` value: ``(scenario, kind, duration)``.
The scenario says *what* runs (placements, machine, session variant,
network, seed policy); ``kind`` selects the executor routine and
``duration`` optionally overrides the measurement interval.  A job stays
a frozen, fully picklable value object, so it can be shipped to a worker
process, hashed into a cache key, and compared for deduplication.

:func:`execute_job` is the single entry point that turns a job into a
result.  It is a module-level function (required by
:class:`concurrent.futures.ProcessPoolExecutor`) and is deterministic:
the same job produces a bit-identical result whether executed serially,
in a worker process, or replayed from the on-disk cache.

The legacy keyword form ``ExperimentJob(benchmarks=..., config=...,
variant=JobVariant(...), seed_offset=...)`` is still accepted and builds
the equivalent scenario internally; new code should construct scenarios
directly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Optional

from repro.experiments.config import ExperimentConfig
# Submodule imports (not the repro.scenarios facade): this module loads
# while repro.scenarios may itself still be initializing.
from repro.scenarios.machines import MACHINE_SPECS, machine_spec
from repro.scenarios.scenario import (
    SCENARIO_SCHEMA_VERSION,
    Placement,
    Scenario,
    SeedPolicy,
)
from repro.scenarios.variants import SessionVariant
from repro.server.host import CloudHost, HostResult

__all__ = ["CACHE_SCHEMA_VERSION", "ExperimentJob", "JobVariant",
           "execute_job", "machine_spec", "MACHINE_SPECS"]

#: Bump when the cached result layout (or the scenario schema) changes.
#: Stored *inside* every cache entry so stale provenance is detected and
#: logged instead of silently recomputed (see ``executor.ResultCache``).
CACHE_SCHEMA_VERSION = SCENARIO_SCHEMA_VERSION

#: Job kinds understood by :func:`execute_job`.
JOB_KINDS = ("host", "accuracy", "inference", "train", "methodology")


@dataclass(frozen=True)
class JobVariant:
    """Deprecated: the pre-scenario bundle of testbed knobs.

    Kept so existing callers (and pickled jobs) keep working; it simply
    splits into the scenario's :class:`SessionVariant` plus the
    host-level ``containerized`` / ``machine`` options.  New code should
    use :func:`repro.scenarios.session_variant` and scenario fields.
    """

    containerized: bool = False
    measurement_enabled: bool = True
    double_buffered_queries: bool = True
    memoize_window_attributes: bool = False
    two_step_frame_copy: bool = False
    slow_motion: bool = False
    machine: str = "paper"

    def __post_init__(self) -> None:
        if self.machine not in MACHINE_SPECS:
            raise ValueError(f"unknown machine spec {self.machine!r}; "
                             f"known: {sorted(MACHINE_SPECS)}")

    def split(self) -> tuple[SessionVariant, bool, str]:
        """(session variant, containerized, machine) for a scenario."""
        session = SessionVariant(
            measurement_enabled=self.measurement_enabled,
            double_buffered_queries=self.double_buffered_queries,
            memoize_window_attributes=self.memoize_window_attributes,
            two_step_frame_copy=self.two_step_frame_copy,
            slow_motion=self.slow_motion,
        )
        return session, self.containerized, self.machine

    def session_config(self):
        return self.split()[0].session_config()

    def pictor_config(self):
        return self.split()[0].pictor_config()

    @staticmethod
    def optimized(keys=None) -> "JobVariant":
        """The variant with the selected Section-6 optimizations enabled."""
        session = SessionVariant.optimized(keys)
        return JobVariant(**asdict(session))


@dataclass(frozen=True)
class ExperimentJob:
    """One independent unit of experiment work: ``(scenario, kind, duration)``.

    ``kind`` selects the executor routine:

    ``host``
        Build the scenario's :class:`~repro.server.host.CloudHost`, run it
        for the measurement interval (``duration`` when given, else the
        scenario config's) and return the
        :class:`~repro.server.host.HostResult`.
    ``accuracy``
        Train the intelligent client for the scenario's single benchmark
        (the training seed is offset by the seed policy) and run the
        five-methodology Table-3 comparison, returning an
        :class:`~repro.experiments.accuracy.AccuracyRow`.
    ``inference``
        Train the intelligent client for the scenario's single benchmark
        and measure its CNN/LSTM inference times (one Figure-7 row, a dict).
    ``train``
        Train (or warm-load) the scenario's single benchmark's intelligent
        client into the content-addressed artefact registry
        (:mod:`repro.agents.artifacts`) and return a provenance summary
        dict.  The seed policy's offset is the training-seed offset.
    ``methodology``
        Run one of the five Table-3 methodologies standalone, returning a
        :class:`~repro.experiments.accuracy.MethodologyResult`.  The seed
        policy's offset names the methodology (0–4 = H/IC/DB/CH/SM — the
        fused path's fixed run offsets) and the placement's agent carries
        the artefact reference (``intelligent@K`` / ``deskbench@K``).
    """

    scenario: Scenario
    kind: str = "host"
    duration: Optional[float] = None

    def __init__(self, scenario: Optional[Scenario] = None, kind: str = "host",
                 duration: Optional[float] = None, *,
                 benchmarks=None, config: Optional[ExperimentConfig] = None,
                 variant: Optional[JobVariant] = None, seed_offset: int = 0):
        if scenario is None:
            if benchmarks is None or config is None:
                raise TypeError("pass a Scenario, or the legacy benchmarks= "
                                "and config= keywords")
            session, containerized, machine = (variant or JobVariant()).split()
            scenario = Scenario(
                placements=tuple(Placement(b) for b in benchmarks),
                config=config, variant=session, machine=machine,
                containerized=containerized,
                seed=SeedPolicy(offset=seed_offset))
        elif (benchmarks is not None or config is not None
              or variant is not None or seed_offset):
            raise TypeError("pass either a Scenario or the legacy keywords, "
                            "not both")
        object.__setattr__(self, "scenario", scenario)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "duration", duration)
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"known: {JOB_KINDS}")
        if self.kind != "host":
            if len(self.scenario.benchmarks) != 1:
                raise ValueError(f"{self.kind!r} jobs take exactly one "
                                 "benchmark")
            # The training executors only honor (benchmark, config, seed
            # offset); reject scenario knobs they would silently ignore —
            # otherwise the cache would stamp paper-machine bare-metal
            # results with the unhonored scenario.
            reference = Scenario(placements=self.scenario.placements,
                                 config=self.scenario.config,
                                 seed=SeedPolicy(
                                     offset=self.scenario.seed.offset))
            if self.scenario != reference:
                raise ValueError(
                    f"{self.kind!r} jobs support only default variant/"
                    "machine/network/host options and config-relative seeds")
            if self.kind == "methodology" and not 0 <= self.scenario.seed.offset <= 4:
                raise ValueError(
                    "'methodology' jobs encode the methodology in the seed "
                    "policy's offset (0..4 = H/IC/DB/CH/SM), got "
                    f"{self.scenario.seed.offset}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration override must be positive")

    # -- legacy views -----------------------------------------------------------------
    @property
    def benchmarks(self) -> tuple[str, ...]:
        return self.scenario.benchmarks

    @property
    def config(self) -> ExperimentConfig:
        return self.scenario.config

    @property
    def seed_offset(self) -> int:
        return self.scenario.seed.offset

    def effective_duration(self) -> float:
        return (self.scenario.config.duration_s if self.duration is None
                else self.duration)

    def cost_units(self) -> float:
        """The job's a-priori cost (see :meth:`Scenario.cost_units`).

        Units are comparable within one job kind; the executor's
        :class:`~repro.experiments.cost.CostModel` carries per-kind rates
        (``accuracy``/``inference`` jobs spend their time training, not
        simulating), calibrated from the runtimes stamped into cache
        entries.
        """
        return self.scenario.cost_units(self.duration)

    # -- identity ---------------------------------------------------------------------
    def key(self) -> str:
        """Content hash identifying this job's result in the cache."""
        payload = {
            "kind": self.kind,
            "duration": self.duration,
            "scenario": {key: value
                         for key, value in self.scenario.to_dict().items()
                         if key != "schema"},
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """A short human-readable label for progress output."""
        label = self.scenario.describe()
        if self.kind != "host":
            label = f"{self.kind} {label}"
        if self.duration is not None:
            label += f" dur={self.duration:g}s"
        return label


def build_job_host(job: ExperimentJob) -> CloudHost:
    """Construct the (not yet run) testbed host a ``host`` job describes."""
    return job.scenario.build_host()


def _execute_host(job: ExperimentJob) -> HostResult:
    host = job.scenario.build_host()
    return host.run(duration=job.effective_duration(),
                    warmup=job.scenario.config.warmup_s,
                    fast_forward=job.scenario.config.fast_forward)


def _execute_accuracy(job: ExperimentJob):
    # Imported lazily: accuracy builds its job lists from this module.
    from repro.experiments.accuracy import (
        methodology_accuracy,
        prepare_intelligent_client,
    )
    benchmark = job.benchmarks[0]
    client, recording = prepare_intelligent_client(
        benchmark, job.config, seed_offset=job.seed_offset)
    return methodology_accuracy(benchmark, job.config,
                                client=client, recording=recording)


def _execute_inference(job: ExperimentJob):
    from repro.experiments.accuracy import inference_time_row
    return inference_time_row(job.benchmarks[0], job.config,
                              index=job.seed_offset)


def _execute_train(job: ExperimentJob):
    from repro.experiments.accuracy import train_for_job
    return train_for_job(job.benchmarks[0], job.config,
                         seed_offset=job.seed_offset)


def _execute_methodology(job: ExperimentJob):
    from repro.experiments.accuracy import methodology_result_for_job
    return methodology_result_for_job(job)


_EXECUTORS = {
    "host": _execute_host,
    "accuracy": _execute_accuracy,
    "inference": _execute_inference,
    "train": _execute_train,
    "methodology": _execute_methodology,
}


def execute_job(job: ExperimentJob):
    """Run one job to completion and return its (picklable) result."""
    return _EXECUTORS[job.kind](job)
