"""Declarative experiment jobs: the unit of work of the execution subsystem.

Every testbed run in the repository — single-instance, colocated,
mixed-pair, containerized, optimization and machine-spec ablations, the
intelligent-client accuracy rows — is described by an
:class:`ExperimentJob`: *which* benchmark instances to place on a host,
*how* the host and sessions are configured (:class:`JobVariant`), and the
seed offset that decorrelates repeated runs.  A job is a frozen, fully
picklable value object, so it can be shipped to a worker process, hashed
into a cache key, and compared for deduplication.

:func:`execute_job` is the single entry point that turns a job into a
result.  It is a module-level function (required by
:class:`concurrent.futures.ProcessPoolExecutor`) and is deterministic:
the same job produces a bit-identical result whether executed serially,
in a worker process, or replayed from the on-disk cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.core.pictor import PictorConfig
from repro.experiments.config import ExperimentConfig
from repro.graphics.pipeline import PipelineConfig
from repro.hardware.cpu import CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.machine import MachineSpec
from repro.hardware.memory import MemorySpec
from repro.server.host import CloudHost, HostConfig, HostResult
from repro.server.session import SessionConfig

__all__ = ["ExperimentJob", "JobVariant", "execute_job", "machine_spec"]

#: Bump when the result layout changes so stale cache entries never load.
CACHE_SCHEMA_VERSION = 1

#: Job kinds understood by :func:`execute_job`.
JOB_KINDS = ("host", "accuracy", "inference")


def _no_contention_spec() -> MachineSpec:
    """A machine whose shared resources never push back.

    Plenty of cores, an enormous L3 with no pressure sensitivity, and a
    GPU that does not slow down when shared: colocation then costs almost
    nothing, which is exactly what the contention model is there to avoid
    (see :mod:`repro.experiments.ablations`).
    """
    return MachineSpec(
        cpu=CpuSpec(cores=64, frequency_ghz=3.6, l3_mb=2048.0),
        memory=MemorySpec(l3_mb=2048.0, pressure_sensitivity=0.0,
                          max_stall_factor=1.0),
        gpu=GpuSpec(sharing_slowdown_per_context=0.0,
                    l2_pressure_sensitivity=0.0, l2_miss_penalty=0.0,
                    pipeline_depth=16),
    )


#: Named machine specifications a job may request.  Names (not spec
#: objects) appear in the job so the cache key stays a small string.
MACHINE_SPECS = {
    "paper": MachineSpec.paper_server,
    "no_contention": _no_contention_spec,
}


def machine_spec(name: str) -> MachineSpec:
    try:
        return MACHINE_SPECS[name]()
    except KeyError:
        raise KeyError(f"unknown machine spec {name!r}; "
                       f"known: {sorted(MACHINE_SPECS)}") from None


@dataclass(frozen=True)
class JobVariant:
    """The declarative configuration knobs of one testbed run.

    The flags mirror :func:`repro.experiments.runner.make_session_config`
    plus the host-level switches, so every combination the figure
    generators use is expressible without closures (closures cannot cross
    a process boundary).
    """

    containerized: bool = False
    measurement_enabled: bool = True
    double_buffered_queries: bool = True
    memoize_window_attributes: bool = False
    two_step_frame_copy: bool = False
    slow_motion: bool = False
    machine: str = "paper"

    def __post_init__(self) -> None:
        if self.machine not in MACHINE_SPECS:
            raise ValueError(f"unknown machine spec {self.machine!r}; "
                             f"known: {sorted(MACHINE_SPECS)}")

    def session_config(self) -> SessionConfig:
        """The per-session configuration this variant describes."""
        pipeline = PipelineConfig(
            measurement_enabled=self.measurement_enabled,
            double_buffered_queries=self.double_buffered_queries,
            memoize_window_attributes=self.memoize_window_attributes,
            two_step_frame_copy=self.two_step_frame_copy,
        )
        return SessionConfig(pipeline=pipeline, slow_motion=self.slow_motion)

    def pictor_config(self) -> PictorConfig:
        return PictorConfig(
            measurement_enabled=self.measurement_enabled,
            double_buffered_queries=self.double_buffered_queries,
        )

    @staticmethod
    def optimized(keys=None) -> "JobVariant":
        """The variant with the selected Section-6 optimizations enabled.

        Keys and their configuration fields come from the optimization
        registry (:data:`repro.optimizations.OPTIMIZATIONS`), so the job
        path and the legacy ``apply_optimizations`` path cannot diverge.
        """
        from repro.optimizations import OPTIMIZATIONS
        known = {opt.key: opt.config_field for opt in OPTIMIZATIONS}
        keys = tuple(known) if keys is None else tuple(keys)
        unknown = set(keys) - set(known)
        if unknown:
            raise KeyError(f"unknown optimizations {sorted(unknown)}; "
                           f"known: {sorted(known)}")
        return JobVariant(**{known[key]: True for key in keys})


@dataclass(frozen=True)
class ExperimentJob:
    """One independent unit of experiment work.

    ``kind`` selects the executor routine:

    ``host``
        Build a :class:`~repro.server.host.CloudHost`, place one session
        per entry of ``benchmarks`` on it, run for the config's
        measurement interval and return the
        :class:`~repro.server.host.HostResult`.
    ``accuracy``
        Train the intelligent client for ``benchmarks[0]`` (the training
        seed is offset by ``seed_offset``) and run the five-methodology
        Table-3 comparison, returning an
        :class:`~repro.experiments.accuracy.AccuracyRow`.
    ``inference``
        Train the intelligent client for ``benchmarks[0]`` and measure
        its CNN/LSTM inference times (one Figure-7 row, a dict).
    """

    benchmarks: tuple[str, ...]
    config: ExperimentConfig
    variant: JobVariant = field(default_factory=JobVariant)
    seed_offset: int = 0
    kind: str = "host"

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"known: {JOB_KINDS}")
        if not self.benchmarks:
            raise ValueError("a job needs at least one benchmark")
        if self.kind != "host" and len(self.benchmarks) != 1:
            raise ValueError(f"{self.kind!r} jobs take exactly one benchmark")

    def key(self) -> str:
        """Content hash identifying this job's result in the cache."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": self.kind,
            "benchmarks": list(self.benchmarks),
            "config": asdict(self.config),
            "variant": asdict(self.variant),
            "seed_offset": self.seed_offset,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """A short human-readable label for progress output."""
        parts = ["+".join(self.benchmarks), f"seed+{self.seed_offset}"]
        if self.kind != "host":
            parts.insert(0, self.kind)
        if self.variant != JobVariant():
            changed = [name for name, value in asdict(self.variant).items()
                       if value != getattr(JobVariant(), name)]
            parts.append(",".join(changed))
        return " ".join(parts)


def build_job_host(job: ExperimentJob) -> CloudHost:
    """Construct the (not yet run) testbed host a ``host`` job describes."""
    variant = job.variant
    host_config = HostConfig(
        seed=job.config.seed + job.seed_offset,
        machine_spec=machine_spec(variant.machine),
        pictor=variant.pictor_config(),
        containerized=variant.containerized,
    )
    host = CloudHost(host_config)
    for benchmark in job.benchmarks:
        host.add_instance(benchmark, session_config=variant.session_config())
    return host


def _execute_host(job: ExperimentJob) -> HostResult:
    host = build_job_host(job)
    return host.run(duration=job.config.duration_s,
                    warmup=job.config.warmup_s)


def _execute_accuracy(job: ExperimentJob):
    # Imported lazily: accuracy builds its job lists from this module.
    from repro.experiments.accuracy import (
        methodology_accuracy,
        prepare_intelligent_client,
    )
    benchmark = job.benchmarks[0]
    client, recording = prepare_intelligent_client(
        benchmark, job.config, seed_offset=job.seed_offset)
    return methodology_accuracy(benchmark, job.config,
                                client=client, recording=recording)


def _execute_inference(job: ExperimentJob):
    from repro.experiments.accuracy import inference_time_row
    return inference_time_row(job.benchmarks[0], job.config,
                              index=job.seed_offset)


_EXECUTORS = {
    "host": _execute_host,
    "accuracy": _execute_accuracy,
    "inference": _execute_inference,
}


def execute_job(job: ExperimentJob):
    """Run one job to completion and return its (picklable) result."""
    return _EXECUTORS[job.kind](job)
