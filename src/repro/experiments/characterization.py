"""Figures 8 and 9: single-instance resource characterization.

Figure 8 reports per-benchmark CPU utilization (benchmark and VNC server
separately), GPU utilization, and the memory footprints discussed in
Section 5.1.1.  Figure 9 reports per-benchmark network bandwidth (frames
to the client) and PCIe bandwidth in both directions.

Both figures slice the *same* single-instance runs, so their job lists
are identical and a shared result cache executes each run only once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario

__all__ = ["BandwidthRow", "UtilizationRow", "characterization_jobs",
           "bandwidth", "bandwidth_from_results",
           "utilization", "utilization_from_results"]


@dataclass
class UtilizationRow:
    """One Figure-8 bar group."""

    benchmark: str
    app_cpu_percent: float
    vnc_cpu_percent: float
    gpu_percent: float
    cpu_memory_mb: float
    gpu_memory_mb: float


@dataclass
class BandwidthRow:
    """One Figure-9 bar group."""

    benchmark: str
    network_send_mbps: float
    network_receive_mbps: float
    pcie_to_gpu_gbps: float
    pcie_from_gpu_gbps: float


def characterization_jobs(benchmarks, config: Optional[ExperimentConfig] = None,
                          ) -> list[ExperimentJob]:
    """One single-instance scenario per benchmark (shared by Figures 8 and 9)."""
    config = config or ExperimentConfig()
    return [ExperimentJob(Scenario.single(benchmark, config, seed_offset=index))
            for index, benchmark in enumerate(benchmarks)]


def utilization_from_results(benchmarks, results) -> list[UtilizationRow]:
    rows = []
    for benchmark, result in zip(benchmarks, results):
        report = result.reports[0]
        rows.append(UtilizationRow(
            benchmark=benchmark,
            app_cpu_percent=report.cpu_utilization_cores * 100.0,
            vnc_cpu_percent=report.vnc_cpu_utilization_cores * 100.0,
            gpu_percent=report.gpu_utilization * 100.0,
            cpu_memory_mb=report.cpu_memory_mb,
            gpu_memory_mb=report.gpu_memory_mb,
        ))
    return rows


def bandwidth_from_results(benchmarks, results) -> list[BandwidthRow]:
    rows = []
    for benchmark, result in zip(benchmarks, results):
        report = result.reports[0]
        rows.append(BandwidthRow(
            benchmark=benchmark,
            network_send_mbps=report.network_send_mbps,
            network_receive_mbps=report.network_receive_mbps,
            pcie_to_gpu_gbps=report.pcie_to_gpu_gbps,
            pcie_from_gpu_gbps=report.pcie_from_gpu_gbps,
        ))
    return rows


def utilization(benchmarks=None, config: Optional[ExperimentConfig] = None,
                suite: Optional[ExperimentSuite] = None) -> list[UtilizationRow]:
    """Figure 8: CPU and GPU utilization for each benchmark, run alone."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    results = run_jobs(characterization_jobs(benchmarks, config), suite)
    return utilization_from_results(benchmarks, results)


def bandwidth(benchmarks=None, config: Optional[ExperimentConfig] = None,
              suite: Optional[ExperimentSuite] = None) -> list[BandwidthRow]:
    """Figure 9: network and PCIe bandwidth usage for each benchmark."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    results = run_jobs(characterization_jobs(benchmarks, config), suite)
    return bandwidth_from_results(benchmarks, results)
