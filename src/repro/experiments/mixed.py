"""Figures 18–19 and the Section 5.3 energy argument: mixed benchmark pairs.

Fifteen unordered pairs can be formed from the six benchmarks.  Figure 18
reports the client FPS of both members of each pair; Figure 19 zooms in
on Dota 2, reporting its performance loss and CPU/GPU cache-miss-rate
increases as a function of which benchmark shares the server — the
paper's illustration that application contentiousness varies widely and
correlates across the CPU and GPU cache hierarchies.  Section 5.3 also
notes that sharing one server saves at least ~37% energy compared with
running the two applications on two servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional

from repro.apps.registry import all_benchmarks
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.mixes import n_way_mixes
from repro.scenarios.scenario import Scenario

__all__ = ["ContentiousnessRow", "PairResult", "all_pairs",
           "pair_fps", "pair_fps_jobs", "pair_fps_from_results",
           "contentiousness", "contentiousness_jobs",
           "contentiousness_from_results",
           "pair_energy_saving", "pair_energy_jobs",
           "pair_energy_from_results",
           "n_way_jobs", "n_way_fps", "n_way_fps_from_results"]


#: The paper's QoS floor: every instance must hold at least this client FPS.
QOS_CLIENT_FPS = 25.0


def all_pairs(benchmarks=None) -> list[tuple[str, str]]:
    """Every unordered benchmark pair, in a stable order.

    Defaults to the full apps registry, so newly registered workloads
    join the pair sweep automatically; the paper's standard six-benchmark
    suite yields its fifteen pairs.
    """
    benchmarks = list(benchmarks if benchmarks is not None
                      else all_benchmarks())
    return list(combinations(benchmarks, 2))


@dataclass
class PairResult:
    """Client FPS (and supporting data) for one mixed pair."""

    pair: tuple[str, str]
    client_fps: dict[str, float] = field(default_factory=dict)
    server_fps: dict[str, float] = field(default_factory=dict)
    total_power_watts: float = 0.0

    @property
    def both_meet_qos(self) -> bool:
        """Whether both members stay above the QoS floor."""
        return all(fps >= QOS_CLIENT_FPS for fps in self.client_fps.values())


@dataclass
class ContentiousnessRow:
    """Figure 19: Dota 2's sensitivity to one co-runner."""

    target: str
    co_runner: str
    performance_loss_percent: float
    cpu_cache_miss_increase: float
    gpu_cache_miss_increase: Optional[float]


# -- Figure 18 ------------------------------------------------------------------------
def pair_fps_jobs(pairs, config: ExperimentConfig) -> list[ExperimentJob]:
    """One mixed-pair scenario per pair, as declarative jobs."""
    return [ExperimentJob(Scenario.mixed(pair, config,
                                         seed_offset=300 + index))
            for index, pair in enumerate(pairs)]


def pair_fps_from_results(pairs, results) -> list[PairResult]:
    rows = []
    for (left, right), run in zip(pairs, results):
        left_report, right_report = run.reports
        rows.append(PairResult(
            pair=(left, right),
            client_fps={left: left_report.client_fps,
                        right: right_report.client_fps},
            server_fps={left: left_report.server_fps,
                        right: right_report.server_fps},
            total_power_watts=run.average_power_watts,
        ))
    return rows


def pair_fps(config: Optional[ExperimentConfig] = None, pairs=None,
             suite: Optional[ExperimentSuite] = None) -> list[PairResult]:
    """Figure 18: client FPS for every mixed pair."""
    config = config or ExperimentConfig()
    pairs = pairs or all_pairs(config.benchmarks)
    results = run_jobs(pair_fps_jobs(pairs, config), suite)
    return pair_fps_from_results(pairs, results)


# -- Figure 19 ------------------------------------------------------------------------
def contentiousness_jobs(target: str, co_runners,
                         config: ExperimentConfig) -> list[ExperimentJob]:
    """The solo run (first) followed by one pair run per co-runner."""
    jobs = [ExperimentJob(Scenario.single(target, config, seed_offset=400))]
    jobs.extend(ExperimentJob(Scenario.mixed((target, co_runner), config,
                                             seed_offset=410 + index))
                for index, co_runner in enumerate(co_runners))
    return jobs


def contentiousness_from_results(target: str, co_runners,
                                 results) -> list[ContentiousnessRow]:
    solo_report = results[0].reports[0]
    solo_fps = solo_report.client_fps
    solo_l3 = solo_report.cpu_pmu.get("l3_miss_rate", 0.0)
    solo_gpu = solo_report.gpu_pmu.get("l2_miss_rate")

    rows = []
    for co_runner, run in zip(co_runners, results[1:]):
        target_report = run.reports[0]
        loss = 0.0
        if solo_fps > 0:
            loss = max(0.0, (solo_fps - target_report.client_fps) / solo_fps * 100.0)
        l3_increase = target_report.cpu_pmu.get("l3_miss_rate", 0.0) - solo_l3
        gpu_l2 = target_report.gpu_pmu.get("l2_miss_rate")
        gpu_increase = None
        if gpu_l2 is not None and solo_gpu is not None:
            gpu_increase = gpu_l2 - solo_gpu
        rows.append(ContentiousnessRow(
            target=target, co_runner=co_runner,
            performance_loss_percent=loss,
            cpu_cache_miss_increase=l3_increase,
            gpu_cache_miss_increase=gpu_increase,
        ))
    return rows


def contentiousness(target: str = "D2", config: Optional[ExperimentConfig] = None,
                    co_runners=None,
                    suite: Optional[ExperimentSuite] = None,
                    ) -> list[ContentiousnessRow]:
    """Figure 19: the target benchmark's sensitivity to each co-runner."""
    config = config or ExperimentConfig()
    co_runners = list(co_runners or [b for b in config.benchmarks if b != target])
    results = run_jobs(contentiousness_jobs(target, co_runners, config), suite)
    return contentiousness_from_results(target, co_runners, results)


# -- Section 5.3 energy argument ------------------------------------------------------
def pair_energy_jobs(pair: tuple[str, str],
                     config: ExperimentConfig) -> list[ExperimentJob]:
    """The shared run and the two solo runs of the energy comparison."""
    left, right = pair
    return [
        ExperimentJob(Scenario.mixed((left, right), config, seed_offset=500)),
        ExperimentJob(Scenario.single(left, config, seed_offset=501)),
        ExperimentJob(Scenario.single(right, config, seed_offset=502)),
    ]


def pair_energy_from_results(results) -> dict[str, float]:
    shared, solo_left, solo_right = results
    separate_power = solo_left.average_power_watts + solo_right.average_power_watts
    shared_power = shared.average_power_watts
    saving = 0.0
    if separate_power > 0:
        saving = (1.0 - shared_power / separate_power) * 100.0
    return {
        "shared_power_watts": shared_power,
        "separate_power_watts": separate_power,
        "energy_saving_percent": saving,
    }


def pair_energy_saving(pair: tuple[str, str],
                       config: Optional[ExperimentConfig] = None,
                       suite: Optional[ExperimentSuite] = None) -> dict[str, float]:
    """Energy comparison: the pair on one server vs. each app on its own server."""
    config = config or ExperimentConfig()
    return pair_energy_from_results(run_jobs(pair_energy_jobs(pair, config), suite))


# -- Deeper mixes: 3–4 mixed instances per server -------------------------------------
def n_way_jobs(scenarios) -> list[ExperimentJob]:
    """One job per N-way mix scenario (see :func:`repro.scenarios.n_way_mixes`)."""
    return [ExperimentJob(scenario) for scenario in scenarios]


def n_way_fps_from_results(scenarios, results) -> list[dict[str, object]]:
    """One row per mix: per-member client FPS floor/mean and the QoS verdict."""
    rows = []
    for scenario, run in zip(scenarios, results):
        fps = [report.client_fps for report in run.reports]
        rows.append({
            "mix": "+".join(scenario.benchmarks),
            "instances": len(run.reports),
            "min_client_fps": min(fps),
            "mean_client_fps": sum(fps) / len(fps),
            "all_meet_qos": all(f >= QOS_CLIENT_FPS for f in fps),
            "total_power_watts": run.average_power_watts,
        })
    return rows


def n_way_fps(config: Optional[ExperimentConfig] = None, sizes=(3, 4),
              suite: Optional[ExperimentSuite] = None) -> list[dict[str, object]]:
    """Client FPS for every 3- and 4-way mix of the configured benchmarks."""
    config = config or ExperimentConfig()
    scenarios = n_way_mixes(config, sizes=sizes)
    results = run_jobs(n_way_jobs(scenarios), suite)
    return n_way_fps_from_results(scenarios, results)
