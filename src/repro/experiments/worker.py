"""The standalone distributed-backend worker.

A worker is deliberately dumb: it polls a :class:`~repro.experiments.
queue.WorkQueue` for the highest-priority pending job, executes it with
the same :func:`~repro.experiments.jobs.execute_job` the in-process
backends use, writes the provenance-stamped result back through the
queue's SQLite :class:`~repro.experiments.store.ResultStore`
(rollback-journal mode plus a busy timeout coordinate any number of
workers writing the shared database, machines included — provided the
filesystem's advisory locks work), and repeats.  All scheduling
intelligence (cost-based
packing, crash recovery, lease management) lives with the submitter.

Run one per core, on any machine that can see the queue directory —
or, with the socket transport, any machine that can reach the server::

    PYTHONPATH=src python -m repro.experiments worker --queue DIR
    PYTHONPATH=src python -m repro.experiments worker --addr HOST:PORT

While executing a job the worker heartbeats the queue (a no-op on the
directory transport; on the socket transport the server refreshes the
claim's lease and tracks the worker as alive) so an in-flight job
outlives any fixed lease — and a worker that dies mid-job is noticed by
its *silence* within the heartbeat timeout, not after the full lease.
The heartbeat names exactly the keys the worker is executing, so a
claim it never acknowledged (orphaned by a retried CLAIM) still ages
out normally.

:func:`run_worker` is the loop behind that entrypoint;
:func:`spawn_worker` starts one as a local subprocess (what
``ExperimentSuite``'s distributed/socket backends and the
:class:`~repro.experiments.coordinator.Coordinator` do for you, and
what the crash-recovery tests kill).
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional

from repro.experiments.jobs import execute_job
from repro.experiments.queue import WorkQueue, default_worker_id

__all__ = ["run_worker", "spawn_worker"]

logger = logging.getLogger(__name__)

#: Default seconds between worker heartbeats (socket transport).
DEFAULT_HEARTBEAT_S = 2.0


class _HeartbeatPump:
    """A daemon thread beating ``queue.heartbeat(worker, keys)``.

    ``keys`` is always the exact set of claims the worker is executing
    right now — usually one, sometimes none (an empty list is still
    sent: it is a pure liveness ping that keeps the server from
    requeueing on the *next* claim's behalf).  Heartbeat failures are
    logged and swallowed; liveness is advisory, and the worker's real
    calls carry their own retry loop.
    """

    def __init__(self, queue: WorkQueue, worker_id: str, interval_s: float):
        self._queue = queue
        self._worker = worker_id
        self._interval_s = interval_s
        self._keys: list[str] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"heartbeat-{worker_id}")

    def start(self) -> "_HeartbeatPump":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval_s + 1.0)

    def set_keys(self, keys: list[str]) -> None:
        with self._lock:
            self._keys = list(keys)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            with self._lock:
                keys = list(self._keys)
            try:
                self._queue.heartbeat(self._worker, keys=keys)
            except Exception as error:
                logger.warning("heartbeat failed (will retry): %r", error)


def run_worker(queue: WorkQueue, *, worker_id: Optional[str] = None,
               poll_s: float = 0.2, max_jobs: Optional[int] = None,
               idle_timeout_s: Optional[float] = None,
               heartbeat_s: Optional[float] = None) -> int:
    """Pull and execute jobs from ``queue``; returns how many completed.

    Runs until ``max_jobs`` jobs have completed or the queue has stayed
    empty for ``idle_timeout_s`` seconds (forever when both are None —
    the spawning suite owns the process and terminates it on close).  A
    job that raises is recorded as a failure marker and the worker moves
    on; the submitter decides what a failure means.

    With ``heartbeat_s`` the worker pings the queue that often, naming
    the claim it is currently executing (see the module docstring).
    """
    worker = worker_id or default_worker_id()
    pump = (_HeartbeatPump(queue, worker, heartbeat_s).start()
            if heartbeat_s else None)
    # The queue's artefact store becomes this process's ambient one for
    # the life of the loop, so jobs that consume trained agents resolve
    # them from (and publish them to) the fleet-shared database instead
    # of retraining per worker.
    store = queue.artifact_store()
    bound_store = store is not None
    if bound_store:
        from repro.agents.artifacts import set_artifact_store
        previous_store = set_artifact_store(store)
    executed = 0
    idle_since = time.monotonic()
    try:
        while max_jobs is None or executed < max_jobs:
            claimed = queue.claim(worker)
            if claimed is None:
                if idle_timeout_s is not None \
                        and time.monotonic() - idle_since >= idle_timeout_s:
                    break
                time.sleep(poll_s)
                continue
            if pump is not None:
                pump.set_keys([claimed.key])
            try:
                started = time.perf_counter()
                result = execute_job(claimed.job)
                runtime_s = time.perf_counter() - started
            except Exception as error:
                queue.fail(claimed, error)
            else:
                queue.complete(claimed, result, runtime_s=runtime_s)
                executed += 1
            finally:
                if pump is not None:
                    pump.set_keys([])
            idle_since = time.monotonic()
    finally:
        if pump is not None:
            pump.stop()
        if bound_store:
            set_artifact_store(previous_store)
    return executed


def spawn_worker(queue_root: os.PathLike | str | None = None, *,
                 addr: Optional[str] = None, worker_id: str,
                 poll_s: float = 0.05,
                 idle_timeout_s: Optional[float] = None,
                 heartbeat_s: Optional[float] = None,
                 log_dir: os.PathLike | str | None = None
                 ) -> subprocess.Popen:
    """Start ``python -m repro.experiments worker`` as a subprocess.

    Give it a ``queue_root`` (directory transport) or an ``addr``
    (socket transport, ``host:port``) — exactly one.  The child inherits
    the current environment with this checkout's ``src`` prepended to
    ``PYTHONPATH`` (tests and suites don't export it), and its output
    goes to ``<log_dir>/<worker_id>.log`` — defaulting to the queue's
    ``workers/`` directory, or a temp directory for socket workers.
    """
    if (queue_root is None) == (addr is None):
        raise ValueError("spawn_worker needs exactly one of queue_root/addr")
    import repro

    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src_root) + (os.pathsep + existing
                                         if existing else "")
    command = [sys.executable, "-m", "repro.experiments", "worker",
               "--worker-id", worker_id, "--poll", str(poll_s)]
    if queue_root is not None:
        command += ["--queue", str(queue_root)]
    else:
        command += ["--addr", str(addr)]
    if idle_timeout_s is not None:
        command += ["--idle-timeout", str(idle_timeout_s)]
    if heartbeat_s is not None:
        command += ["--heartbeat", str(heartbeat_s)]
    if log_dir is None:
        log_dir = (Path(queue_root) / "workers" if queue_root is not None
                   else Path(tempfile.gettempdir()) / "pictor-workers")
    log_path = Path(log_dir) / f"{worker_id}.log"
    log_path.parent.mkdir(parents=True, exist_ok=True)
    with log_path.open("ab") as log:
        return subprocess.Popen(command, env=env, stdout=log, stderr=log)
