"""The standalone distributed-backend worker.

A worker is deliberately dumb: it polls a :class:`~repro.experiments.
queue.WorkQueue` for the highest-priority pending job, executes it with
the same :func:`~repro.experiments.jobs.execute_job` the in-process
backends use, writes the provenance-stamped result back through the
queue's SQLite :class:`~repro.experiments.store.ResultStore`
(rollback-journal mode plus a busy timeout coordinate any number of
workers writing the shared database, machines included — provided the
filesystem's advisory locks work), and repeats.  All scheduling
intelligence (cost-based
packing, crash recovery, lease management) lives with the submitter.

Run one per core, on any machine that can see the queue directory::

    PYTHONPATH=src python -m repro.experiments worker --queue DIR

:func:`run_worker` is the loop behind that entrypoint;
:func:`spawn_worker` starts one as a local subprocess (what
``ExperimentSuite``'s distributed backend does for you, and what the
crash-recovery tests kill).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

from repro.experiments.jobs import execute_job
from repro.experiments.queue import WorkQueue, default_worker_id

__all__ = ["run_worker", "spawn_worker"]


def run_worker(queue: WorkQueue, *, worker_id: Optional[str] = None,
               poll_s: float = 0.2, max_jobs: Optional[int] = None,
               idle_timeout_s: Optional[float] = None) -> int:
    """Pull and execute jobs from ``queue``; returns how many completed.

    Runs until ``max_jobs`` jobs have completed or the queue has stayed
    empty for ``idle_timeout_s`` seconds (forever when both are None —
    the spawning suite owns the process and terminates it on close).  A
    job that raises is recorded as a failure marker and the worker moves
    on; the submitter decides what a failure means.
    """
    worker = worker_id or default_worker_id()
    executed = 0
    idle_since = time.monotonic()
    while max_jobs is None or executed < max_jobs:
        claimed = queue.claim(worker)
        if claimed is None:
            if idle_timeout_s is not None \
                    and time.monotonic() - idle_since >= idle_timeout_s:
                break
            time.sleep(poll_s)
            continue
        try:
            started = time.perf_counter()
            result = execute_job(claimed.job)
            runtime_s = time.perf_counter() - started
        except Exception as error:
            queue.fail(claimed, error)
        else:
            queue.complete(claimed, result, runtime_s=runtime_s)
            executed += 1
        idle_since = time.monotonic()
    return executed


def spawn_worker(queue_root: os.PathLike | str, *, worker_id: str,
                 poll_s: float = 0.05,
                 idle_timeout_s: Optional[float] = None) -> subprocess.Popen:
    """Start ``python -m repro.experiments worker`` against ``queue_root``.

    The child inherits the current environment with this checkout's
    ``src`` prepended to ``PYTHONPATH`` (tests and suites don't export
    it), and its output goes to ``<queue>/workers/<worker_id>.log``.
    """
    import repro

    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src_root) + (os.pathsep + existing
                                         if existing else "")
    command = [sys.executable, "-m", "repro.experiments", "worker",
               "--queue", str(queue_root), "--worker-id", worker_id,
               "--poll", str(poll_s)]
    if idle_timeout_s is not None:
        command += ["--idle-timeout", str(idle_timeout_s)]
    log_path = Path(queue_root) / "workers" / f"{worker_id}.log"
    log_path.parent.mkdir(parents=True, exist_ok=True)
    with log_path.open("ab") as log:
        return subprocess.Popen(command, env=env, stdout=log, stderr=log)
