"""CLI for the experiment execution subsystem.

Run any figure of the paper (or the whole suite) with a chosen worker
count and an optional on-disk result cache::

    PYTHONPATH=src python -m repro.experiments --list
    PYTHONPATH=src python -m repro.experiments --figure fig10 --workers 4
    PYTHONPATH=src python -m repro.experiments --all --workers 8 \
        --cache-dir .pictor-cache --profile quick

Or run ad-hoc scenarios — any placement mix, machine, session variant and
network — straight from a JSON spec file, an inline JSON string, or an
``A+B+C`` mix shorthand::

    PYTHONPATH=src python -m repro.experiments scenario RE+ITP+D2 --profile smoke
    PYTHONPATH=src python -m repro.experiments scenario examples/scenarios/mix3.json
    PYTHONPATH=src python -m repro.experiments scenario \
        '{"placements": ["RE", "ITP", "D2"], "variant": "optimized"}'

Execution backends are selectable (``--backend serial|parallel|
distributed|socket``); the distributed backend submits jobs to a
shared-filesystem work queue (``--queue DIR``) drained by standalone
workers, and the socket backend talks to a TCP queue server instead, so
workers need only network reach::

    PYTHONPATH=src python -m repro.experiments worker --queue /shared/q &
    PYTHONPATH=src python -m repro.experiments scenario RE+ITP+D2 \
        --backend distributed --queue /shared/q --workers 2

    PYTHONPATH=src python -m repro.experiments serve --queue /srv/q \
        --port 7781 &
    PYTHONPATH=src python -m repro.experiments worker \
        --addr host:7781 &
    PYTHONPATH=src python -m repro.experiments scenario RE+ITP+D2 \
        --backend socket --addr host:7781

Results are deterministic: serial, parallel, distributed, and socket
runs print bit-identical tables, and a second run against the same
``--cache-dir`` replays without executing anything.

Everything a run stores lands in the SQLite result database
(``<cache-dir>/results.sqlite``); the ``results`` subcommand queries,
diffs and exports it — ``results diff`` on two runs (or two revisions)
is the figure-regression check CI performs::

    PYTHONPATH=src python -m repro.experiments results list \
        --store .pictor-cache --kind host
    PYTHONPATH=src python -m repro.experiments results show 53ab2f \
        --store .pictor-cache
    PYTHONPATH=src python -m repro.experiments results diff \
        .pictor-cache .pictor-cache-b
    PYTHONPATH=src python -m repro.experiments results diff \
        --store .pictor-cache deadbeef 53dad22 --tolerance 1e-9
    PYTHONPATH=src python -m repro.experiments results export \
        --store .pictor-cache --format csv -o results.csv
    PYTHONPATH=src python -m repro.experiments results migrate old-cache/
    PYTHONPATH=src python -m repro.experiments results gc \
        --store .pictor-cache --keep 2 --dry-run
    PYTHONPATH=src python -m repro.experiments results backfill \
        --store .pictor-cache

The ``agents`` subcommand manages the trained-agent artefact registry
the same database carries: train once, content-addressed, then every
intelligent-client job — any backend, any machine with store access —
resolves its agent from the store instead of retraining::

    PYTHONPATH=src python -m repro.experiments agents train \
        --store .pictor-cache --profile smoke
    PYTHONPATH=src python -m repro.experiments agents list \
        --store .pictor-cache
    PYTHONPATH=src python -m repro.experiments agents show 53ab2f \
        --store .pictor-cache
    PYTHONPATH=src python -m repro.experiments agents gc \
        --store .pictor-cache --keep 1

The ``fleet`` subcommand scales from single scenarios to sampled
populations: a JSON :class:`~repro.fleet.PopulationSpec` describes
distributions over the scenario registries, ``fleet run`` drains a
deterministic sample through any backend, and ``fleet report`` answers
per-cohort percentiles (p50/p95/p99 latency, FPS, power by network /
machine / variant / mix arity) with pure SQL over the store — plus
``--baseline REV`` deltas, the cross-revision perf ledger::

    PYTHONPATH=src python -m repro.experiments fleet sample \
        examples/fleet/smoke.json --n 50
    PYTHONPATH=src python -m repro.experiments fleet run \
        examples/fleet/smoke.json --n 50 --backend socket --workers 2 \
        --cache-dir .fleet-cache --profile smoke
    PYTHONPATH=src python -m repro.experiments fleet report \
        examples/fleet/smoke.json --n 50 --store .fleet-cache \
        --profile smoke --by network,variant --baseline deadbeef
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional

from repro.core.reporting import format_rows
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, current_git_rev
from repro.experiments.figures import FIGURES, figure_names, run_figure
from repro.experiments.jobs import CACHE_SCHEMA_VERSION, ExperimentJob
from repro.scenarios.scenario import Scenario

PROFILES = ("quick", "smoke", "standard", "paper")


def make_config(args) -> ExperimentConfig:
    if args.profile == "paper":
        config = ExperimentConfig.paper(seed=args.seed)
    elif args.profile == "standard":
        config = ExperimentConfig(seed=args.seed)
    elif args.profile == "smoke":
        config = ExperimentConfig.smoke(seed=args.seed)
    else:
        config = ExperimentConfig.quick(seed=args.seed)
    if args.benchmarks:
        config = config.with_benchmarks(args.benchmarks.split(","))
    if args.max_instances:
        config = replace(config, max_instances=args.max_instances)
    if args.duration:
        config = replace(config, duration_s=args.duration)
    if getattr(args, "fast_forward", False):
        config = replace(config, fast_forward=True)
    return config


def _add_execution_options(parser: argparse.ArgumentParser,
                           suppress_defaults: bool = False) -> None:
    # On a subparser the defaults are SUPPRESSed: argparse copies subparser
    # defaults over values the main parser already set, which would
    # silently discard flags given before the subcommand name.
    def default(value):
        return argparse.SUPPRESS if suppress_defaults else value

    parser.add_argument("--workers", type=int, default=default(1), metavar="N",
                        help="worker processes (1 = serial; default 1)")
    parser.add_argument("--cache-dir", default=default(None), metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--backend", choices=("serial", "parallel",
                                              "distributed", "socket"),
                        default=default(None),
                        help="execution backend (default: inferred — "
                             "socket with --addr, distributed with "
                             "--queue, parallel with --workers > 1, "
                             "else serial)")
    parser.add_argument("--queue", default=default(None), metavar="DIR",
                        help="work-queue directory for the distributed "
                             "backend (created on demand; default: a "
                             "private temporary queue)")
    parser.add_argument("--addr", default=default(None), metavar="HOST:PORT",
                        help="queue server address for the socket backend "
                             "(see the serve subcommand; default: the "
                             "socket backend starts its own in-process "
                             "server)")


def _add_config_options(parser: argparse.ArgumentParser,
                        suppress_defaults: bool = False) -> None:
    def default(value):
        return argparse.SUPPRESS if suppress_defaults else value

    parser.add_argument("--profile", choices=PROFILES, default=default("quick"),
                        help="measurement-interval preset (default: quick)")
    parser.add_argument("--seed", type=int, default=default(0))
    parser.add_argument("--benchmarks", default=default(None), metavar="A,B,...",
                        help="comma-separated benchmark short names")
    parser.add_argument("--max-instances", type=int, default=default(None),
                        metavar="N", help="colocation sweep upper bound")
    parser.add_argument("--duration", type=float, default=default(None),
                        metavar="S",
                        help="override the measurement interval (seconds)")
    parser.add_argument("--fast-forward", action="store_true",
                        default=default(False),
                        help="enable temporal upscaling (steady stretches "
                             "advance in macro jumps; results are "
                             "approximate — see experiments/README.md)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures through the parallel "
                    "experiment execution subsystem.")
    parser.add_argument("--figure", action="append", default=[],
                        metavar="NAME",
                        help="figure to run (repeatable); see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every figure in the registry")
    parser.add_argument("--list", action="store_true", dest="list_figures",
                        help="list the available figures and exit")
    _add_execution_options(parser)
    _add_config_options(parser)

    subcommands = parser.add_subparsers(dest="command", metavar="subcommand")
    scenario = subcommands.add_parser(
        "scenario",
        help="run declarative scenarios from JSON specs or A+B+C shorthands",
        description="Run one or more scenarios given as JSON spec files, "
                    "inline JSON (an object or a list of objects), or "
                    "A+B+C benchmark-mix shorthands.")
    scenario.add_argument("spec", nargs="+",
                          help="spec file path, inline JSON, or A+B+C mix")
    _add_execution_options(scenario, suppress_defaults=True)
    _add_config_options(scenario, suppress_defaults=True)

    trace = subcommands.add_parser(
        "trace",
        help="check (default) or re-record the golden kernel traces",
        description="Re-run every registered golden scenario under the "
                    "trace recorder and compare byte-for-byte against the "
                    "committed files in tests/golden/.  Without --update "
                    "this only checks (exit 1 on any mismatch) so CI can "
                    "never rewrite goldens silently; pass --update after "
                    "an intentional semantic change to re-record.")
    trace.add_argument("--update", action="store_true",
                       help="re-record and overwrite the golden files "
                            "(explicit opt-in)")
    trace.add_argument("--golden-dir", default=None, metavar="DIR",
                       help="override the golden directory (default: "
                            "tests/golden)")
    trace.add_argument("--heap", default="tuple",
                       choices=("tuple", "array", "both"),
                       help="kernel heap implementation to check against "
                            "the goldens; 'both' checks each in turn "
                            "(check mode only — updates always record "
                            "with the default heap)")
    trace.add_argument("--list", action="store_true", dest="list_goldens",
                       help="list the registered golden scenarios and exit")

    results = subcommands.add_parser(
        "results",
        help="query, diff and export the SQLite result database",
        description="Query the result store a suite run filled "
                    "(--cache-dir DIR stores rows in DIR/results.sqlite), "
                    "diff two result sets or two git revisions metric by "
                    "metric, export rows as JSON/CSV, or migrate a legacy "
                    "pickle cache directory.")
    results_sub = results.add_subparsers(dest="results_command",
                                         metavar="action", required=True)

    def add_store(sub):
        sub.add_argument("--store", default=None, metavar="PATH",
                         help="result store: a cache directory or a "
                              ".sqlite file")

    def add_filters(sub):
        sub.add_argument("--kind", default=None,
                         help="only rows of this job kind")
        sub.add_argument("--scenario-hash", default=None, metavar="HASH",
                         help="only rows whose scenario hash starts with HASH")
        sub.add_argument("--git-rev", default=None, metavar="REV",
                         help="only rows written at this revision (prefix)")

    results_list = results_sub.add_parser(
        "list", help="list stored result rows (provenance only)",
        description="List the provenance columns of stored rows — no "
                    "result payload is unpickled.  --figure restricts the "
                    "listing to the keys a figure's job list produces "
                    "under the given --profile/--seed/... configuration.")
    add_store(results_list)
    add_filters(results_list)
    results_list.add_argument("--figure", default=None, metavar="NAME",
                              help="only rows belonging to this figure's "
                                   "job list (see --list)")
    results_list.add_argument("--limit", type=int, default=None, metavar="N",
                              help="show at most N rows (newest first)")
    results_list.add_argument("--offset", type=int, default=0, metavar="N",
                              help="skip the first N rows (page through "
                                   "large stores with --limit)")
    _add_config_options(results_list, suppress_defaults=True)

    results_show = results_sub.add_parser(
        "show", help="show one row's full provenance and result",
        description="Print one stored row — provenance stamps plus the "
                    "result payload's plain-data form — as JSON.")
    results_show.add_argument("key", help="result key (a unique prefix is "
                                          "enough)")
    add_store(results_show)

    results_diff = results_sub.add_parser(
        "diff", help="compare two result sets (or revisions) per metric",
        description="Compare result sets A and B metric by metric.  A and "
                    "B are result store paths (cache directories or "
                    ".sqlite files), or — with --store — git revisions "
                    "(prefixes) within one store.  Exits 1 when any key "
                    "or metric differs beyond the tolerance, so CI can "
                    "assert that two runs of the same scenarios agree.")
    results_diff.add_argument("a", help="result store path, or git rev "
                                        "with --store")
    results_diff.add_argument("b", help="result store path, or git rev "
                                        "with --store")
    add_store(results_diff)
    results_diff.add_argument("--tolerance", type=float, default=0.0,
                              metavar="T",
                              help="relative tolerance per metric "
                                   "(default 0: bit-identical)")
    results_diff.add_argument("--tolerances", default=None, metavar="FILE",
                              help="per-metric tolerance table (a JSON "
                                   "object of metric-name pattern -> "
                                   "relative tolerance, '*' wildcards, "
                                   "first match wins, 'default' key as "
                                   "fallback); supersedes --tolerance")
    results_diff.add_argument("--ignore-fast-forward", action="store_true",
                              help="re-key both sides as if fast-forward "
                                   "were disabled, so an exact run and "
                                   "its temporally upscaled twin match "
                                   "up for envelope comparison")
    results_diff.add_argument("--report", default=None, metavar="FILE",
                              help="also write the full diff report as "
                                   "JSON to FILE")
    results_diff.add_argument("--max-deltas", type=int, default=20,
                              metavar="N",
                              help="print at most N metric deltas "
                                   "(default 20)")

    results_export = results_sub.add_parser(
        "export", help="export rows (provenance + metrics) as JSON or CSV",
        description="Export stored rows with their provenance stamps and "
                    "the flattened numeric metrics of each result payload.")
    add_store(results_export)
    add_filters(results_export)
    results_export.add_argument("--format", choices=("json", "csv"),
                                default="json", dest="export_format",
                                help="output format (default: json)")
    results_export.add_argument("-o", "--output", default=None, metavar="FILE",
                                help="write to FILE (default: stdout)")

    results_migrate = results_sub.add_parser(
        "migrate", help="migrate a legacy pickle cache into the store",
        description="One-shot import of a pickle-directory cache's "
                    "entries into a result database (idempotent: existing "
                    "rows are skipped, pickle files are left in place).  "
                    "Without --store the database is created inside the "
                    "source directory itself.")
    results_migrate.add_argument("source", metavar="DIR",
                                 help="legacy pickle cache directory")
    add_store(results_migrate)

    results_gc = results_sub.add_parser(
        "gc", help="prune rows superseded by newer revisions",
        description="Drop result rows (and their indexed metrics) that "
                    "newer revisions of the same key supersede, keeping "
                    "the newest --keep revisions per key.  Replays only "
                    "ever read the newest row, so older revisions are "
                    "pure ledger history — this bounds a long-lived "
                    "store's growth explicitly.  Every dropped pair is "
                    "logged; --dry-run reports without deleting.")
    add_store(results_gc)
    results_gc.add_argument("--keep", type=int, default=1, metavar="N",
                            help="revisions to keep per key, newest first "
                                 "(default 1)")
    results_gc.add_argument("--dry-run", action="store_true",
                            help="report what would be dropped; delete "
                                 "nothing")
    results_gc.add_argument("--no-vacuum", action="store_true",
                            help="skip the VACUUM that reclaims file "
                                 "space after deleting")

    results_backfill = results_sub.add_parser(
        "backfill", help="index flattened metrics for pre-existing rows",
        description="One-shot backfill of the indexed metrics table: "
                    "every result row without metrics rows (written "
                    "before the table existed) is unpickled once and its "
                    "numeric metric leaves indexed, after which fleet "
                    "reports over it are pure SQL.  Idempotent.")
    add_store(results_backfill)

    fleet = subcommands.add_parser(
        "fleet",
        help="sample scenario populations, drain them, report per cohort",
        description="Fleet-scale sweeps: SPEC is a population spec — a "
                    "JSON file path or inline JSON — describing "
                    "distributions over benchmarks, mix sizes, instance "
                    "counts, networks, machines and session variants.  "
                    "Sampling is deterministic and streamable: the same "
                    "spec, --n and --sample-seed yield byte-identical "
                    "scenario sequences on every machine, so a report "
                    "can rebuild the population a run drained without "
                    "any side channel.")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", metavar="action",
                                     required=True)

    def add_population(sub):
        sub.add_argument("spec", metavar="SPEC",
                         help="population spec: a JSON file path or "
                              "inline JSON")
        sub.add_argument("--n", type=int, default=100, metavar="N",
                         help="population size to sample (default 100)")
        sub.add_argument("--sample-seed", type=int, default=0, metavar="S",
                         help="population sampling seed — independent of "
                              "the config --seed (default 0)")

    fleet_sample = fleet_sub.add_parser(
        "sample", help="preview a sampled population without executing",
        description="List the scenarios (index, hash, description) a "
                    "sample draws, plus the population digest — one "
                    "SHA-256 over the scenario hash sequence that two "
                    "machines can compare to prove they sampled "
                    "identical populations.")
    add_population(fleet_sample)
    fleet_sample.add_argument("--show", type=int, default=None, metavar="N",
                              help="list at most N scenarios (the digest "
                                   "still covers all of them)")
    _add_config_options(fleet_sample, suppress_defaults=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="drain a sampled population through the suite",
        description="Sample --n scenarios and drain them through the "
                    "chosen backend into --cache-dir's result store "
                    "(required: the store is the fleet's ledger and what "
                    "fleet report reads).  Interrupted runs resume for "
                    "free — finished jobs replay from the store.")
    add_population(fleet_run)
    _add_execution_options(fleet_run, suppress_defaults=True)
    _add_config_options(fleet_run, suppress_defaults=True)

    fleet_report = fleet_sub.add_parser(
        "report", help="per-cohort percentiles from the store (pure SQL)",
        description="Aggregate the population's stored results into "
                    "per-cohort p50/p95/p99 tables — by network, "
                    "machine, session variant and mix arity — reading "
                    "only the indexed metrics table and provenance "
                    "columns (no result payload is unpickled).  Exits 1 "
                    "when no stored row covers the population.")
    add_population(fleet_report)
    fleet_report.add_argument("--store", default=None, metavar="PATH",
                              help="result store: the run's --cache-dir "
                                   "or a .sqlite file")
    fleet_report.add_argument("--by", default=None, metavar="DIM,...",
                              help="cohort dimensions, comma-separated "
                                   "(default: network,machine,variant,"
                                   "arity; also: instances)")
    fleet_report.add_argument("--metric", action="append", default=[],
                              metavar="LABEL=PATTERN",
                              help="metric selector (repeatable): a glob "
                                   "over flattened metric names "
                                   "('reports[*].rtt.mean') or @column "
                                   "for a provenance column "
                                   "('@runtime_s'); default: rtt_s, "
                                   "client_fps, power_w, runtime_s")
    fleet_report.add_argument("--git-rev", default=None, metavar="REV",
                              help="pin to rows written at this revision "
                                   "(prefix) instead of the newest row "
                                   "per key")
    fleet_report.add_argument("--baseline", default=None, metavar="REV",
                              help="also print p50/p99 deltas against "
                                   "this revision (prefix) — the "
                                   "cross-revision perf ledger")
    fleet_report.add_argument("--report", default=None, metavar="FILE",
                              help="write the full report as JSON to "
                                   "FILE (deterministic: byte-identical "
                                   "across replays of the same store)")
    _add_config_options(fleet_report, suppress_defaults=True)

    agents = subcommands.add_parser(
        "agents",
        help="train, list, inspect and prune stored agent artifacts",
        description="Manage the trained-agent artefact registry: the "
                    "artifacts table a --cache-dir's result database "
                    "carries.  `agents train` trains one artefact per "
                    "configured benchmark and stores it content-addressed "
                    "(idempotent: an existing hash replays from the "
                    "store); intelligent-client jobs then resolve their "
                    "agents from the same store instead of retraining.")
    agents_sub = agents.add_subparsers(dest="agents_command",
                                       metavar="action", required=True)

    def add_agent_store(sub):
        sub.add_argument("--store", default=None, metavar="PATH",
                         help="result store holding the artifacts table "
                              "(a cache directory or a .sqlite file)")

    agents_train = agents_sub.add_parser(
        "train", help="train and store one artefact per benchmark",
        description="Train the intelligent-client artefact of every "
                    "configured benchmark (seed offset = the benchmark's "
                    "position, matching the split accuracy pipeline) and "
                    "store it under its content hash.  Already-stored "
                    "hashes are not retrained.")
    add_agent_store(agents_train)
    _add_config_options(agents_train, suppress_defaults=True)

    agents_list = agents_sub.add_parser(
        "list", help="list stored artefacts (provenance only)",
        description="List stored artefact rows, newest first — no "
                    "payload is unpickled.")
    add_agent_store(agents_list)
    agents_list.add_argument("--benchmark", default=None, metavar="NAME",
                             help="only artefacts trained on this benchmark")

    agents_show = agents_sub.add_parser(
        "show", help="show one artefact's provenance and training spec",
        description="Print one stored artefact row — provenance stamps "
                    "plus the full training spec — as JSON.")
    agents_show.add_argument("hash", help="artefact content hash (a unique "
                                          "prefix is enough)")
    add_agent_store(agents_show)

    agents_gc = agents_sub.add_parser(
        "gc", help="prune old artefacts per (kind, benchmark)",
        description="Drop all but the newest --keep artefacts of each "
                    "(kind, benchmark) group.  Artefact payloads are the "
                    "largest rows a store carries; this bounds a "
                    "long-lived store's growth explicitly.  Every dropped "
                    "hash is logged; --dry-run reports without deleting.")
    add_agent_store(agents_gc)
    agents_gc.add_argument("--keep", type=int, default=1, metavar="N",
                           help="artefacts to keep per (kind, benchmark), "
                                "newest first (default 1)")
    agents_gc.add_argument("--dry-run", action="store_true",
                           help="report what would be dropped; delete "
                                "nothing")
    agents_gc.add_argument("--no-vacuum", action="store_true",
                           help="skip the VACUUM that reclaims file "
                                "space after deleting")

    worker = subcommands.add_parser(
        "worker",
        help="run a standalone worker against a work queue or queue server",
        description="Poll a work queue for pending experiment jobs, "
                    "execute them, and write provenance-stamped results "
                    "back through the queue.  Give the worker either a "
                    "--queue directory (shared-filesystem transport; one "
                    "per core on any machine that can see it) or the "
                    "--addr of a queue server (TCP transport; one per "
                    "core on any machine that can reach it).")
    transport = worker.add_mutually_exclusive_group(required=True)
    transport.add_argument("--queue", metavar="DIR",
                           help="work-queue directory (created on demand)")
    transport.add_argument("--addr", metavar="HOST:PORT",
                           help="queue server address (see the serve "
                                "subcommand)")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="worker identity used in claims "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="idle poll interval in seconds (default 0.2)")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after completing N jobs (default: no limit)")
    worker.add_argument("--idle-timeout", type=float, default=None,
                        metavar="S",
                        help="exit after the queue stays empty this long "
                             "(default: poll forever)")
    worker.add_argument("--heartbeat", type=float, default=None, metavar="S",
                        help="heartbeat interval in seconds (default: 2 "
                             "with --addr, off with --queue)")

    serve = subcommands.add_parser(
        "serve",
        help="serve a work-queue directory over TCP to socket workers",
        description="Run the queue server: a TCP front-end over a "
                    "work-queue directory, speaking the framed protocol "
                    "socket workers and the socket backend use.  Tracks "
                    "worker heartbeats (a silent worker's claims requeue "
                    "within --heartbeat-timeout) and sweeps stale leases; "
                    "with --max > 0 it also autoscales local worker "
                    "processes against queue depth.")
    serve.add_argument("--queue", required=True, metavar="DIR",
                       help="work-queue directory to serve (created on "
                            "demand)")
    serve.add_argument("--host", default="0.0.0.0", metavar="HOST",
                       help="interface to bind (default: all interfaces)")
    serve.add_argument("--port", type=int, default=7781, metavar="N",
                       help="TCP port to bind (default 7781; 0 = any free "
                            "port)")
    serve.add_argument("--lease", type=float, default=300.0, metavar="S",
                       help="claim lease in seconds for workers that do "
                            "not heartbeat (default 300)")
    serve.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       metavar="S",
                       help="requeue a worker's claims after this much "
                            "heartbeat silence (default 15)")
    serve.add_argument("--sweep-interval", type=float, default=1.0,
                       metavar="S",
                       help="liveness/lease sweep interval (default 1)")
    serve.add_argument("--min", type=int, default=0, dest="min_workers",
                       metavar="N",
                       help="minimum local workers to keep (default 0)")
    serve.add_argument("--max", type=int, default=0, dest="max_workers",
                       metavar="N",
                       help="autoscale up to N local workers against "
                            "queue depth (default 0: serve only)")
    serve.add_argument("--scale-interval", type=float, default=1.0,
                       metavar="S",
                       help="autoscaler decision interval (default 1)")
    return parser


def load_scenarios(spec: str, config: ExperimentConfig) -> list[Scenario]:
    """Interpret one CLI scenario spec (file / inline JSON / mix shorthand).

    A spec without its own ``config`` section inherits ``config`` (the
    CLI profile), so its content hash reflects what actually runs.
    """
    stripped = spec.strip()
    if stripped.startswith(("{", "[")):
        data = json.loads(stripped)
    elif Path(spec).exists():
        data = json.loads(Path(spec).read_text())
    elif "+" in spec:
        return [Scenario.mixed(spec.split("+"), config=config)]
    else:
        raise ValueError(
            f"cannot interpret scenario spec {spec!r}: not an existing file, "
            f"inline JSON, or an A+B+C benchmark mix")
    if isinstance(data, dict):
        data = [data]
    return [Scenario.from_dict(entry, config=config) for entry in data]


def _run_scenarios(args) -> int:
    try:
        config = make_config(args)
        scenarios = []
        for spec in args.spec:
            scenarios.extend(load_scenarios(spec, config))
        suite = ExperimentSuite(workers=args.workers, cache_dir=args.cache_dir,
                                backend=args.backend, queue_dir=args.queue,
                                queue_addr=args.addr)
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    with suite:
        results = suite.run([ExperimentJob(scenario) for scenario in scenarios])
        stats = suite.stats
    elapsed = time.perf_counter() - started

    for scenario, result in zip(scenarios, results):
        rows = [{"instance": index, "benchmark": report.benchmark,
                 "server_fps": report.server_fps,
                 "client_fps": report.client_fps,
                 "rtt_ms": report.rtt.mean * 1e3}
                for index, report in enumerate(result.reports)]
        print(format_rows(
            rows, title=f"scenario {scenario.describe()} "
                        f"[{scenario.short_hash()}]"))
        print(f"total power: {result.average_power_watts:.2f} W, "
              f"energy: {result.energy_joules:.1f} J")
        print()
    print(f"provenance: schema v{CACHE_SCHEMA_VERSION}, "
          f"git {current_git_rev()[:12]}")
    # Timing is nondeterministic, so it goes to stderr: stdout stays
    # bit-identical across serial / parallel / cache-replay runs.
    print(f"{len(scenarios)} scenario(s) in {elapsed:.1f}s — "
          f"{stats.submitted} jobs submitted, {stats.executed} executed, "
          f"{stats.deduplicated} deduplicated, {stats.cache_hits} cache hits "
          f"({args.workers} worker(s))", file=sys.stderr)
    return 0


def _run_trace(args) -> int:
    from repro.experiments.goldens import (
        check_goldens,
        golden_registry,
        update_goldens,
    )
    golden_dir = Path(args.golden_dir) if args.golden_dir else None

    if args.list_goldens:
        rows = [{"golden": name,
                 "scenario": spec.scenario.describe(),
                 "hash": spec.scenario.short_hash(),
                 "duration_s": spec.duration}
                for name, spec in golden_registry().items()]
        print(format_rows(rows, title="Registered golden traces"))
        return 0

    if args.update:
        results = update_goldens(golden_dir)
        for name, status in sorted(results.items()):
            print(f"{name}: {status}")
        return 0

    heaps = ("tuple", "array") if args.heap == "both" else (args.heap,)
    failed = False
    for heap in heaps:
        results = check_goldens(golden_dir, heap=heap)
        for name, status in sorted(results.items()):
            print(f"{name} [{heap}]: {status}")
            if status != "ok":
                failed = True
    if failed:
        print("golden traces diverged; if the change is an intentional "
              "semantic change, re-record with "
              "`python -m repro.experiments trace --update`",
              file=sys.stderr)
        return 1
    return 0


def _scenario_label(scenario: dict) -> str:
    """A short ``RE+ITPx2`` style label from a stored scenario dict."""
    names = []
    for placement in scenario.get("placements", ()):
        if isinstance(placement, str):
            names.append(placement)
            continue
        label = str(placement.get("benchmark", "?"))
        if placement.get("count", 1) > 1:
            label += f"x{placement['count']}"
        if placement.get("agent", "human") != "human":
            label += f"({placement['agent']})"
        names.append(label)
    return "+".join(names) or "-"


def _plain_result(result):
    """A JSON-friendly form of a stored result payload."""
    import dataclasses
    if hasattr(result, "as_dict"):
        return result.as_dict()
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    return result


def _open_existing_store(path: str):
    """Open a store that already exists — read-only commands must never
    conjure an empty database out of a typo'd path (a diff against an
    accidentally fresh store would pass vacuously)."""
    from repro.experiments.store import RESULT_DB_FILENAME, ResultStore
    given = Path(path)
    db = given if given.suffix in (".sqlite", ".db") \
        else given / RESULT_DB_FILENAME
    if not db.exists() and not (given.is_dir()
                                and any(given.glob("*.pkl"))):
        raise ValueError(f"no result database at {db} (and no legacy "
                         "*.pkl entries to migrate); a suite run with "
                         "--cache-dir creates one")
    return ResultStore(path)


def _require_store(args):
    if args.store is None:
        raise ValueError("pass --store PATH (the run's --cache-dir, or a "
                         ".sqlite file)")
    return _open_existing_store(args.store)


def _resolve_result_set(token: str, store_path: Optional[str]):
    """(key → entry, label) for one ``results diff`` operand: a result
    store path, or — with ``--store`` — a git revision prefix."""
    path = Path(token)
    if (path.suffix in (".sqlite", ".db") and path.exists()) or path.is_dir():
        return _open_existing_store(token).result_set(), str(token)
    if store_path is None:
        raise ValueError(
            f"{token!r} is not a result store path; to compare git "
            "revisions, name the database with --store")
    return (_open_existing_store(store_path).result_set(git_rev=token),
            f"{token}@{store_path}")


def _results_list(args) -> int:
    store = _require_store(args)
    keys = None
    if args.figure is not None:
        if args.figure not in FIGURES:
            raise ValueError(f"unknown figure {args.figure!r}; known: "
                             f"{', '.join(figure_names())}")
        config = make_config(args)
        keys = {job.key() for job in FIGURES[args.figure].build_jobs(config)}
    rows = store.rows(kind=args.kind, scenario_hash=args.scenario_hash,
                      git_rev=args.git_rev, keys=keys)
    total = len(rows)
    offset = args.offset or 0
    if offset < 0:
        raise ValueError("--offset must be non-negative")
    rows = rows[offset:]
    if args.limit is not None:
        rows = rows[:args.limit]
    display = [{
        "key": row["key"][:12],
        "kind": row["kind"],
        "scenario": _scenario_label(row["scenario"]),
        "scenario_hash": (row["scenario_hash"] or "")[:12],
        "git_rev": (row["git_rev"] or "")[:12],
        "runtime_s": (None if row["runtime_s"] is None
                      else round(row["runtime_s"], 3)),
        "cost_units": row["cost_units"],
    } for row in rows]
    showing = ""
    if offset or len(rows) < total:
        showing = (f" (showing {len(rows)} from offset {offset})" if offset
                   else f" (showing {len(rows)})")
    title = f"{total} result row(s) in {store.db_path}{showing}"
    if display:
        print(format_rows(display, title=title))
    else:
        print(title)
    return 0


def _results_show(args) -> int:
    store = _require_store(args)
    keys = sorted({row["key"] for row in store.rows()
                   if row["key"].startswith(args.key)})
    if not keys:
        raise ValueError(f"no stored result key starts with {args.key!r}")
    if len(keys) > 1:
        raise ValueError(f"key prefix {args.key!r} is ambiguous: "
                         + ", ".join(key[:12] for key in keys))
    entry = store.get_entry(keys[0])
    if entry is None:
        print(f"error: entry {keys[0][:12]} failed validation (see log)",
              file=sys.stderr)
        return 1
    payload = {name: value for name, value in entry.items()
               if name != "result"}
    payload["result"] = _plain_result(entry.get("result"))
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return 0


def _results_diff(args) -> int:
    from repro.experiments.store import (
        ToleranceTable,
        diff_result_sets,
        rekey_ignoring_fast_forward,
    )
    set_a, label_a = _resolve_result_set(args.a, args.store)
    set_b, label_b = _resolve_result_set(args.b, args.store)
    if args.ignore_fast_forward:
        set_a = rekey_ignoring_fast_forward(set_a)
        set_b = rekey_ignoring_fast_forward(set_b)
    table = (ToleranceTable.load(args.tolerances)
             if args.tolerances else None)
    report = diff_result_sets(set_a, set_b, tolerance=args.tolerance,
                              tolerances=table)

    print(f"results diff: A={label_a} ({len(set_a)} result(s)) "
          f"vs B={label_b} ({len(set_b)} result(s))")
    print(f"{report.matched} matched, {report.identical} identical, "
          f"{len(report.deltas)} metric delta(s), "
          f"{len(report.only_in_a)} only in A, "
          f"{len(report.only_in_b)} only in B")
    for key in report.only_in_a:
        print(f"  only in A: {key[:12]}")
    for key in report.only_in_b:
        print(f"  only in B: {key[:12]}")
    for delta in report.deltas[:args.max_deltas]:
        print(f"  {delta.key[:12]} {delta.metric}: "
              f"{delta.a!r} -> {delta.b!r}")
    if len(report.deltas) > args.max_deltas:
        print(f"  ... and {len(report.deltas) - args.max_deltas} more "
              "delta(s)")

    if args.report:
        document = {"a": label_a, "b": label_b,
                    "tolerance": args.tolerance,
                    "tolerances": (dict(table.patterns,
                                        default=table.default)
                                   if table is not None else None),
                    "ignore_fast_forward": bool(args.ignore_fast_forward),
                    **report.to_dict()}
        Path(args.report).write_text(json.dumps(document, indent=2) + "\n")
        print(f"report written to {args.report}", file=sys.stderr)

    if report.empty():
        print("no differences")
        return 0
    return 1


def _results_export(args) -> int:
    import csv
    import io

    from repro.experiments.store import entry_metrics
    store = _require_store(args)
    entries = store.result_set(git_rev=args.git_rev)
    rows = []
    for key in sorted(entries):
        entry = entries[key]
        if args.kind is not None and entry.get("kind") != args.kind:
            continue
        if args.scenario_hash is not None and not str(
                entry.get("scenario_hash", "")).startswith(args.scenario_hash):
            continue
        rows.append({
            "key": key,
            "kind": entry.get("kind"),
            "scenario": _scenario_label(entry.get("scenario", {})),
            "scenario_hash": entry.get("scenario_hash"),
            "git_rev": entry.get("git_rev"),
            "duration": entry.get("duration"),
            "runtime_s": entry.get("runtime_s"),
            "cost_units": entry.get("cost_units"),
            "metrics": entry_metrics(entry),
        })

    if args.export_format == "json":
        text = json.dumps(rows, indent=2, sort_keys=True) + "\n"
    else:
        provenance = ("key", "kind", "scenario", "scenario_hash", "git_rev",
                      "duration", "runtime_s", "cost_units")
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(list(provenance) + ["metric", "value"])
        for row in rows:
            stamp = [row[name] for name in provenance]
            for metric in sorted(row["metrics"]):
                writer.writerow(stamp + [metric, row["metrics"][metric]])
        text = buffer.getvalue()

    if args.output:
        Path(args.output).write_text(text)
        print(f"exported {len(rows)} result(s) to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _results_migrate(args) -> int:
    from repro.experiments.store import (
        RESULT_DB_FILENAME,
        ResultStore,
        migrate_pickle_dir,
    )
    source = Path(args.source)
    if not source.is_dir():
        raise ValueError(f"{args.source!r} is not a directory")
    target = Path(args.store) if args.store else source
    if target.suffix not in (".sqlite", ".db"):
        target = target / RESULT_DB_FILENAME
    # An explicit database path skips the constructor's auto-migration,
    # so the report below reflects exactly what this invocation did.
    store = ResultStore(target)
    report = migrate_pickle_dir(store, source)
    print(f"migrated {report.migrated} entr"
          f"{'y' if report.migrated == 1 else 'ies'} from {source} into "
          f"{store.db_path} ({report.skipped} already present, "
          f"{report.rejected} rejected)")
    return 0


def _results_gc(args) -> int:
    if args.keep < 1:
        raise ValueError("--keep must be at least 1 (gc keeps the newest "
                         "N revisions per key)")
    store = _require_store(args)
    report = store.gc(keep_revs=args.keep, dry_run=args.dry_run,
                      vacuum=not args.no_vacuum)
    verb = "would drop" if report.dry_run else "dropped"
    print(f"results gc: {verb} {report.dropped_rows} superseded result "
          f"row(s) and {report.dropped_metrics} metric row(s) across "
          f"{report.keys} key(s); kept {report.kept_rows} row(s) "
          f"(newest {report.keep_revs} revision(s) per key)"
          + ("; vacuumed" if report.vacuumed else ""))
    return 0


def _results_backfill(args) -> int:
    store = _require_store(args)
    report = store.backfill_metrics()
    print(f"results backfill: indexed metrics for {report.backfilled} "
          f"row(s) ({report.skipped} skipped) in {store.db_path}")
    return 0


def _run_results(args) -> int:
    handlers = {
        "list": _results_list,
        "show": _results_show,
        "diff": _results_diff,
        "export": _results_export,
        "migrate": _results_migrate,
        "gc": _results_gc,
        "backfill": _results_backfill,
    }
    try:
        return handlers[args.results_command](args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _load_population_spec(token: str):
    """Interpret one CLI population spec (file path or inline JSON)."""
    from repro.fleet import PopulationSpec
    stripped = token.strip()
    if stripped.startswith("{"):
        data = json.loads(stripped)
    elif Path(token).exists():
        data = json.loads(Path(token).read_text())
    else:
        raise ValueError(f"cannot interpret population spec {token!r}: "
                         "not an existing file or inline JSON")
    return PopulationSpec.from_dict(data)


def _fleet_sample(args) -> int:
    from repro.fleet import population_digest, sample
    spec = _load_population_spec(args.spec)
    config = make_config(args)
    scenarios = list(sample(spec, args.n, seed=args.sample_seed,
                            config=config))
    shown = scenarios if args.show is None else scenarios[:args.show]
    rows = [{"index": index, "hash": scenario.short_hash(),
             "scenario": scenario.describe()}
            for index, scenario in enumerate(shown)]
    title = (f"population {spec.name} [{spec.short_hash()}] — "
             f"{len(scenarios)} sample(s), seed {args.sample_seed}"
             + (f" (showing {len(shown)})" if len(shown) < len(scenarios)
                else ""))
    if rows:
        print(format_rows(rows, title=title))
    else:
        print(title)
    print(f"population digest: {population_digest(scenarios)}")
    return 0


def _fleet_run(args) -> int:
    from repro.fleet import (
        population_digest,
        population_jobs,
        scenarios_by_key,
    )
    spec = _load_population_spec(args.spec)
    config = make_config(args)
    if args.cache_dir is None:
        raise ValueError("fleet run needs --cache-dir DIR: the result "
                         "store is the fleet's ledger (and what fleet "
                         "report reads)")
    jobs = population_jobs(spec, args.n, seed=args.sample_seed,
                           config=config)
    index = scenarios_by_key(jobs)
    suite = ExperimentSuite(workers=args.workers, cache_dir=args.cache_dir,
                            backend=args.backend, queue_dir=args.queue,
                            queue_addr=args.addr)
    started = time.perf_counter()
    with suite:
        suite.run(jobs)
        stats = suite.stats
    elapsed = time.perf_counter() - started
    # Deterministic stdout (serial / parallel / socket / replay agree);
    # timing and throughput go to stderr.
    print(f"population {spec.name} [{spec.short_hash()}]: "
          f"{len(jobs)} sample(s), {len(index)} unique job(s), "
          f"sample seed {args.sample_seed}")
    print(f"population digest: "
          f"{population_digest(job.scenario for job in jobs)}")
    print(f"provenance: schema v{CACHE_SCHEMA_VERSION}, "
          f"git {current_git_rev()[:12]}")
    print(f"{len(jobs)} job(s) in {elapsed:.1f}s — "
          f"{stats.submitted} submitted, {stats.executed} executed, "
          f"{stats.deduplicated} deduplicated, {stats.cache_hits} cache "
          f"hits ({args.workers} worker(s), {suite.backend} backend)",
          file=sys.stderr)
    return 0


def _fleet_report(args) -> int:
    from repro.fleet import (
        DEFAULT_DIMENSIONS,
        DEFAULT_METRICS,
        MetricSelector,
        compare_reports,
        fleet_report,
        population_jobs,
        scenarios_by_key,
    )
    spec = _load_population_spec(args.spec)
    config = make_config(args)
    store = _require_store(args)
    index = scenarios_by_key(population_jobs(spec, args.n,
                                             seed=args.sample_seed,
                                             config=config))
    dimensions = (tuple(name.strip() for name in args.by.split(","))
                  if args.by else DEFAULT_DIMENSIONS)
    metrics = (tuple(MetricSelector.parse(text) for text in args.metric)
               if args.metric else DEFAULT_METRICS)
    report = fleet_report(store, index, dimensions=dimensions,
                          metrics=metrics, git_rev=args.git_rev)

    print(f"fleet report: population {spec.name} [{spec.short_hash()}], "
          f"{report.covered}/{report.sampled} job(s) covered"
          + (f" at rev {args.git_rev}" if args.git_rev else ""))
    for metric in metrics:
        stats = [s for s in report.stats if s.metric == metric.label]
        rows = [{"dimension": s.dimension, "cohort": s.cohort,
                 "n": s.count, "mean": round(s.mean, 4),
                 "p50": round(s.p50, 4), "p95": round(s.p95, 4),
                 "p99": round(s.p99, 4)} for s in stats]
        if rows:
            print(format_rows(rows, title=f"{metric.label} "
                                          f"({metric.pattern})"))
            print()

    document = {"population": spec.to_dict(), "n": args.n,
                "sample_seed": args.sample_seed, **report.to_dict()}
    if args.baseline:
        baseline = fleet_report(store, index, dimensions=dimensions,
                                metrics=metrics, git_rev=args.baseline)
        deltas = compare_reports(report, baseline)
        rows = [{"metric": d["metric"], "dimension": d["dimension"],
                 "cohort": d["cohort"],
                 "p50": None if d["p50"] is None else round(d["p50"], 4),
                 "p50_base": (None if d["p50_baseline"] is None
                              else round(d["p50_baseline"], 4)),
                 "p50_%": (None if d["p50_delta_pct"] is None
                           else round(d["p50_delta_pct"], 2)),
                 "p99_%": (None if d["p99_delta_pct"] is None
                           else round(d["p99_delta_pct"], 2))}
                for d in deltas]
        title = (f"vs baseline {args.baseline} "
                 f"({baseline.covered}/{baseline.sampled} covered)")
        if rows:
            print(format_rows(rows, title=title))
        else:
            print(title)
        document["baseline"] = {"git_rev": args.baseline,
                                "covered": baseline.covered,
                                "deltas": deltas}
    if args.report:
        Path(args.report).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.report}", file=sys.stderr)
    if report.covered == 0:
        print("no stored results cover this population; run "
              "`fleet run` against this store first", file=sys.stderr)
        return 1
    return 0


def _run_fleet(args) -> int:
    handlers = {
        "sample": _fleet_sample,
        "run": _fleet_run,
        "report": _fleet_report,
    }
    try:
        return handlers[args.fleet_command](args)
    except (ValueError, KeyError, TypeError,
            json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _agents_store(args, create: bool = False):
    if args.store is None:
        raise ValueError("pass --store PATH (a cache directory or a "
                         ".sqlite file)")
    if create:
        from repro.experiments.store import ResultStore
        return ResultStore(args.store)
    return _open_existing_store(args.store)


def _agents_train(args) -> int:
    from repro.agents.artifacts import (
        ARTIFACT_SCHEMA_VERSION,
        ArtifactSpec,
        resolve_artifact,
    )
    config = make_config(args)
    store = _agents_store(args, create=True)
    rows = []
    for index, benchmark in enumerate(config.benchmarks):
        spec = ArtifactSpec.for_config(benchmark, config, seed_offset=index)
        cached = store.get_artifact_bytes(
            spec.content_hash(), schema=ARTIFACT_SCHEMA_VERSION) is not None
        artifact = resolve_artifact(spec, store=store)
        rows.append({"benchmark": benchmark,
                     "hash": spec.short_hash(),
                     "train_seed": spec.train_seed,
                     "recording": len(artifact.recording),
                     "size_bytes": len(artifact.to_bytes()),
                     "status": "cached" if cached else "trained"})
    print(format_rows(rows, title=f"{len(rows)} agent artifact(s) in "
                                  f"{store.db_path}"))
    return 0


def _agents_list(args) -> int:
    store = _agents_store(args)
    rows = store.artifact_rows(benchmark=args.benchmark)
    display = [{
        "hash": row["hash"][:12],
        "kind": row["kind"],
        "benchmark": row["benchmark"],
        "schema": row["schema"],
        "git_rev": (row["git_rev"] or "")[:12],
        "size_bytes": row["size_bytes"],
        "runtime_s": (None if row["runtime_s"] is None
                      else round(row["runtime_s"], 3)),
    } for row in rows]
    title = f"{len(rows)} agent artifact(s) in {store.db_path}"
    if display:
        print(format_rows(display, title=title))
    else:
        print(title)
    return 0


def _agents_show(args) -> int:
    store = _agents_store(args)
    rows = [row for row in store.artifact_rows()
            if row["hash"].startswith(args.hash)]
    if not rows:
        raise ValueError(f"no stored artifact hash starts with "
                         f"{args.hash!r}")
    if len(rows) > 1:
        raise ValueError(f"hash prefix {args.hash!r} is ambiguous: "
                         + ", ".join(row["hash"][:12] for row in rows))
    print(json.dumps(rows[0], indent=2, sort_keys=True, default=str))
    return 0


def _agents_gc(args) -> int:
    if args.keep < 1:
        raise ValueError("--keep must be at least 1 (gc keeps the newest "
                         "N artefacts per group)")
    store = _agents_store(args)
    report = store.gc_artifacts(keep=args.keep, dry_run=args.dry_run,
                                vacuum=not args.no_vacuum)
    verb = "would drop" if report.dry_run else "dropped"
    print(f"agents gc: {verb} {report.dropped} artifact(s) across "
          f"{report.groups} (kind, benchmark) group(s); kept {report.kept} "
          f"(newest {report.keep} per group)"
          + ("; vacuumed" if report.vacuumed else ""))
    return 0


def _run_agents(args) -> int:
    handlers = {
        "train": _agents_train,
        "list": _agents_list,
        "show": _agents_show,
        "gc": _agents_gc,
    }
    try:
        return handlers[args.agents_command](args)
    except (ValueError, KeyError, TypeError,
            json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_worker(args) -> int:
    from repro.experiments.queue import default_worker_id
    from repro.experiments.worker import run_worker

    if args.addr is not None:
        from repro.experiments.socket_queue import SocketQueue
        queue = SocketQueue(args.addr)
        source = args.addr
        heartbeat_s = args.heartbeat if args.heartbeat is not None else 2.0
    else:
        from repro.experiments.queue import DirectoryQueue
        queue = DirectoryQueue(args.queue)
        source = queue.root
        heartbeat_s = args.heartbeat
    worker_id = args.worker_id or default_worker_id()
    executed = run_worker(queue, worker_id=worker_id, poll_s=args.poll,
                          max_jobs=args.max_jobs,
                          idle_timeout_s=args.idle_timeout,
                          heartbeat_s=heartbeat_s)
    print(f"worker {worker_id}: executed {executed} job(s) from {source}",
          file=sys.stderr)
    return 0


def _run_serve(args) -> int:
    import threading

    from repro.experiments.coordinator import Coordinator
    from repro.experiments.server import QueueServer

    server = QueueServer(Path(args.queue), host=args.host, port=args.port,
                         lease_s=args.lease,
                         heartbeat_timeout_s=args.heartbeat_timeout,
                         sweep_interval_s=args.sweep_interval)
    server.start()
    print(f"queue server listening on {server.address} "
          f"(queue: {args.queue})", file=sys.stderr, flush=True)

    coordinator = None
    coordinator_thread = None
    if args.max_workers > 0:
        # The coordinator connects over loopback even when serving on
        # 0.0.0.0 — its workers are local by definition.
        host = args.host if args.host not in ("0.0.0.0", "::") \
            else "127.0.0.1"
        coordinator = Coordinator(f"{host}:{server.port}",
                                  min_workers=args.min_workers,
                                  max_workers=args.max_workers,
                                  scale_interval_s=args.scale_interval)
        coordinator_thread = threading.Thread(target=coordinator.run,
                                              daemon=True,
                                              name="queue-coordinator")
        coordinator_thread.start()
        print(f"autoscaling {args.min_workers}..{args.max_workers} local "
              f"worker(s) every {args.scale_interval:g}s", file=sys.stderr,
              flush=True)

    try:
        server._stop.wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if coordinator is not None:
            coordinator.stop(kill=True)
        server.stop()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if getattr(args, "command", None) == "scenario":
        return _run_scenarios(args)
    if getattr(args, "command", None) == "trace":
        return _run_trace(args)
    if getattr(args, "command", None) == "results":
        return _run_results(args)
    if getattr(args, "command", None) == "fleet":
        return _run_fleet(args)
    if getattr(args, "command", None) == "agents":
        return _run_agents(args)
    if getattr(args, "command", None) == "worker":
        return _run_worker(args)
    if getattr(args, "command", None) == "serve":
        return _run_serve(args)

    if args.list_figures:
        rows = [{"figure": name, "title": spec.title}
                for name, spec in FIGURES.items()]
        print(format_rows(rows, title="Available figures"))
        return 0

    names = list(args.figure)
    if args.all:
        names = figure_names()
    if not names:
        print("nothing to do: pass --figure NAME (repeatable), --all, "
              "--list or the scenario subcommand", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}; known: "
              f"{', '.join(figure_names())}", file=sys.stderr)
        return 2

    try:
        config = make_config(args)
        suite = ExperimentSuite(workers=args.workers, cache_dir=args.cache_dir,
                                backend=args.backend, queue_dir=args.queue,
                                queue_addr=args.addr)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    with suite:
        for name in names:
            rows = run_figure(name, config, suite)
            print(format_rows(rows, title=FIGURES[name].title))
            print()
        stats = suite.stats
    elapsed = time.perf_counter() - started
    print(f"{len(names)} figure(s) in {elapsed:.1f}s — "
          f"{stats.submitted} jobs submitted, {stats.executed} executed, "
          f"{stats.deduplicated} deduplicated, {stats.cache_hits} cache hits "
          f"({args.workers} worker(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
