"""CLI for the experiment execution subsystem.

Run any figure of the paper (or the whole suite) with a chosen worker
count and an optional on-disk result cache::

    PYTHONPATH=src python -m repro.experiments --list
    PYTHONPATH=src python -m repro.experiments --figure fig10 --workers 4
    PYTHONPATH=src python -m repro.experiments --all --workers 8 \
        --cache-dir .pictor-cache --profile quick

Or run ad-hoc scenarios — any placement mix, machine, session variant and
network — straight from a JSON spec file, an inline JSON string, or an
``A+B+C`` mix shorthand::

    PYTHONPATH=src python -m repro.experiments scenario RE+ITP+D2 --profile smoke
    PYTHONPATH=src python -m repro.experiments scenario examples/scenarios/mix3.json
    PYTHONPATH=src python -m repro.experiments scenario \
        '{"placements": ["RE", "ITP", "D2"], "variant": "optimized"}'

Execution backends are selectable (``--backend serial|parallel|
distributed``); the distributed backend submits jobs to a
shared-filesystem work queue (``--queue DIR``) drained by standalone
workers::

    PYTHONPATH=src python -m repro.experiments worker --queue /shared/q &
    PYTHONPATH=src python -m repro.experiments scenario RE+ITP+D2 \
        --backend distributed --queue /shared/q --workers 2

Results are deterministic: serial, parallel, and distributed runs print
bit-identical tables, and a second run against the same ``--cache-dir``
replays without executing anything.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional

from repro.core.reporting import format_rows
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, current_git_rev
from repro.experiments.figures import FIGURES, figure_names, run_figure
from repro.experiments.jobs import CACHE_SCHEMA_VERSION, ExperimentJob
from repro.scenarios.scenario import Scenario

PROFILES = ("quick", "smoke", "standard", "paper")


def make_config(args) -> ExperimentConfig:
    if args.profile == "paper":
        config = ExperimentConfig.paper(seed=args.seed)
    elif args.profile == "standard":
        config = ExperimentConfig(seed=args.seed)
    elif args.profile == "smoke":
        config = ExperimentConfig.smoke(seed=args.seed)
    else:
        config = ExperimentConfig.quick(seed=args.seed)
    if args.benchmarks:
        config = config.with_benchmarks(args.benchmarks.split(","))
    if args.max_instances:
        config = replace(config, max_instances=args.max_instances)
    if args.duration:
        config = replace(config, duration_s=args.duration)
    return config


def _add_execution_options(parser: argparse.ArgumentParser,
                           suppress_defaults: bool = False) -> None:
    # On a subparser the defaults are SUPPRESSed: argparse copies subparser
    # defaults over values the main parser already set, which would
    # silently discard flags given before the subcommand name.
    def default(value):
        return argparse.SUPPRESS if suppress_defaults else value

    parser.add_argument("--workers", type=int, default=default(1), metavar="N",
                        help="worker processes (1 = serial; default 1)")
    parser.add_argument("--cache-dir", default=default(None), metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--backend", choices=("serial", "parallel",
                                              "distributed"),
                        default=default(None),
                        help="execution backend (default: inferred — "
                             "distributed with --queue, parallel with "
                             "--workers > 1, else serial)")
    parser.add_argument("--queue", default=default(None), metavar="DIR",
                        help="work-queue directory for the distributed "
                             "backend (created on demand; default: a "
                             "private temporary queue)")


def _add_config_options(parser: argparse.ArgumentParser,
                        suppress_defaults: bool = False) -> None:
    def default(value):
        return argparse.SUPPRESS if suppress_defaults else value

    parser.add_argument("--profile", choices=PROFILES, default=default("quick"),
                        help="measurement-interval preset (default: quick)")
    parser.add_argument("--seed", type=int, default=default(0))
    parser.add_argument("--benchmarks", default=default(None), metavar="A,B,...",
                        help="comma-separated benchmark short names")
    parser.add_argument("--max-instances", type=int, default=default(None),
                        metavar="N", help="colocation sweep upper bound")
    parser.add_argument("--duration", type=float, default=default(None),
                        metavar="S",
                        help="override the measurement interval (seconds)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures through the parallel "
                    "experiment execution subsystem.")
    parser.add_argument("--figure", action="append", default=[],
                        metavar="NAME",
                        help="figure to run (repeatable); see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every figure in the registry")
    parser.add_argument("--list", action="store_true", dest="list_figures",
                        help="list the available figures and exit")
    _add_execution_options(parser)
    _add_config_options(parser)

    subcommands = parser.add_subparsers(dest="command", metavar="subcommand")
    scenario = subcommands.add_parser(
        "scenario",
        help="run declarative scenarios from JSON specs or A+B+C shorthands",
        description="Run one or more scenarios given as JSON spec files, "
                    "inline JSON (an object or a list of objects), or "
                    "A+B+C benchmark-mix shorthands.")
    scenario.add_argument("spec", nargs="+",
                          help="spec file path, inline JSON, or A+B+C mix")
    _add_execution_options(scenario, suppress_defaults=True)
    _add_config_options(scenario, suppress_defaults=True)

    trace = subcommands.add_parser(
        "trace",
        help="check (default) or re-record the golden kernel traces",
        description="Re-run every registered golden scenario under the "
                    "trace recorder and compare byte-for-byte against the "
                    "committed files in tests/golden/.  Without --update "
                    "this only checks (exit 1 on any mismatch) so CI can "
                    "never rewrite goldens silently; pass --update after "
                    "an intentional semantic change to re-record.")
    trace.add_argument("--update", action="store_true",
                       help="re-record and overwrite the golden files "
                            "(explicit opt-in)")
    trace.add_argument("--golden-dir", default=None, metavar="DIR",
                       help="override the golden directory (default: "
                            "tests/golden)")
    trace.add_argument("--list", action="store_true", dest="list_goldens",
                       help="list the registered golden scenarios and exit")

    worker = subcommands.add_parser(
        "worker",
        help="run a distributed-backend worker against a work queue",
        description="Poll the given work-queue directory for pending "
                    "experiment jobs, execute them, and write "
                    "provenance-stamped results back into the queue's "
                    "result cache.  Start one per core on any machine "
                    "that can see the queue directory.")
    worker.add_argument("--queue", required=True, metavar="DIR",
                        help="work-queue directory (created on demand)")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="worker identity used in claims "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="idle poll interval in seconds (default 0.2)")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after completing N jobs (default: no limit)")
    worker.add_argument("--idle-timeout", type=float, default=None,
                        metavar="S",
                        help="exit after the queue stays empty this long "
                             "(default: poll forever)")
    return parser


def load_scenarios(spec: str, config: ExperimentConfig) -> list[Scenario]:
    """Interpret one CLI scenario spec (file / inline JSON / mix shorthand).

    A spec without its own ``config`` section inherits ``config`` (the
    CLI profile), so its content hash reflects what actually runs.
    """
    stripped = spec.strip()
    if stripped.startswith(("{", "[")):
        data = json.loads(stripped)
    elif Path(spec).exists():
        data = json.loads(Path(spec).read_text())
    elif "+" in spec:
        return [Scenario.mixed(spec.split("+"), config=config)]
    else:
        raise ValueError(
            f"cannot interpret scenario spec {spec!r}: not an existing file, "
            f"inline JSON, or an A+B+C benchmark mix")
    if isinstance(data, dict):
        data = [data]
    return [Scenario.from_dict(entry, config=config) for entry in data]


def _run_scenarios(args) -> int:
    try:
        config = make_config(args)
        scenarios = []
        for spec in args.spec:
            scenarios.extend(load_scenarios(spec, config))
        suite = ExperimentSuite(workers=args.workers, cache_dir=args.cache_dir,
                                backend=args.backend, queue_dir=args.queue)
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    with suite:
        results = suite.run([ExperimentJob(scenario) for scenario in scenarios])
        stats = suite.stats
    elapsed = time.perf_counter() - started

    for scenario, result in zip(scenarios, results):
        rows = [{"instance": index, "benchmark": report.benchmark,
                 "server_fps": report.server_fps,
                 "client_fps": report.client_fps,
                 "rtt_ms": report.rtt.mean * 1e3}
                for index, report in enumerate(result.reports)]
        print(format_rows(
            rows, title=f"scenario {scenario.describe()} "
                        f"[{scenario.short_hash()}]"))
        print(f"total power: {result.average_power_watts:.2f} W, "
              f"energy: {result.energy_joules:.1f} J")
        print()
    print(f"provenance: schema v{CACHE_SCHEMA_VERSION}, "
          f"git {current_git_rev()[:12]}")
    # Timing is nondeterministic, so it goes to stderr: stdout stays
    # bit-identical across serial / parallel / cache-replay runs.
    print(f"{len(scenarios)} scenario(s) in {elapsed:.1f}s — "
          f"{stats.submitted} jobs submitted, {stats.executed} executed, "
          f"{stats.deduplicated} deduplicated, {stats.cache_hits} cache hits "
          f"({args.workers} worker(s))", file=sys.stderr)
    return 0


def _run_trace(args) -> int:
    from repro.experiments.goldens import (
        check_goldens,
        golden_registry,
        update_goldens,
    )
    golden_dir = Path(args.golden_dir) if args.golden_dir else None

    if args.list_goldens:
        rows = [{"golden": name,
                 "scenario": spec.scenario.describe(),
                 "hash": spec.scenario.short_hash(),
                 "duration_s": spec.duration}
                for name, spec in golden_registry().items()]
        print(format_rows(rows, title="Registered golden traces"))
        return 0

    if args.update:
        results = update_goldens(golden_dir)
        for name, status in sorted(results.items()):
            print(f"{name}: {status}")
        return 0

    results = check_goldens(golden_dir)
    failed = False
    for name, status in sorted(results.items()):
        print(f"{name}: {status}")
        if status != "ok":
            failed = True
    if failed:
        print("golden traces diverged; if the change is an intentional "
              "semantic change, re-record with "
              "`python -m repro.experiments trace --update`",
              file=sys.stderr)
        return 1
    return 0


def _run_worker(args) -> int:
    from repro.experiments.queue import DirectoryQueue, default_worker_id
    from repro.experiments.worker import run_worker

    queue = DirectoryQueue(args.queue)
    worker_id = args.worker_id or default_worker_id()
    executed = run_worker(queue, worker_id=worker_id, poll_s=args.poll,
                          max_jobs=args.max_jobs,
                          idle_timeout_s=args.idle_timeout)
    print(f"worker {worker_id}: executed {executed} job(s) from {queue.root}",
          file=sys.stderr)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if getattr(args, "command", None) == "scenario":
        return _run_scenarios(args)
    if getattr(args, "command", None) == "trace":
        return _run_trace(args)
    if getattr(args, "command", None) == "worker":
        return _run_worker(args)

    if args.list_figures:
        rows = [{"figure": name, "title": spec.title}
                for name, spec in FIGURES.items()]
        print(format_rows(rows, title="Available figures"))
        return 0

    names = list(args.figure)
    if args.all:
        names = figure_names()
    if not names:
        print("nothing to do: pass --figure NAME (repeatable), --all, "
              "--list or the scenario subcommand", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}; known: "
              f"{', '.join(figure_names())}", file=sys.stderr)
        return 2

    try:
        config = make_config(args)
        suite = ExperimentSuite(workers=args.workers, cache_dir=args.cache_dir,
                                backend=args.backend, queue_dir=args.queue)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    with suite:
        for name in names:
            rows = run_figure(name, config, suite)
            print(format_rows(rows, title=FIGURES[name].title))
            print()
        stats = suite.stats
    elapsed = time.perf_counter() - started
    print(f"{len(names)} figure(s) in {elapsed:.1f}s — "
          f"{stats.submitted} jobs submitted, {stats.executed} executed, "
          f"{stats.deduplicated} deduplicated, {stats.cache_hits} cache hits "
          f"({args.workers} worker(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
