"""CLI for the experiment execution subsystem.

Run any figure of the paper (or the whole suite) with a chosen worker
count and an optional on-disk result cache::

    PYTHONPATH=src python -m repro.experiments --list
    PYTHONPATH=src python -m repro.experiments --figure fig10 --workers 4
    PYTHONPATH=src python -m repro.experiments --all --workers 8 \
        --cache-dir .pictor-cache --profile quick

Results are deterministic: ``--workers 1`` and ``--workers N`` print
bit-identical tables, and a second run against the same ``--cache-dir``
replays without executing anything.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Optional

from repro.core.reporting import format_rows
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite
from repro.experiments.figures import FIGURES, figure_names, run_figure

PROFILES = ("quick", "smoke", "standard", "paper")


def make_config(args) -> ExperimentConfig:
    if args.profile == "paper":
        config = ExperimentConfig.paper(seed=args.seed)
    elif args.profile == "standard":
        config = ExperimentConfig(seed=args.seed)
    elif args.profile == "smoke":
        config = ExperimentConfig.smoke(seed=args.seed)
    else:
        config = ExperimentConfig.quick(seed=args.seed)
    if args.benchmarks:
        config = config.with_benchmarks(args.benchmarks.split(","))
    if args.max_instances:
        config = replace(config, max_instances=args.max_instances)
    if args.duration:
        config = replace(config, duration_s=args.duration)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures through the parallel "
                    "experiment execution subsystem.")
    parser.add_argument("--figure", action="append", default=[],
                        metavar="NAME",
                        help="figure to run (repeatable); see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every figure in the registry")
    parser.add_argument("--list", action="store_true", dest="list_figures",
                        help="list the available figures and exit")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (1 = serial; default 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--profile", choices=PROFILES, default="quick",
                        help="measurement-interval preset (default: quick)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--benchmarks", default=None, metavar="A,B,...",
                        help="comma-separated benchmark short names")
    parser.add_argument("--max-instances", type=int, default=None, metavar="N",
                        help="colocation sweep upper bound")
    parser.add_argument("--duration", type=float, default=None, metavar="S",
                        help="override the measurement interval (seconds)")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_figures:
        rows = [{"figure": name, "title": spec.title}
                for name, spec in FIGURES.items()]
        print(format_rows(rows, title="Available figures"))
        return 0

    names = list(args.figure)
    if args.all:
        names = figure_names()
    if not names:
        print("nothing to do: pass --figure NAME (repeatable), --all or --list",
              file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}; known: "
              f"{', '.join(figure_names())}", file=sys.stderr)
        return 2

    try:
        config = make_config(args)
        suite = ExperimentSuite(workers=args.workers, cache_dir=args.cache_dir)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    with suite:
        for name in names:
            rows = run_figure(name, config, suite)
            print(format_rows(rows, title=FIGURES[name].title))
            print()
        stats = suite.stats
    elapsed = time.perf_counter() - started
    print(f"{len(names)} figure(s) in {elapsed:.1f}s — "
          f"{stats.submitted} jobs submitted, {stats.executed} executed, "
          f"{stats.deduplicated} deduplicated, {stats.cache_hits} cache hits "
          f"({args.workers} worker(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
