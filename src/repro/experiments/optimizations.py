"""Figures 21–22: the frame-copy optimizations' performance impact.

Each benchmark is run with the baseline interposer and again with the two
Section-6 optimizations (window-attribute memoization and the two-step
asynchronous frame copy).  The paper reports +57.7% server FPS on average
(+115.2% max), +7.4% client FPS, and −8.5% RTT.  An ablation variant runs
each optimization alone so their individual contributions are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario
from repro.scenarios.variants import SessionVariant

__all__ = ["OptimizationRow", "OptimizationSummary", "optimization_jobs",
           "optimization_improvements", "optimization_rows_from_results",
           "optimization_ablation"]


@dataclass
class OptimizationRow:
    """Baseline vs. optimized measurements for one benchmark."""

    benchmark: str
    baseline_server_fps: float
    optimized_server_fps: float
    baseline_client_fps: float
    optimized_client_fps: float
    baseline_rtt_ms: float
    optimized_rtt_ms: float

    @property
    def server_fps_improvement_percent(self) -> float:
        if self.baseline_server_fps <= 0:
            return 0.0
        return (self.optimized_server_fps / self.baseline_server_fps - 1.0) * 100.0

    @property
    def client_fps_improvement_percent(self) -> float:
        if self.baseline_client_fps <= 0:
            return 0.0
        return (self.optimized_client_fps / self.baseline_client_fps - 1.0) * 100.0

    @property
    def rtt_reduction_percent(self) -> float:
        if self.baseline_rtt_ms <= 0:
            return 0.0
        return (1.0 - self.optimized_rtt_ms / self.baseline_rtt_ms) * 100.0


@dataclass
class OptimizationSummary:
    rows: list[OptimizationRow] = field(default_factory=list)

    @property
    def mean_server_fps_improvement_percent(self) -> float:
        return float(np.mean([r.server_fps_improvement_percent for r in self.rows])) \
            if self.rows else 0.0

    @property
    def max_server_fps_improvement_percent(self) -> float:
        return float(max((r.server_fps_improvement_percent for r in self.rows),
                         default=0.0))

    @property
    def mean_client_fps_improvement_percent(self) -> float:
        return float(np.mean([r.client_fps_improvement_percent for r in self.rows])) \
            if self.rows else 0.0

    @property
    def mean_rtt_reduction_percent(self) -> float:
        return float(np.mean([r.rtt_reduction_percent for r in self.rows])) \
            if self.rows else 0.0


def _pair_jobs(benchmark: str, config: ExperimentConfig, seed_offset: int,
               optimized: SessionVariant) -> list[ExperimentJob]:
    """The (baseline, optimized) scenario pair for one benchmark."""
    return [
        ExperimentJob(Scenario.single(benchmark, config,
                                      seed_offset=seed_offset)),
        ExperimentJob(Scenario.single(benchmark, config,
                                      seed_offset=seed_offset,
                                      variant=optimized)),
    ]


def _row_from_pair(benchmark: str, baseline, optimized) -> OptimizationRow:
    baseline_report = baseline.reports[0]
    optimized_report = optimized.reports[0]
    return OptimizationRow(
        benchmark=benchmark,
        baseline_server_fps=baseline_report.server_fps,
        optimized_server_fps=optimized_report.server_fps,
        baseline_client_fps=baseline_report.client_fps,
        optimized_client_fps=optimized_report.client_fps,
        baseline_rtt_ms=baseline_report.rtt.mean * 1e3,
        optimized_rtt_ms=optimized_report.rtt.mean * 1e3,
    )


def optimization_jobs(benchmarks, config: ExperimentConfig) -> list[ExperimentJob]:
    """A (baseline, both-optimizations) job pair per benchmark."""
    jobs = []
    for index, benchmark in enumerate(benchmarks):
        jobs.extend(_pair_jobs(benchmark, config, 700 + index,
                               SessionVariant.optimized()))
    return jobs


def optimization_rows_from_results(benchmarks, results) -> OptimizationSummary:
    summary = OptimizationSummary()
    for index, benchmark in enumerate(benchmarks):
        summary.rows.append(_row_from_pair(
            benchmark, results[2 * index], results[2 * index + 1]))
    return summary


def optimization_improvements(benchmarks=None,
                              config: Optional[ExperimentConfig] = None,
                              suite: Optional[ExperimentSuite] = None,
                              ) -> OptimizationSummary:
    """Figure 22: both optimizations on, for each benchmark."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    results = run_jobs(optimization_jobs(benchmarks, config), suite)
    return optimization_rows_from_results(benchmarks, results)


def optimization_ablation(benchmark: str = "STK",
                          config: Optional[ExperimentConfig] = None,
                          suite: Optional[ExperimentSuite] = None,
                          ) -> dict[str, float]:
    """Ablation: each optimization alone vs. both together (server FPS gain %)."""
    config = config or ExperimentConfig()
    variants = {
        "memoize_xgwa_only": ("memoize_xgwa",),
        "two_step_copy_only": ("two_step_copy",),
        "both": ("memoize_xgwa", "two_step_copy"),
    }
    jobs = []
    for keys in variants.values():
        jobs.extend(_pair_jobs(benchmark, config, 750,
                               SessionVariant.optimized(keys)))
    run_results = run_jobs(jobs, suite)       # the baseline deduplicates to one run
    results = {}
    for index, label in enumerate(variants):
        row = _row_from_pair(benchmark, run_results[2 * index],
                             run_results[2 * index + 1])
        results[label] = row.server_fps_improvement_percent
    return results
