"""Table 4: capability comparison of VDI / cloud-gaming benchmarking tools.

Table 4 is a qualitative feature matrix; reproducing it means encoding
which capability each prior tool offers and verifying that Pictor is the
only one providing all of them.  The rows also serve as documentation of
what the rest of this repository actually implements (each Pictor
capability maps to a module).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FEATURES", "TOOLS", "ToolCapabilities", "feature_matrix",
           "pictor_only_features"]

#: The capability rows of Table 4, in the paper's order.
FEATURES: tuple[str, ...] = (
    "random_ui_objects_tolerant",
    "varying_net_latency_tolerant",
    "user_input_tracking",
    "cpu_perf_measurement",
    "network_perf_measurement",
    "gpu_perf_measurement",
    "pcie_frame_copy_measurement",
    "unaltered_3d_app_behaviors",
)


@dataclass(frozen=True)
class ToolCapabilities:
    """One column of Table 4."""

    name: str
    capabilities: frozenset[str]

    def supports(self, feature: str) -> bool:
        if feature not in FEATURES:
            raise KeyError(f"unknown feature {feature!r}")
        return feature in self.capabilities


#: Prior tools and the capabilities the paper credits them with.
TOOLS: tuple[ToolCapabilities, ...] = (
    ToolCapabilities("VNCPlay", frozenset({
        "varying_net_latency_tolerant", "cpu_perf_measurement"})),
    ToolCapabilities("Chen et al.", frozenset({
        "random_ui_objects_tolerant", "varying_net_latency_tolerant",
        "cpu_perf_measurement", "network_perf_measurement",
        "unaltered_3d_app_behaviors"})),
    ToolCapabilities("Slow-Motion", frozenset({
        "user_input_tracking", "cpu_perf_measurement",
        "network_perf_measurement"})),
    ToolCapabilities("Login-VSI", frozenset({
        "cpu_perf_measurement", "unaltered_3d_app_behaviors"})),
    ToolCapabilities("DeskBench", frozenset({
        "varying_net_latency_tolerant", "cpu_perf_measurement",
        "network_perf_measurement", "unaltered_3d_app_behaviors"})),
    ToolCapabilities("VDBench", frozenset({
        "cpu_perf_measurement", "network_perf_measurement",
        "unaltered_3d_app_behaviors"})),
    ToolCapabilities("Dusi et al.", frozenset({
        "network_perf_measurement", "unaltered_3d_app_behaviors"})),
    ToolCapabilities("Pictor", frozenset(FEATURES)),
)

#: Where each Pictor capability is implemented in this repository.
PICTOR_FEATURE_MODULES: dict[str, str] = {
    "random_ui_objects_tolerant": "repro.agents.intelligent_client",
    "varying_net_latency_tolerant": "repro.agents.intelligent_client",
    "user_input_tracking": "repro.core.tracker",
    "cpu_perf_measurement": "repro.core.pmu",
    "network_perf_measurement": "repro.network.link",
    "gpu_perf_measurement": "repro.core.gpu_timer",
    "pcie_frame_copy_measurement": "repro.hardware.pcie",
    "unaltered_3d_app_behaviors": "repro.core.hooks",
}


def feature_matrix() -> list[dict[str, object]]:
    """Table 4 as rows: one dict per feature, one key per tool."""
    rows = []
    for feature in FEATURES:
        row: dict[str, object] = {"feature": feature}
        for tool in TOOLS:
            row[tool.name] = tool.supports(feature)
        rows.append(row)
    return rows


def pictor_only_features() -> list[str]:
    """Capabilities no prior tool offers (GPU and PCIe measurement, etc.)."""
    only = []
    for feature in FEATURES:
        others = [tool for tool in TOOLS
                  if tool.name != "Pictor" and tool.supports(feature)]
        if not others:
            only.append(feature)
    return only
