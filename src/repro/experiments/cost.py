"""Job cost estimation: packing execution backends largest-first.

Submission order never changes a result (``execute_job`` is
deterministic), but it does change how well a pool of workers is
utilized: with figure-order submission a long job picked up last leaves
every other worker idle while it finishes.  Classic longest-processing-
time packing — submit the most expensive jobs first — bounds that tail,
so both the process-pool and the distributed backends order their
submissions through :func:`order_by_cost`.

The a-priori cost of a job is :meth:`ExperimentJob.cost_units`
(simulated seconds × instance count).  Units are only comparable within
one job kind — ``accuracy`` jobs spend their time training models, not
simulating — so :class:`CostModel` carries a wall-seconds-per-unit rate
per kind, calibrated from the ``runtime_s`` / ``cost_units`` stamps the
executor writes into every cache entry.  With no calibration data the
rates default to 1.0, which still orders correctly within a kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # import cycle: executor imports this module
    from repro.experiments.jobs import ExperimentJob
    from repro.experiments.store import ResultStore

__all__ = ["CostCalibration", "CostModel", "order_by_cost"]


@dataclass(frozen=True)
class CostModel:
    """Wall-clock estimates for experiment jobs.

    ``rates`` maps a job kind to calibrated wall seconds per cost unit;
    kinds without a rate fall back to ``default_rate`` — 1.0 (raw
    units) on a fresh model, the blended rate across every calibrated
    kind on a fitted one.  Fleet populations sample kinds a store may
    have never executed, and a blended fallback keeps those jobs
    comparable to calibrated ones instead of wildly mis-packed.
    """

    rates: Mapping[str, float] = field(default_factory=dict)
    default_rate: float = 1.0

    def estimate(self, job: "ExperimentJob") -> float:
        """Estimated wall seconds (or raw units, uncalibrated) for ``job``."""
        return self.estimate_units(job.kind, job.cost_units())

    def estimate_units(self, kind: str, units: float) -> float:
        """:meth:`estimate` from a job's provenance pair alone.

        The queue server orders claims largest-estimated-cost first
        across *all* submitters, and it knows each pending job only as
        ``(kind, cost_units)`` stamps — the pickled job itself never
        needs to be loaded to place it in the packing order.
        """
        return units * self.rates.get(kind, self.default_rate)

    @classmethod
    def calibrated(cls, cache: "ResultStore") -> "CostModel":
        """A model whose per-kind rates are fit from stored runtimes.

        Every executed job's store row records how long it actually
        took (``runtime_s``) and its a-priori cost (``cost_units``); the
        rate for a kind is total runtime over total units, so large jobs
        dominate the fit — exactly the jobs packing must get right.
        Kinds with no usable samples keep the 1.0 default.
        """
        return CostCalibration.from_cache(cache).model()


@dataclass
class CostCalibration:
    """Mutable per-kind runtime/unit totals that feed a :class:`CostModel`.

    The executor seeds one from the result store **once** per suite (a
    single SQL pass over the provenance columns — no result payloads are
    unpickled) and then feeds it each executed job's observed runtime in
    memory.
    """

    unit_totals: dict = field(default_factory=dict)
    runtime_totals: dict = field(default_factory=dict)

    def observe(self, kind: str, units: float,
                runtime_s: float | None) -> None:
        if not kind or not runtime_s or not units:
            return  # pre-runtime-stamp entry (or a zero-cost fluke)
        self.unit_totals[kind] = self.unit_totals.get(kind, 0.0) + units
        self.runtime_totals[kind] = (self.runtime_totals.get(kind, 0.0)
                                     + runtime_s)

    def observe_entry(self, entry: dict) -> None:
        self.observe(entry.get("kind"), entry.get("cost_units"),
                     entry.get("runtime_s"))

    @classmethod
    def from_cache(cls, cache: "ResultStore") -> "CostCalibration":
        """Seed a calibration from a result store (or any cache-alike).

        A :class:`~repro.experiments.store.ResultStore` serves the three
        calibration columns straight from SQL; anything without
        ``calibration_rows`` (e.g. the legacy
        :class:`~repro.experiments.store.PickleResultCache`) falls back
        to iterating full entries.
        """
        calibration = cls()
        rows = getattr(cache, "calibration_rows", None)
        if rows is not None:
            for kind, units, runtime_s in rows():
                calibration.observe(kind, units, runtime_s)
        else:
            for entry in cache.entries():
                calibration.observe_entry(entry)
        return calibration

    def model(self) -> CostModel:
        rates = {
            kind: self.runtime_totals[kind] / self.unit_totals[kind]
            for kind in self.unit_totals if self.unit_totals[kind] > 0}
        # Kinds never executed against this store estimate at the
        # blended rate over every observation, not the raw-units 1.0.
        all_units = sum(self.unit_totals[kind] for kind in rates)
        all_runtime = sum(self.runtime_totals[kind] for kind in rates)
        default = all_runtime / all_units if all_units > 0 else 1.0
        return CostModel(rates=rates, default_rate=default)


def order_by_cost(jobs: Sequence["ExperimentJob"],
                  model: CostModel | None = None) -> list["ExperimentJob"]:
    """``jobs`` reordered largest-estimated-cost first.

    Deterministic: ties break on the job's content hash, so every
    process (and every backend) derives the same submission order from
    the same job set.
    """
    model = model or CostModel()
    return sorted(jobs, key=lambda job: (-model.estimate(job), job.key()))
