"""Figure 6 / Table 3 / Figure 7: intelligent-client accuracy and speed.

The accuracy experiment compares the RTT distributions a benchmark
exhibits under five input-generation / measurement methodologies:

* **H**  — the synthetic human reference player (ground truth);
* **IC** — Pictor's intelligent client (CNN + LSTM trained on a recorded
  session of that human);
* **DB** — DeskBench-style record/replay gated on frame similarity;
* **CH** — Chen et al.'s stage-sum RTT reconstruction over a human run;
* **SM** — Slow-Motion benchmarking driven by the intelligent client.

Table 3 is the percentage error of each methodology's mean RTT against
the human run; Figure 7 is the per-benchmark CNN / LSTM inference time of
the intelligent client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.agents.baselines.chen import ChenMethodology
from repro.agents.baselines.deskbench import DeskBenchClient
from repro.agents.baselines.slowmotion import SlowMotionMethodology
from repro.agents.intelligent_client import IntelligentClient, train_intelligent_client
from repro.agents.recorder import RecordedSession
from repro.apps.registry import create_benchmark, get_profile
from repro.core.measurements import LatencyStats, percentage_error
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.experiments.runner import run_custom
from repro.scenarios.scenario import Scenario
from repro.scenarios.variants import SessionVariant
from repro.sim.randomness import StreamRandom

__all__ = ["AccuracyRow", "accuracy_jobs", "inference_jobs",
           "inference_time_row", "inference_times",
           "methodology_accuracy", "methodology_accuracy_rows",
           "prepare_intelligent_client"]

#: The methodology labels, in the paper's order.
METHODOLOGIES = ("H", "IC", "DB", "CH", "SM")


@dataclass
class AccuracyRow:
    """One benchmark's Figure-6 distributions and Table-3 errors."""

    benchmark: str
    rtt_stats: dict[str, LatencyStats] = field(default_factory=dict)
    mean_rtt_ms: dict[str, float] = field(default_factory=dict)
    error_percent: dict[str, float] = field(default_factory=dict)

    def as_table_row(self) -> list[str]:
        cells = [self.benchmark]
        for method in ("IC", "DB", "CH", "SM"):
            cells.append(f"{self.error_percent.get(method, float('nan')):.1f}%")
        return cells


def prepare_intelligent_client(benchmark: str, config: ExperimentConfig,
                               seed_offset: int = 0,
                               ) -> tuple[IntelligentClient, RecordedSession]:
    """Train the intelligent client (and obtain the recording) for a benchmark."""
    rng = StreamRandom(config.seed + seed_offset + 7919)
    app = create_benchmark(benchmark, rng=rng)
    return train_intelligent_client(
        app, rng=rng,
        recording_seconds=config.recording_seconds,
        cnn_epochs=config.cnn_epochs,
        lstm_epochs=config.lstm_epochs)


def methodology_accuracy(benchmark: str, config: Optional[ExperimentConfig] = None,
                         client: Optional[IntelligentClient] = None,
                         recording: Optional[RecordedSession] = None,
                         ) -> AccuracyRow:
    """Run all five methodologies for one benchmark and compute Table-3 errors."""
    config = config or ExperimentConfig()
    row = AccuracyRow(benchmark=benchmark)

    if client is None or recording is None:
        client, recording = prepare_intelligent_client(benchmark, config)

    # --- H: human ground truth -------------------------------------------------
    human_result = Scenario.single(benchmark, config, seed_offset=0).run()
    human_report = human_result.reports[0]
    row.rtt_stats["H"] = human_report.rtt
    row.mean_rtt_ms["H"] = human_report.rtt.mean * 1e3

    # --- IC: Pictor's intelligent client --------------------------------------------
    ic_result = run_custom(benchmark, config, seed_offset=1,
                           agent_factory=lambda app: _rebind(client, app))
    row.rtt_stats["IC"] = ic_result.reports[0].rtt
    row.mean_rtt_ms["IC"] = ic_result.reports[0].rtt.mean * 1e3

    # --- DB: DeskBench record/replay --------------------------------------------------
    threshold = DeskBenchClient.sweep_thresholds(
        create_benchmark(benchmark, rng=StreamRandom(config.seed + 31)), recording)
    db_result = run_custom(
        benchmark, config, seed_offset=2,
        agent_factory=lambda app: DeskBenchClient(
            app, recording, similarity_threshold=threshold,
            rng=StreamRandom(config.seed + 37)))
    row.rtt_stats["DB"] = db_result.reports[0].rtt
    row.mean_rtt_ms["DB"] = db_result.reports[0].rtt.mean * 1e3

    # --- CH: Chen et al. stage-sum estimation over a human-driven run -------------------
    chen_result = Scenario.single(benchmark, config, seed_offset=3).run()
    chen = ChenMethodology(get_profile(benchmark))
    chen_rtts = chen.estimate_rtts(_tracker_of(chen_result))
    row.rtt_stats["CH"] = LatencyStats.from_samples(chen_rtts)
    row.mean_rtt_ms["CH"] = row.rtt_stats["CH"].mean * 1e3

    # --- SM: Slow-Motion driven by the intelligent client ----------------------------------
    slow = SlowMotionMethodology()
    sm_config = slow.session_config(SessionVariant().session_config())
    sm_result = run_custom(benchmark, config, seed_offset=4,
                           agent_factory=lambda app: _rebind(client, app),
                           session_config=sm_config)
    row.rtt_stats["SM"] = sm_result.reports[0].rtt
    row.mean_rtt_ms["SM"] = sm_result.reports[0].rtt.mean * 1e3

    reference = row.mean_rtt_ms["H"]
    for method in ("IC", "DB", "CH", "SM"):
        row.error_percent[method] = percentage_error(row.mean_rtt_ms[method], reference)
    return row


def accuracy_jobs(benchmarks, config: ExperimentConfig) -> list[ExperimentJob]:
    """One Table-3 methodology comparison per benchmark, as jobs.

    Each job trains the intelligent client for its benchmark (with the
    training seed offset by the benchmark's index, mirroring the
    benchmark harness) and runs all five methodologies.  The rows are
    independent, so the suite parallelizes across benchmarks.
    """
    return [ExperimentJob(Scenario.single(benchmark, config, seed_offset=index),
                          kind="accuracy")
            for index, benchmark in enumerate(benchmarks)]


def methodology_accuracy_rows(benchmarks=None,
                              config: Optional[ExperimentConfig] = None,
                              suite: Optional[ExperimentSuite] = None,
                              ) -> list[AccuracyRow]:
    """Figure 6 / Table 3 rows for several benchmarks, through the suite."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    return run_jobs(accuracy_jobs(benchmarks, config), suite)


def _rebind(client: IntelligentClient, app) -> IntelligentClient:
    """Attach a trained client to the freshly created application instance."""
    client.app = app
    client.policy.reset_state()
    return client


def _tracker_of(result):
    """The tracker that produced a single-instance result's report."""
    # HostResult does not keep sessions, so the tracker is reached through
    # the report's extra channel when available; fall back to re-deriving
    # stats from the report itself.
    report = result.reports[0]
    tracker = report.extra.get("tracker")
    if tracker is None:
        raise RuntimeError("single-instance run did not expose its tracker")
    return tracker


def inference_time_row(benchmark: str, config: ExperimentConfig,
                       index: int = 0,
                       client: Optional[IntelligentClient] = None,
                       ) -> dict[str, float]:
    """One Figure-7 row: inference times of one benchmark's client.

    ``index`` is the benchmark's position in the figure's list; it
    offsets the training and frame-generation seeds exactly as the
    original serial loop did, so routing through jobs is bit-identical.
    """
    if client is None:
        client, _recording = prepare_intelligent_client(benchmark, config,
                                                        seed_offset=index)
    # Exercise inference on freshly generated frames.
    app = create_benchmark(benchmark, rng=StreamRandom(config.seed + 997 + index))
    for _ in range(40):
        frame = app.advance(1.0 / 30.0)
        client.decide(frame, now=0.0)
    return {
        "cv_time_ms": client.mean_cv_time() * 1e3,
        "input_generation_time_ms": client.mean_rnn_time() * 1e3,
        "achievable_apm": client.achievable_apm(),
    }


def inference_jobs(benchmarks, config: ExperimentConfig) -> list[ExperimentJob]:
    """One Figure-7 inference measurement per benchmark, as jobs."""
    return [ExperimentJob(Scenario.single(benchmark, config, seed_offset=index),
                          kind="inference")
            for index, benchmark in enumerate(benchmarks)]


def inference_times(benchmarks=None, config: Optional[ExperimentConfig] = None,
                    clients: Optional[dict[str, IntelligentClient]] = None,
                    suite: Optional[ExperimentSuite] = None,
                    ) -> dict[str, dict[str, float]]:
    """Figure 7: CNN (CV) and LSTM (input-generation) time per benchmark.

    With pre-trained ``clients`` the rows are computed in-process (the
    trained models cannot be described declaratively); otherwise each
    benchmark becomes an independent job on the suite.
    """
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    if clients:
        return {benchmark: inference_time_row(benchmark, config, index=index,
                                              client=clients.get(benchmark))
                for index, benchmark in enumerate(benchmarks)}
    results = run_jobs(inference_jobs(benchmarks, config), suite)
    return dict(zip(benchmarks, results))
