"""Figure 6 / Table 3 / Figure 7: intelligent-client accuracy and speed.

The accuracy experiment compares the RTT distributions a benchmark
exhibits under five input-generation / measurement methodologies:

* **H**  — the synthetic human reference player (ground truth);
* **IC** — Pictor's intelligent client (CNN + LSTM trained on a recorded
  session of that human);
* **DB** — DeskBench-style record/replay gated on frame similarity;
* **CH** — Chen et al.'s stage-sum RTT reconstruction over a human run;
* **SM** — Slow-Motion benchmarking driven by the intelligent client.

Table 3 is the percentage error of each methodology's mean RTT against
the human run; Figure 7 is the per-benchmark CNN / LSTM inference time of
the intelligent client.

Two equivalent job shapes produce the same rows:

* the **fused** path (``accuracy_jobs`` → one ``accuracy`` job per
  benchmark) trains the client and runs all five methodologies inside a
  single job, exactly as it always has; and
* the **split** path (``split_accuracy_jobs`` → one ``train`` job plus
  five single-methodology ``methodology`` jobs per benchmark) trains the
  client once into a content-addressed
  :mod:`~repro.agents.artifacts` artefact and fans the measurements out
  across any backend; :func:`assemble_accuracy_row` folds the five
  :class:`MethodologyResult` parts back into the fused row.

Both paths resolve training through the artefact registry, pin the same
seed chain (training stream ``config.seed + benchmark_index + 7919``,
methodology run offsets fixed at 0–4 for H/IC/DB/CH/SM), and are
byte-identical — CI diffs the split socket-backend rows against the
fused serial rows with zero tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.agents.artifacts import ArtifactSpec, resolve_artifact
from repro.agents.baselines.chen import ChenMethodology
from repro.agents.baselines.deskbench import DeskBenchClient
from repro.agents.baselines.slowmotion import SlowMotionMethodology
from repro.agents.intelligent_client import IntelligentClient
from repro.agents.recorder import RecordedSession
from repro.apps.registry import create_benchmark, get_profile
from repro.core.measurements import LatencyStats, percentage_error
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.experiments.runner import run_custom
from repro.scenarios.scenario import Scenario, split_agent_name
from repro.scenarios.variants import SessionVariant
from repro.sim.randomness import StreamRandom

__all__ = ["AccuracyRow", "MethodologyResult", "accuracy_jobs",
           "assemble_accuracy_row", "inference_jobs", "inference_time_row",
           "inference_times", "methodology_accuracy",
           "methodology_accuracy_rows", "methodology_result",
           "prepare_intelligent_client", "split_accuracy_jobs",
           "train_for_job"]

#: The methodology labels, in the paper's order.
METHODOLOGIES = ("H", "IC", "DB", "CH", "SM")

#: Each methodology's fixed measurement-run seed offset — the offsets the
#: fused path has always used, and what a split ``methodology`` job
#: carries in its scenario's seed policy to name its methodology.
METHODOLOGY_OFFSETS = {"H": 0, "IC": 1, "DB": 2, "CH": 3, "SM": 4}

_METHOD_BY_OFFSET = {offset: method
                     for method, offset in METHODOLOGY_OFFSETS.items()}


@dataclass
class AccuracyRow:
    """One benchmark's Figure-6 distributions and Table-3 errors."""

    benchmark: str
    rtt_stats: dict[str, LatencyStats] = field(default_factory=dict)
    mean_rtt_ms: dict[str, float] = field(default_factory=dict)
    error_percent: dict[str, float] = field(default_factory=dict)

    def as_table_row(self) -> list[str]:
        cells = [self.benchmark]
        for method in ("IC", "DB", "CH", "SM"):
            cells.append(f"{self.error_percent.get(method, float('nan')):.1f}%")
        return cells


@dataclass
class MethodologyResult:
    """One methodology's RTT distribution for one benchmark.

    The unit of the split Figure-6 path: five of these (one per
    methodology) fold into an :class:`AccuracyRow` via
    :func:`assemble_accuracy_row`.
    """

    benchmark: str
    method: str
    rtt_stats: LatencyStats


def prepare_intelligent_client(benchmark: str, config: ExperimentConfig,
                               seed_offset: int = 0,
                               ) -> tuple[IntelligentClient, RecordedSession]:
    """Train (or warm-load) the intelligent client for a benchmark.

    .. deprecated::
        A shim over the artefact registry, kept because the fused
        executors and older call sites use its signature.  It resolves
        the :class:`~repro.agents.artifacts.ArtifactSpec` the arguments
        have always implied — store hit, memo hit, or train-on-demand —
        and materializes a client in the exact post-training RNG state,
        so callers cannot tell the difference.  New code should resolve
        artefacts directly.
    """
    artifact = resolve_artifact(
        ArtifactSpec.for_config(benchmark, config, seed_offset=seed_offset))
    return artifact.client(), artifact.recording


# -- the five methodologies, one runner each ------------------------------------------
# Byte-identity contract: each runner is the verbatim body of the fused
# path's corresponding block, so fused and split runs execute the same
# calls in the same order with the same seeds.

def _run_h(benchmark: str, config: ExperimentConfig) -> LatencyStats:
    """H: the synthetic human reference player (ground truth)."""
    result = Scenario.single(benchmark, config, seed_offset=0).run()
    return result.reports[0].rtt


def _run_ic(benchmark: str, config: ExperimentConfig,
            client: IntelligentClient) -> LatencyStats:
    """IC: Pictor's intelligent client."""
    result = run_custom(benchmark, config, seed_offset=1,
                        agent_factory=lambda app: client.bound_to(app))
    return result.reports[0].rtt


def _run_db(benchmark: str, config: ExperimentConfig,
            recording: RecordedSession) -> LatencyStats:
    """DB: DeskBench record/replay gated on frame similarity."""
    threshold = DeskBenchClient.sweep_thresholds(
        create_benchmark(benchmark, rng=StreamRandom(config.seed + 31)), recording)
    result = run_custom(
        benchmark, config, seed_offset=2,
        agent_factory=lambda app: DeskBenchClient(
            app, recording, similarity_threshold=threshold,
            rng=StreamRandom(config.seed + 37)))
    return result.reports[0].rtt


def _run_ch(benchmark: str, config: ExperimentConfig) -> LatencyStats:
    """CH: Chen et al. stage-sum estimation over a human-driven run."""
    result = Scenario.single(benchmark, config, seed_offset=3).run()
    chen = ChenMethodology(get_profile(benchmark))
    chen_rtts = chen.estimate_rtts(_tracker_of(result))
    return LatencyStats.from_samples(chen_rtts)


def _run_sm(benchmark: str, config: ExperimentConfig,
            client: IntelligentClient) -> LatencyStats:
    """SM: Slow-Motion benchmarking driven by the intelligent client."""
    slow = SlowMotionMethodology()
    sm_config = slow.session_config(SessionVariant().session_config())
    result = run_custom(benchmark, config, seed_offset=4,
                        agent_factory=lambda app: client.bound_to(app),
                        session_config=sm_config)
    return result.reports[0].rtt


def methodology_result(benchmark: str, config: ExperimentConfig, method: str,
                       train_offset: int = 0,
                       client: Optional[IntelligentClient] = None,
                       recording: Optional[RecordedSession] = None,
                       ) -> MethodologyResult:
    """Run one methodology standalone, byte-identical to its fused block.

    Without a pre-built ``client`` / ``recording`` the trained agent
    resolves from the artefact registry (warm from the ambient store, or
    trained on demand) under the training stream
    ``config.seed + train_offset + 7919`` — the same stream the fused
    path uses when ``train_offset`` is the benchmark's index.
    """
    if method not in METHODOLOGY_OFFSETS:
        raise ValueError(f"unknown methodology {method!r}; "
                         f"known: {', '.join(METHODOLOGIES)}")
    if method in ("IC", "SM", "DB") and (client is None or recording is None):
        artifact = resolve_artifact(
            ArtifactSpec.for_config(benchmark, config, seed_offset=train_offset))
        if recording is None:
            recording = artifact.recording
        if client is None and method in ("IC", "SM"):
            client = artifact.client()
            if method == "SM":
                # The fused path drives SM with the client the IC run just
                # finished with, so the client's inference RNG enters SM
                # mid-stream.  A standalone SM job therefore replays the IC
                # run (result discarded) to advance the stream to exactly
                # that state — determinism makes the replay drift-free, and
                # byte-identity with the fused path is worth the extra run.
                _run_ic(benchmark, config, client)
    if method == "H":
        stats = _run_h(benchmark, config)
    elif method == "IC":
        stats = _run_ic(benchmark, config, client)
    elif method == "DB":
        stats = _run_db(benchmark, config, recording)
    elif method == "CH":
        stats = _run_ch(benchmark, config)
    else:
        stats = _run_sm(benchmark, config, client)
    return MethodologyResult(benchmark=benchmark, method=method,
                             rtt_stats=stats)


def methodology_result_for_job(job: ExperimentJob) -> MethodologyResult:
    """Executor routine of the ``methodology`` job kind.

    The job's scenario names everything: the benchmark (its single
    placement), the methodology (the seed policy's offset, 0–4 =
    H/IC/DB/CH/SM), and for artefact-driven methodologies the training
    offset (the placement agent's ``@K`` parameter, e.g.
    ``intelligent@2`` for the benchmark at index 2).
    """
    scenario = job.scenario
    placement = scenario.placements[0]
    method = _METHOD_BY_OFFSET[scenario.seed.offset]
    _, sep, param = split_agent_name(placement.agent)
    train_offset = int(param) if sep == "@" else 0
    return methodology_result(placement.benchmark, scenario.config, method,
                              train_offset=train_offset)


def assemble_accuracy_row(benchmark: str, parts) -> AccuracyRow:
    """Fold five :class:`MethodologyResult` parts into an AccuracyRow.

    The row is built in the fused path's exact insertion order (H, IC,
    DB, CH, SM; errors IC, DB, CH, SM) so a split row pickles and diffs
    byte-identically against a fused one.
    """
    by_method: dict[str, MethodologyResult] = {}
    for part in parts:
        if part.benchmark != benchmark:
            raise ValueError(f"methodology part for {part.benchmark!r} "
                             f"cannot join a {benchmark!r} row")
        if part.method in by_method:
            raise ValueError(f"duplicate methodology part {part.method!r}")
        by_method[part.method] = part
    missing = [method for method in METHODOLOGIES if method not in by_method]
    if missing:
        raise ValueError(f"missing methodology parts: {', '.join(missing)}")

    row = AccuracyRow(benchmark=benchmark)
    for method in METHODOLOGIES:
        stats = by_method[method].rtt_stats
        row.rtt_stats[method] = stats
        row.mean_rtt_ms[method] = stats.mean * 1e3
    reference = row.mean_rtt_ms["H"]
    for method in ("IC", "DB", "CH", "SM"):
        row.error_percent[method] = percentage_error(row.mean_rtt_ms[method],
                                                     reference)
    return row


def methodology_accuracy(benchmark: str, config: Optional[ExperimentConfig] = None,
                         client: Optional[IntelligentClient] = None,
                         recording: Optional[RecordedSession] = None,
                         ) -> AccuracyRow:
    """Run all five methodologies for one benchmark and compute Table-3 errors.

    The fused path: one trained client (resolved through the artefact
    registry) drives IC and then SM with a continuous RNG stream, with
    H, DB and CH interleaved exactly as the original inline blocks were.
    """
    config = config or ExperimentConfig()
    if client is None or recording is None:
        client, recording = prepare_intelligent_client(benchmark, config)
    parts = [
        MethodologyResult(benchmark, "H", _run_h(benchmark, config)),
        MethodologyResult(benchmark, "IC", _run_ic(benchmark, config, client)),
        MethodologyResult(benchmark, "DB", _run_db(benchmark, config, recording)),
        MethodologyResult(benchmark, "CH", _run_ch(benchmark, config)),
        MethodologyResult(benchmark, "SM", _run_sm(benchmark, config, client)),
    ]
    return assemble_accuracy_row(benchmark, parts)


def train_for_job(benchmark: str, config: ExperimentConfig,
                  seed_offset: int = 0) -> dict:
    """Executor routine of the ``train`` job kind.

    Ensures the artefact for (benchmark, seed offset, training knobs)
    exists — warm store hit or train-then-store — and returns a
    deterministic provenance summary that lands in the result store like
    any other job result.
    """
    spec = ArtifactSpec.for_config(benchmark, config, seed_offset=seed_offset)
    artifact = resolve_artifact(spec)
    return {
        "artifact": spec.content_hash(),
        "benchmark": benchmark,
        "train_seed": spec.train_seed,
        "recording_steps": len(artifact.recording),
        "imitation_error": artifact.client().imitation_error(artifact.recording),
        "size_bytes": len(artifact.to_bytes()),
    }


def accuracy_jobs(benchmarks, config: ExperimentConfig) -> list[ExperimentJob]:
    """One Table-3 methodology comparison per benchmark, as jobs.

    Each job trains the intelligent client for its benchmark (with the
    training seed offset by the benchmark's index, mirroring the
    benchmark harness) and runs all five methodologies.  The rows are
    independent, so the suite parallelizes across benchmarks.
    """
    return [ExperimentJob(Scenario.single(benchmark, config, seed_offset=index),
                          kind="accuracy")
            for index, benchmark in enumerate(benchmarks)]


def split_accuracy_jobs(benchmarks, config: ExperimentConfig) -> list[ExperimentJob]:
    """The split Figure-6 shape: 6 jobs per benchmark, flat.

    For the benchmark at index ``i``: one ``train`` job (scenario seed
    offset ``i`` = the training offset, as in the fused path), then five
    ``methodology`` jobs whose seed offsets are the fixed methodology
    run offsets 0–4 and whose placement agents carry the artefact
    reference (``intelligent@i`` for IC/SM, ``deskbench@i`` for DB,
    ``human`` for H/CH).  The suite drains the train wave first, so
    measurement jobs resolve their artefacts warm on every backend.
    """
    jobs = []
    for index, benchmark in enumerate(benchmarks):
        jobs.append(ExperimentJob(
            Scenario.single(benchmark, config, seed_offset=index),
            kind="train"))
        for method in METHODOLOGIES:
            if method in ("IC", "SM"):
                agent = f"intelligent@{index}"
            elif method == "DB":
                agent = f"deskbench@{index}"
            else:
                agent = "human"
            jobs.append(ExperimentJob(
                Scenario.single(benchmark, config, agent=agent,
                                seed_offset=METHODOLOGY_OFFSETS[method]),
                kind="methodology"))
    return jobs


def methodology_accuracy_rows(benchmarks=None,
                              config: Optional[ExperimentConfig] = None,
                              suite: Optional[ExperimentSuite] = None,
                              ) -> list[AccuracyRow]:
    """Figure 6 / Table 3 rows for several benchmarks, through the suite."""
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    return run_jobs(accuracy_jobs(benchmarks, config), suite)


def _tracker_of(result):
    """The tracker that produced a single-instance result's report."""
    # HostResult does not keep sessions, so the tracker is reached through
    # the report's extra channel when available; fall back to re-deriving
    # stats from the report itself.
    report = result.reports[0]
    tracker = report.extra.get("tracker")
    if tracker is None:
        raise RuntimeError("single-instance run did not expose its tracker")
    return tracker


def inference_time_row(benchmark: str, config: ExperimentConfig,
                       index: int = 0,
                       client: Optional[IntelligentClient] = None,
                       ) -> dict[str, float]:
    """One Figure-7 row: inference times of one benchmark's client.

    ``index`` is the benchmark's position in the figure's list; it
    offsets the training and frame-generation seeds exactly as the
    original serial loop did, so routing through jobs is bit-identical.
    The client resolves through the artefact registry, so a warm store
    makes this row training-free.
    """
    if client is None:
        client, _recording = prepare_intelligent_client(benchmark, config,
                                                        seed_offset=index)
    # Exercise inference on freshly generated frames.
    app = create_benchmark(benchmark, rng=StreamRandom(config.seed + 997 + index))
    for _ in range(40):
        frame = app.advance(1.0 / 30.0)
        client.decide(frame, now=0.0)
    return {
        "cv_time_ms": client.mean_cv_time() * 1e3,
        "input_generation_time_ms": client.mean_rnn_time() * 1e3,
        "achievable_apm": client.achievable_apm(),
    }


def inference_jobs(benchmarks, config: ExperimentConfig) -> list[ExperimentJob]:
    """One Figure-7 inference measurement per benchmark, as jobs."""
    return [ExperimentJob(Scenario.single(benchmark, config, seed_offset=index),
                          kind="inference")
            for index, benchmark in enumerate(benchmarks)]


def inference_times(benchmarks=None, config: Optional[ExperimentConfig] = None,
                    clients: Optional[dict[str, IntelligentClient]] = None,
                    suite: Optional[ExperimentSuite] = None,
                    ) -> dict[str, dict[str, float]]:
    """Figure 7: CNN (CV) and LSTM (input-generation) time per benchmark.

    With pre-trained ``clients`` the rows are computed in-process (the
    trained models cannot be described declaratively); otherwise each
    benchmark becomes an independent job on the suite.
    """
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks or config.benchmarks)
    if clients:
        return {benchmark: inference_time_row(benchmark, config, index=index,
                                              client=clients.get(benchmark))
                for index, benchmark in enumerate(benchmarks)}
    results = run_jobs(inference_jobs(benchmarks, config), suite)
    return dict(zip(benchmarks, results))
