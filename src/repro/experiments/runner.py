"""Deprecated testbed-construction helpers, now thin Scenario shims.

Everything these helpers used to assemble by hand — host seed, pictor
switches, session pipeline booleans — is described declaratively by a
:class:`~repro.scenarios.Scenario`; the helpers survive as shims so
existing callers keep working, and each delegates to
:meth:`Scenario.run`, which is the same routine the parallel executor
ships to worker processes.  A caller migrating to the scenario API is
therefore guaranteed bit-identical results.

Runs that need a trained agent or a bespoke :class:`SessionConfig`
(closures cannot cross process boundaries) go through
:func:`run_custom`, the one helper that still builds its host directly.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

from repro.experiments.config import ExperimentConfig
from repro.scenarios.scenario import Scenario
from repro.scenarios.variants import SessionVariant
from repro.server.host import CloudHost, HostConfig, HostResult
from repro.server.session import SessionConfig

__all__ = ["build_host", "run_colocated", "run_custom", "run_mixed_pair",
           "run_single"]


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.experiments.runner.{name} is deprecated; construct a "
        f"repro.scenarios.Scenario and call Scenario.run() instead",
        DeprecationWarning, stacklevel=3)


def build_host(config: ExperimentConfig, seed_offset: int = 0,
               containerized: bool = False,
               measurement_enabled: bool = True,
               double_buffered_queries: bool = True) -> CloudHost:
    """Deprecated: create an empty testbed host with the experiment's
    settings.  Use :meth:`Scenario.build_host` (which also places the
    instances) instead."""
    _deprecated("build_host")
    variant = SessionVariant(measurement_enabled=measurement_enabled,
                             double_buffered_queries=double_buffered_queries)
    host_config = HostConfig(
        seed=config.seed + seed_offset,
        pictor=variant.pictor_config(),
        containerized=containerized,
    )
    return CloudHost(host_config)


def make_session_config(optimized: bool = False,
                        measurement_enabled: bool = True,
                        double_buffered_queries: bool = True,
                        slow_motion: bool = False) -> SessionConfig:
    """Deprecated: build a session configuration from booleans.  Use the
    named-variant registry (:func:`repro.scenarios.session_variant`)."""
    _deprecated("make_session_config")
    variant = SessionVariant(
        measurement_enabled=measurement_enabled,
        double_buffered_queries=double_buffered_queries,
        memoize_window_attributes=optimized,
        two_step_frame_copy=optimized,
        slow_motion=slow_motion,
    )
    return variant.session_config()


def _empty_host(config: ExperimentConfig, variant: SessionVariant,
                seed_offset: int, containerized: bool) -> CloudHost:
    """A testbed host with no instances placed yet, configured exactly as
    :meth:`Scenario.build_host` configures its host (same seed, machine,
    pictor switches), so custom-placed runs with default knobs stay
    bit-identical to the declarative path."""
    return CloudHost(HostConfig(
        seed=config.seed + seed_offset,
        pictor=variant.pictor_config(),
        containerized=containerized,
    ))


def run_custom(benchmark: str, config: ExperimentConfig,
               agent_factory: Optional[Callable] = None,
               session_config: Optional[SessionConfig] = None,
               seed_offset: int = 0,
               variant: Optional[SessionVariant] = None,
               containerized: bool = False) -> HostResult:
    """Run one instance with a bespoke agent and/or session config.

    This is the escape hatch for runs the declarative scenario model
    cannot express (trained agents and hand-built session configs are
    closures/objects that cannot cross a process boundary).  With the
    default agent and session config it delegates to the scenario path
    and is bit-identical to it.
    """
    variant = variant or SessionVariant()
    if agent_factory is None and session_config is None:
        return Scenario.single(benchmark, config, seed_offset=seed_offset,
                               variant=variant,
                               containerized=containerized).run()
    host = _empty_host(config, variant, seed_offset, containerized)
    if session_config is None:
        session_config = variant.session_config()
    host.add_instance(benchmark, agent_factory=agent_factory,
                      session_config=session_config)
    return host.run(duration=config.duration_s, warmup=config.warmup_s)


def run_single(benchmark: str, config: ExperimentConfig,
               agent_factory: Optional[Callable] = None,
               session_config: Optional[SessionConfig] = None,
               seed_offset: int = 0,
               containerized: bool = False,
               measurement_enabled: bool = True,
               double_buffered_queries: bool = True) -> HostResult:
    """Deprecated: run one benchmark instance alone on the server."""
    _deprecated("run_single")
    variant = SessionVariant(measurement_enabled=measurement_enabled,
                             double_buffered_queries=double_buffered_queries)
    return run_custom(benchmark, config, agent_factory=agent_factory,
                      session_config=session_config, seed_offset=seed_offset,
                      variant=variant, containerized=containerized)


def run_colocated(benchmark: str, instances: int, config: ExperimentConfig,
                  agent_factory: Optional[Callable] = None,
                  session_config: Optional[SessionConfig] = None,
                  seed_offset: int = 0,
                  containerized: bool = False) -> HostResult:
    """Deprecated: run ``instances`` copies of one benchmark together."""
    _deprecated("run_colocated")
    if instances < 1:
        raise ValueError("instances must be at least 1")
    if agent_factory is None and session_config is None:
        return Scenario.colocated(benchmark, instances, config,
                                  seed_offset=seed_offset,
                                  containerized=containerized).run()
    host = _empty_host(config, SessionVariant(), seed_offset, containerized)
    for _ in range(instances):
        host.add_instance(benchmark, agent_factory=agent_factory,
                          session_config=session_config)
    return host.run(duration=config.duration_s, warmup=config.warmup_s)


def run_mixed_pair(benchmark_a: str, benchmark_b: str, config: ExperimentConfig,
                   seed_offset: int = 0,
                   containerized: bool = False) -> HostResult:
    """Deprecated: run two different benchmarks together (Section 5.3)."""
    _deprecated("run_mixed_pair")
    return Scenario.mixed((benchmark_a, benchmark_b), config,
                          seed_offset=seed_offset,
                          containerized=containerized).run()
