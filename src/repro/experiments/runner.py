"""Shared testbed-construction helpers used by every experiment generator.

The declarative path (no custom agent, no hand-built session config) is
expressed as an :class:`~repro.experiments.jobs.ExperimentJob` and runs
through :func:`~repro.experiments.jobs.execute_job` — the same routine
the parallel executor ships to worker processes — so a figure generator
calling :func:`run_single` and a suite replaying the equivalent job are
guaranteed to agree bit-for-bit.  Runs that need a trained agent or a
bespoke :class:`SessionConfig` (closures cannot cross process
boundaries) fall back to building the host directly.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.pictor import PictorConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.jobs import ExperimentJob, JobVariant, execute_job
from repro.graphics.pipeline import PipelineConfig
from repro.server.host import CloudHost, HostConfig, HostResult
from repro.server.session import SessionConfig

__all__ = ["build_host", "run_colocated", "run_mixed_pair", "run_single"]


def build_host(config: ExperimentConfig, seed_offset: int = 0,
               containerized: bool = False,
               measurement_enabled: bool = True,
               double_buffered_queries: bool = True) -> CloudHost:
    """Create an empty testbed host with the experiment's settings."""
    host_config = HostConfig(
        seed=config.seed + seed_offset,
        pictor=PictorConfig(measurement_enabled=measurement_enabled,
                            double_buffered_queries=double_buffered_queries),
        containerized=containerized,
    )
    return CloudHost(host_config)


def make_session_config(optimized: bool = False,
                        measurement_enabled: bool = True,
                        double_buffered_queries: bool = True,
                        slow_motion: bool = False) -> SessionConfig:
    """Build a session configuration for the common experiment variants."""
    pipeline = PipelineConfig(
        measurement_enabled=measurement_enabled,
        double_buffered_queries=double_buffered_queries,
        memoize_window_attributes=optimized,
        two_step_frame_copy=optimized,
    )
    session = SessionConfig(pipeline=pipeline, slow_motion=slow_motion)
    return session


def run_single(benchmark: str, config: ExperimentConfig,
               agent_factory: Optional[Callable] = None,
               session_config: Optional[SessionConfig] = None,
               seed_offset: int = 0,
               containerized: bool = False,
               measurement_enabled: bool = True,
               double_buffered_queries: bool = True) -> HostResult:
    """Run one benchmark instance alone on the server."""
    if agent_factory is None and session_config is None:
        return execute_job(ExperimentJob(
            benchmarks=(benchmark,), config=config, seed_offset=seed_offset,
            variant=JobVariant(containerized=containerized,
                               measurement_enabled=measurement_enabled,
                               double_buffered_queries=double_buffered_queries)))
    host = build_host(config, seed_offset=seed_offset, containerized=containerized,
                      measurement_enabled=measurement_enabled,
                      double_buffered_queries=double_buffered_queries)
    host.add_instance(benchmark, agent_factory=agent_factory,
                      session_config=session_config)
    return host.run(duration=config.duration_s, warmup=config.warmup_s)


def run_colocated(benchmark: str, instances: int, config: ExperimentConfig,
                  agent_factory: Optional[Callable] = None,
                  session_config: Optional[SessionConfig] = None,
                  seed_offset: int = 0,
                  containerized: bool = False) -> HostResult:
    """Run ``instances`` copies of the same benchmark on one server."""
    if instances < 1:
        raise ValueError("instances must be at least 1")
    if agent_factory is None and session_config is None:
        return execute_job(ExperimentJob(
            benchmarks=(benchmark,) * instances, config=config,
            seed_offset=seed_offset,
            variant=JobVariant(containerized=containerized)))
    host = build_host(config, seed_offset=seed_offset, containerized=containerized)
    for _ in range(instances):
        host.add_instance(benchmark, agent_factory=agent_factory,
                          session_config=session_config)
    return host.run(duration=config.duration_s, warmup=config.warmup_s)


def run_mixed_pair(benchmark_a: str, benchmark_b: str, config: ExperimentConfig,
                   seed_offset: int = 0,
                   containerized: bool = False) -> HostResult:
    """Run two different benchmarks together on one server (Section 5.3)."""
    return execute_job(ExperimentJob(
        benchmarks=(benchmark_a, benchmark_b), config=config,
        seed_offset=seed_offset,
        variant=JobVariant(containerized=containerized)))
