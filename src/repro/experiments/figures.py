"""The figure registry: every paper artefact as (jobs, aggregate) pair.

Each :class:`FigureSpec` declares the experiment jobs a figure needs and
an aggregate that folds the job results into printable rows.  The
``python -m repro.experiments`` CLI and the benchmark harnesses both go
through :func:`run_figure`, so a figure executes identically whether it
runs serially, fans out over worker processes, or replays from cache —
and figures that slice the same testbed runs (10–13 share one sweep,
8–9 share the characterization runs) deduplicate automatically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Optional

from repro.experiments import (
    ablations,
    accuracy,
    architecture,
    characterization,
    containers,
    feature_matrix,
    mixed,
    optimizations,
    overhead,
    power,
    scaling,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.mixes import n_way_mixes

__all__ = ["FIGURES", "FigureSpec", "figure_names", "run_figure"]

@dataclass(frozen=True)
class FigureSpec:
    """One paper artefact: its jobs and its result aggregation."""

    name: str
    title: str
    build_jobs: Callable[[ExperimentConfig], list[ExperimentJob]]
    aggregate: Callable[[ExperimentConfig, list], list[dict[str, object]]]


def _rows(dataclass_rows) -> list[dict[str, object]]:
    return [asdict(row) for row in dataclass_rows]


# -- per-figure jobs / aggregates -----------------------------------------------------
def _sweep_figure(jobs_fn, points_fn, project):
    """A figure that runs one colocation sweep per configured benchmark."""
    def build_jobs(config: ExperimentConfig) -> list[ExperimentJob]:
        jobs = []
        for benchmark in config.benchmarks:
            jobs.extend(jobs_fn(benchmark, config))
        return jobs

    def aggregate(config: ExperimentConfig, results) -> list[dict[str, object]]:
        rows = []
        per_bench = config.max_instances
        for index, benchmark in enumerate(config.benchmarks):
            chunk = results[index * per_bench:(index + 1) * per_bench]
            for point in points_fn(benchmark, chunk):
                rows.append({"benchmark": benchmark, **project(point)})
        return rows

    return build_jobs, aggregate


def _fig06_jobs(config):
    return accuracy.accuracy_jobs(config.benchmarks, config)


def _fig06_cells(row) -> dict[str, object]:
    cells: dict[str, object] = {"benchmark": row.benchmark}
    cells.update({f"{m}_rtt_ms": row.mean_rtt_ms[m]
                  for m in accuracy.METHODOLOGIES})
    cells.update({f"{m}_error_pct": row.error_percent[m]
                  for m in ("IC", "DB", "CH", "SM")})
    return cells


def _fig06_aggregate(config, results):
    return [_fig06_cells(row) for row in results]


def _fig06_split_jobs(config):
    return accuracy.split_accuracy_jobs(config.benchmarks, config)


def _fig06_split_aggregate(config, results):
    # Six results per benchmark: the train-job summary (dropped — it
    # exists to drain before the measurement wave) then one
    # MethodologyResult per methodology, reassembled into the exact row
    # the fused fig06 path prints.
    rows = []
    per_bench = 1 + len(accuracy.METHODOLOGIES)
    for index, benchmark in enumerate(config.benchmarks):
        chunk = results[index * per_bench:(index + 1) * per_bench]
        row = accuracy.assemble_accuracy_row(benchmark, chunk[1:])
        rows.append(_fig06_cells(row))
    return rows


def _fig07_jobs(config):
    return accuracy.inference_jobs(config.benchmarks, config)


def _fig07_aggregate(config, results):
    return [{"benchmark": benchmark, **row}
            for benchmark, row in zip(config.benchmarks, results)]


def _sec4_jobs(config):
    return overhead.overhead_jobs(config.benchmarks, config)


def _sec4_aggregate(config, results):
    summary = overhead.framework_overhead_from_results(config.benchmarks, results)
    return [{"benchmark": row.benchmark, "native_fps": row.native_fps,
             "instrumented_fps": row.instrumented_fps,
             "overhead_pct": row.overhead_percent}
            for row in summary.rows]


def _characterization_jobs(config):
    return characterization.characterization_jobs(config.benchmarks, config)


def _fig08_aggregate(config, results):
    return _rows(characterization.utilization_from_results(
        config.benchmarks, results))


def _fig09_aggregate(config, results):
    return _rows(characterization.bandwidth_from_results(
        config.benchmarks, results))


def _fig17_jobs(config):
    jobs = []
    for benchmark in config.benchmarks:
        jobs.extend(power.power_jobs(benchmark, config))
    return jobs


def _fig17_aggregate(config, results):
    rows = []
    per_bench = config.max_instances
    for index, benchmark in enumerate(config.benchmarks):
        chunk = results[index * per_bench:(index + 1) * per_bench]
        points = power.power_points_from_results(benchmark, chunk)
        for point in points:
            rows.append({**asdict(point),
                         "reduction_pct": point.reduction_vs(points[0])})
    return rows


def _fig18_jobs(config):
    return mixed.pair_fps_jobs(mixed.all_pairs(config.benchmarks), config)


def _fig18_aggregate(config, results):
    pairs = mixed.all_pairs(config.benchmarks)
    rows = []
    for result in mixed.pair_fps_from_results(pairs, results):
        left, right = result.pair
        rows.append({"pair": f"{left}+{right}",
                     "fps_a": result.client_fps[left],
                     "fps_b": result.client_fps[right],
                     "both_meet_qos": result.both_meet_qos,
                     "total_power_watts": result.total_power_watts})
    return rows


def _fig19_jobs(config):
    co_runners = [b for b in config.benchmarks if b != "D2"]
    return mixed.contentiousness_jobs("D2", co_runners, config)


def _fig19_aggregate(config, results):
    co_runners = [b for b in config.benchmarks if b != "D2"]
    return _rows(mixed.contentiousness_from_results("D2", co_runners, results))


def _nway_jobs(config):
    return mixed.n_way_jobs(n_way_mixes(config))


def _nway_aggregate(config, results):
    return mixed.n_way_fps_from_results(n_way_mixes(config), results)


def _fig20_jobs(config):
    return containers.container_jobs(config.benchmarks, config)


def _fig20_aggregate(config, results):
    summary = containers.container_overhead_from_results(config.benchmarks, results)
    return [{"benchmark": row.benchmark,
             "bare_fps": row.bare_fps, "container_fps": row.container_fps,
             "fps_overhead_pct": row.fps_overhead_percent,
             "rtt_overhead_pct": row.rtt_overhead_percent,
             "gpu_render_overhead_pct": row.gpu_render_overhead_percent}
            for row in summary.rows]


def _fig22_jobs(config):
    return optimizations.optimization_jobs(config.benchmarks, config)


def _fig22_aggregate(config, results):
    summary = optimizations.optimization_rows_from_results(
        config.benchmarks, results)
    return [{"benchmark": row.benchmark,
             "baseline_server_fps": row.baseline_server_fps,
             "optimized_server_fps": row.optimized_server_fps,
             "server_fps_gain_pct": row.server_fps_improvement_percent,
             "client_fps_gain_pct": row.client_fps_improvement_percent,
             "rtt_reduction_pct": row.rtt_reduction_percent}
            for row in summary.rows]


def _ablation_jobs(config):
    return ablations.contention_jobs("D2", config.max_instances, config)


def _ablation_aggregate(config, results):
    return [ablations.contention_from_results(results)]


def _table4_jobs(config):
    return []


def _table4_aggregate(config, results):
    return feature_matrix.feature_matrix()


_SCALING_PROJECTIONS = {
    "fig10": lambda p: {"instances": p.instances, "server_fps": p.server_fps,
                        "client_fps": p.client_fps},
    "fig11": lambda p: {"instances": p.instances, "rtt_ms": p.rtt_ms,
                        **{f"{k}_ms": v for k, v in p.rtt_breakdown_ms.items()}},
    "fig12": lambda p: {"instances": p.instances,
                        **{f"{k}_ms": v for k, v in p.server_breakdown_ms.items()}},
    "fig13": lambda p: {"instances": p.instances,
                        **{f"{k}_ms": v
                           for k, v in p.application_breakdown_ms.items()}},
}

_ARCHITECTURE_PROJECTIONS = {
    "fig14": lambda p: {"instances": p.instances, **p.topdown},
    "fig15": lambda p: {"instances": p.instances, "l3_miss_rate": p.l3_miss_rate},
    "fig16": lambda p: {"instances": p.instances,
                        "gpu_l2_miss_rate": p.gpu_l2_miss_rate,
                        "gpu_texture_miss_rate": p.gpu_texture_miss_rate},
}

_SCALING_TITLES = {
    "fig10": "Figure 10: server / client FPS vs. colocated instances",
    "fig11": "Figure 11: RTT breakdown vs. colocated instances",
    "fig12": "Figure 12: server-time breakdown vs. colocated instances",
    "fig13": "Figure 13: application-time breakdown vs. colocated instances",
    "fig14": "Figure 14: Top-Down cycle breakdown vs. colocated instances",
    "fig15": "Figure 15: L3 miss rate vs. colocated instances",
    "fig16": "Figure 16: GPU cache miss rates vs. colocated instances",
}


def _build_registry() -> dict[str, FigureSpec]:
    registry: dict[str, FigureSpec] = {}

    def add(name, title, build_jobs, aggregate):
        registry[name] = FigureSpec(name=name, title=title,
                                    build_jobs=build_jobs, aggregate=aggregate)

    add("fig06", "Figure 6 / Table 3: methodology accuracy",
        _fig06_jobs, _fig06_aggregate)
    add("fig06-split", "Figure 6 / Table 3: methodology accuracy",
        _fig06_split_jobs, _fig06_split_aggregate)
    add("fig07", "Figure 7: intelligent-client inference times",
        _fig07_jobs, _fig07_aggregate)
    add("sec4", "Section 4: measurement framework overhead",
        _sec4_jobs, _sec4_aggregate)
    add("fig08", "Figure 8: CPU / GPU utilization per benchmark",
        _characterization_jobs, _fig08_aggregate)
    add("fig09", "Figure 9: network / PCIe bandwidth per benchmark",
        _characterization_jobs, _fig09_aggregate)
    for name, project in _SCALING_PROJECTIONS.items():
        build_jobs, aggregate = _sweep_figure(
            scaling.scaling_jobs, scaling.scaling_points_from_results, project)
        add(name, _SCALING_TITLES[name], build_jobs, aggregate)
    for name, project in _ARCHITECTURE_PROJECTIONS.items():
        build_jobs, aggregate = _sweep_figure(
            architecture.architecture_jobs,
            architecture.architecture_points_from_results, project)
        add(name, _SCALING_TITLES[name], build_jobs, aggregate)
    add("fig17", "Figure 17: per-instance power under colocation",
        _fig17_jobs, _fig17_aggregate)
    add("fig18", "Figure 18: mixed-pair client FPS",
        _fig18_jobs, _fig18_aggregate)
    add("fig19", "Figure 19: Dota 2 contentiousness",
        _fig19_jobs, _fig19_aggregate)
    add("nway", "Beyond the paper: 3/4-way mixed-instance client FPS",
        _nway_jobs, _nway_aggregate)
    add("fig20", "Figure 20: container overhead",
        _fig20_jobs, _fig20_aggregate)
    add("fig22", "Figure 22: frame-copy optimization gains",
        _fig22_jobs, _fig22_aggregate)
    add("ablation", "Ablation: contention model on/off",
        _ablation_jobs, _ablation_aggregate)
    add("table4", "Table 4: tool capability matrix",
        _table4_jobs, _table4_aggregate)
    return registry


#: Every reproducible artefact, keyed by CLI name.
FIGURES: dict[str, FigureSpec] = _build_registry()


def figure_names() -> list[str]:
    return list(FIGURES)


def run_figure(name: str, config: Optional[ExperimentConfig] = None,
               suite: Optional[ExperimentSuite] = None) -> list[dict[str, object]]:
    """Run one figure end to end and return its printable rows."""
    try:
        spec = FIGURES[name]
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; "
                       f"known: {', '.join(figure_names())}") from None
    config = config or ExperimentConfig()
    results = run_jobs(spec.build_jobs(config), suite)
    return spec.aggregate(config, results)
