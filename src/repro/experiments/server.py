"""The queue server: the socket transport's stateless-by-design front end.

``python -m repro.experiments serve --queue DIR --port N`` exposes a
:class:`~repro.experiments.queue.DirectoryQueue` (and therefore its
provenance-stamped SQLite :class:`~repro.experiments.store.ResultStore`)
over TCP, speaking the framed protocol of
:mod:`repro.experiments.protocol`.  The server deliberately owns **no
durable state of its own**: every job, claim, result and failure marker
lives in the queue directory exactly as the shared-filesystem transport
left them, so

* directory workers and socket workers can drain one queue side by side,
* semantics (idempotent content-addressed submit, priority order, lease
  recovery, provenance stamps) are inherited from ``DirectoryQueue``
  rather than reimplemented, and
* a server crash or restart loses nothing — a new server adopts the
  directory as found, re-registers the workers named in the claim files,
  and carries on.

Two things are layered on top of the directory protocol:

**Worker liveness.**  Workers heartbeat (:class:`MessageType.HEARTBEAT`)
every couple of seconds, naming the claims they are actually executing.
A heartbeat refreshes those claims' lease clocks, so an in-flight job
outlives any fixed lease while its worker is alive; a worker that
misses heartbeats for ``heartbeat_timeout_s`` has **all** its claims
requeued immediately — crashed-worker recovery in seconds instead of a
full lease.  Claims from workers that never heartbeat (plain directory
workers) still age out via ``requeue_stale(lease_s)``.

**Cost-ordered claims.**  Each submitter packs its own batch largest
-estimated-cost first, but with several submitters sharing one queue the
interleaving is arbitrary.  The server re-establishes the global packing
order at claim time: it remembers each submitted job's ``(kind,
cost_units)`` stamp, calibrates a :class:`~repro.experiments.cost.
CostModel` from the queue's result store, and hands out the pending job
with the largest estimate (ties and unknown-cost jobs fall back to
priority order).  Ordering never changes a result — only how well the
fleet is packed.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time
from collections import deque
from pathlib import Path
from typing import Optional, Union

from repro.experiments.cost import CostCalibration
from repro.experiments.protocol import (
    FrameError,
    MessageType,
    recv_frame,
    send_frame,
)
from repro.experiments.queue import DirectoryQueue

__all__ = ["QueueServer"]

logger = logging.getLogger(__name__)

#: A worker silent for this long has its claims requeued immediately.
DEFAULT_HEARTBEAT_TIMEOUT_S = 15.0

#: How often the sweeper checks heartbeats and stale leases.
DEFAULT_SWEEP_INTERVAL_S = 1.0


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a loop of request frames, each answered OK/ERROR."""

    def handle(self) -> None:
        server: QueueServer = self.server.queue_server
        server._track_connection(self.request)
        try:
            while True:
                try:
                    frame = recv_frame(self.request)
                except FrameError:
                    # Already logged with the documented line; the
                    # stream cannot be trusted past a bad frame.
                    break
                except OSError:
                    break
                if frame is None:  # clean close between frames
                    break
                kind, payload = frame
                try:
                    reply = server._dispatch(kind, payload or {})
                except Exception as error:  # surfaced to the client
                    logger.exception("queue server: %s request failed", kind.name)
                    reply_kind, reply = MessageType.ERROR, {"error": repr(error)}
                else:
                    reply_kind = MessageType.OK
                try:
                    send_frame(self.request, reply_kind, reply)
                except OSError:
                    break
        finally:
            server._untrack_connection(self.request)


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True  # restarts rebind immediately
    daemon_threads = True
    queue_server: "QueueServer"


class QueueServer:
    """Serve a :class:`DirectoryQueue` over the framed TCP protocol.

    ``start()`` runs the accept loop and the heartbeat/lease sweeper on
    daemon threads and returns; ``serve_forever()`` blocks (the CLI).
    ``address`` is the bound ``host:port`` — with ``port=0`` the OS
    picks a free port, so tests and suite-owned servers never collide.
    """

    def __init__(
        self,
        queue: Union[DirectoryQueue, Path, str],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_s: float = 300.0,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        sweep_interval_s: float = DEFAULT_SWEEP_INTERVAL_S,
    ):
        self.queue = queue if isinstance(queue, DirectoryQueue) else DirectoryQueue(queue)
        self.lease_s = lease_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.sweep_interval_s = sweep_interval_s
        #: worker id -> monotonic time of the last claim/heartbeat/
        #: complete/fail.  Seeded from the claim files on disk so a
        #: restarted server inherits responsibility for claims handed
        #: out by its predecessor.
        self._workers: dict[str, float] = {
            worker: time.monotonic() for worker in self.queue.claimed_workers()
        }
        #: key -> (kind, cost_units) of jobs submitted through this
        #: server; feeds cost-ordered claiming.  Jobs pending from
        #: before a restart are absent and drain in priority order,
        #: which already encodes their submitter's packing.
        self._costs: dict[str, tuple[str, float]] = {}
        self._calibration = CostCalibration.from_cache(self.queue.results)
        #: Cost-ordered ``(key, path)`` cache of the pending directory.
        #: Claims pop from it in O(1); a full rescan happens only when
        #: the pending *set* changes shape (submits, requeues) — not per
        #: claim, which would be quadratic in queue depth.  Staleness is
        #: safe: a cached file a directory worker already took just
        #: fails its atomic claim and is skipped.
        self._pending: deque[tuple[str, Path]] = deque()
        self._pending_dirty = True
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._connections: set = set()
        self._threads: list[threading.Thread] = []
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.queue_server = self
        self.host, self.port = self._tcp.server_address[:2]

    # -- lifecycle --------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "QueueServer":
        """Run the accept loop and the sweeper in background threads."""
        for name, target in (("accept", self._tcp.serve_forever), ("sweep", self._sweep_loop)):
            thread = threading.Thread(
                target=target, daemon=True, name=f"queue-server-{name}-{self.port}"
            )
            thread.start()
            self._threads.append(thread)
        logger.info("queue server listening on %s (queue: %s)", self.address, self.queue.root)
        return self

    def serve_forever(self) -> None:
        """Block serving requests (the ``serve`` CLI entry point)."""
        self.start()
        try:
            self._stop.wait()
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop accepting, sever live connections, stop the sweeper.

        The queue directory is left exactly as-is: outstanding claims
        are recovered by the next server (adopted via the claim files)
        or by plain lease expiry — a restart degrades to a requeue.
        """
        self._stop.set()
        self._tcp.shutdown()
        self._tcp.server_close()
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "QueueServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _track_connection(self, connection) -> None:
        with self._lock:
            self._connections.add(connection)

    def _untrack_connection(self, connection) -> None:
        with self._lock:
            self._connections.discard(connection)

    # -- the sweeper ------------------------------------------------------------------
    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.sweep_interval_s):
            try:
                self.sweep()
            except Exception:
                logger.exception("queue server sweep failed")

    def sweep(self) -> list[str]:
        """One liveness/lease pass; returns every requeued key.

        Claims of workers that missed their heartbeats requeue
        immediately; claims from workers this server has never heard of
        (e.g. directory workers) fall back to lease expiry.
        """
        requeued: list[str] = []
        now = time.monotonic()
        with self._lock:
            for worker, last_seen in list(self._workers.items()):
                if now - last_seen < self.heartbeat_timeout_s:
                    continue
                del self._workers[worker]
                keys = self.queue.requeue_worker(worker)
                if keys:
                    logger.warning(
                        "worker %s missed heartbeats for %.1fs; requeued %d claimed job(s)",
                        worker,
                        now - last_seen,
                        len(keys),
                    )
                requeued.extend(keys)
            requeued.extend(self.queue.requeue_stale(self.lease_s))
            if requeued:
                self._pending_dirty = True
        return requeued

    # -- request dispatch -------------------------------------------------------------
    def _dispatch(self, kind: MessageType, payload: dict) -> dict:
        handler = self._HANDLERS.get(kind)
        if handler is None:
            raise ValueError(f"unexpected request type {kind.name}")
        with self._lock:
            return handler(self, payload)

    def _mark_alive(self, worker: Optional[str]) -> None:
        if worker:
            self._workers[worker] = time.monotonic()

    def _op_submit(self, payload: dict) -> dict:
        jobs = payload.get("jobs")
        if jobs is None:
            jobs = [payload["job"]]
        keys = self.queue.submit_many(jobs)
        for key, job in zip(keys, jobs):
            self._costs[key] = (job.kind, job.cost_units())
        self._pending_dirty = True
        return {"keys": keys}

    def _refresh_pending(self) -> None:
        """Rebuild the claim-order cache: largest estimate first.

        Unknown-cost keys (pending from before a restart, or submitted
        straight into the directory) rank ahead in their priority order
        — the order their submitter already packed them in.  Estimates
        are frozen per refresh; calibration updates between refreshes
        only affect ordering quality, never correctness.
        """
        model = self._calibration.model()
        ranked = []
        for position, (key, path) in enumerate(self.queue.pending_files()):
            info = self._costs.get(key)
            estimate = model.estimate_units(*info) if info is not None else float("inf")
            ranked.append((-estimate, position, key, path))
        ranked.sort(key=lambda entry: entry[:2])
        self._pending = deque((key, path) for _, _, key, path in ranked)
        self._pending_dirty = False

    def _op_claim(self, payload: dict) -> dict:
        worker = payload.get("worker")
        self._mark_alive(worker)
        while True:
            if self._pending_dirty or not self._pending:
                self._refresh_pending()
                if not self._pending:
                    return {"claimed": None}
            key, path = self._pending.popleft()
            claimed = self.queue.claim_file(path, worker)
            if claimed is not None:
                claim = {"key": claimed.key, "job": claimed.job, "worker": claimed.worker_id}
                return {"claimed": claim}
            # A directory worker raced us to that file (or it was
            # corrupt and became a failure marker); try the next one.

    def _op_complete(self, payload: dict) -> dict:
        worker = payload.get("worker")
        self._mark_alive(worker)
        job = payload["job"]
        runtime_s = payload.get("runtime_s")
        self.queue.results.put(job, payload["result"], runtime_s=runtime_s)
        self.queue.release_claim(payload["key"], worker)
        self._calibration.observe(job.kind, job.cost_units(), runtime_s)
        self._costs.pop(payload["key"], None)
        return {}

    def _op_fail(self, payload: dict) -> dict:
        worker = payload.get("worker")
        self._mark_alive(worker)
        self.queue.record_failure(
            payload["key"],
            worker,
            payload.get("error", "unknown error"),
            payload.get("traceback", ""),
        )
        self.queue.release_claim(payload["key"], worker)
        return {}

    def _op_heartbeat(self, payload: dict) -> dict:
        worker = payload.get("worker")
        self._mark_alive(worker)
        refreshed = self.queue.heartbeat(worker, keys=payload.get("keys"))
        return {"refreshed": refreshed}

    def _op_counts(self, payload: dict) -> dict:
        counts = self.queue.counts()
        return {"counts": counts, "workers": len(self._workers)}

    def _op_requeue(self, payload: dict) -> dict:
        if payload.get("worker") is not None:
            keys = self.queue.requeue_worker(payload["worker"])
            self._workers.pop(payload["worker"], None)
        else:
            keys = self.queue.requeue_stale(payload.get("lease_s", self.lease_s))
        if keys:
            self._pending_dirty = True
        return {"keys": keys}

    def _op_result(self, payload: dict) -> dict:
        return {"entry": self.queue.result_entry(payload["key"])}

    def _op_failure(self, payload: dict) -> dict:
        return {"marker": self.queue.failure(payload["key"])}

    def _op_invalidate(self, payload: dict) -> dict:
        self.queue.invalidate(payload["key"])
        return {}

    def _op_artifact_get(self, payload: dict) -> dict:
        if payload.get("rows"):
            return {"rows": self.queue.results.artifact_rows(payload.get("benchmark"))}
        return {
            "payload": self.queue.results.get_artifact_bytes(
                payload["hash"], schema=payload.get("schema")
            )
        }

    def _op_artifact_put(self, payload: dict) -> dict:
        stored = self.queue.results.put_artifact_bytes(
            payload["hash"],
            payload["payload"],
            schema=payload["schema"],
            kind=payload.get("kind", "agent"),
            benchmark=payload.get("benchmark"),
            spec=payload.get("spec"),
            runtime_s=payload.get("runtime_s"),
        )
        return {"stored": stored}

    _HANDLERS = {
        MessageType.SUBMIT: _op_submit,
        MessageType.CLAIM: _op_claim,
        MessageType.COMPLETE: _op_complete,
        MessageType.FAIL: _op_fail,
        MessageType.HEARTBEAT: _op_heartbeat,
        MessageType.COUNTS: _op_counts,
        MessageType.REQUEUE: _op_requeue,
        MessageType.RESULT: _op_result,
        MessageType.FAILURE: _op_failure,
        MessageType.INVALIDATE: _op_invalidate,
        MessageType.ARTIFACT_GET: _op_artifact_get,
        MessageType.ARTIFACT_PUT: _op_artifact_put,
    }
