"""``SocketQueue``: the TCP transport behind ``backend="socket"``.

A drop-in :class:`~repro.experiments.queue.WorkQueue` whose every method
is one request frame to a :class:`~repro.experiments.server.QueueServer`
(see :mod:`repro.experiments.protocol` for the wire format).  The server
fronts a plain :class:`~repro.experiments.queue.DirectoryQueue`, so the
semantics — idempotent content-addressed submit, priority order, lease
recovery, provenance-stamped results — are the directory transport's,
unchanged; only the reach is new (workers no longer need the shared
filesystem).

**Failure model.**  Every call retries with exponential backoff over a
fresh connection: a dropped connection, a restarted server, or a server
that has not bound its port yet all look the same — transient — and a
call only raises :class:`QueueConnectionError` once the retry budget is
exhausted.  Retrying is safe for every request type:

* SUBMIT, COMPLETE, FAIL, HEARTBEAT, REQUEUE and the queries are
  idempotent (re-submitting a key is a no-op; re-storing a result writes
  the byte-identical row).
* CLAIM is the one non-idempotent request: if the server applied a claim
  but the response was lost, the retry claims a *different* job and the
  first claim is orphaned.  Orphans are never refreshed — heartbeats
  name only the keys the worker is actually executing — so the ordinary
  lease expiry requeues them.  Delivery stays at-least-once, and
  at-least-once is safe because job execution is deterministic.

A server-side failure (the server answered, with an ERROR frame) raises
:class:`QueueRemoteError` and is **not** retried — the request arrived
fine; repeating it would repeat the failure.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
import traceback
from typing import Optional, Sequence

from repro.experiments.jobs import ExperimentJob
from repro.experiments.protocol import (
    FrameError,
    MessageType,
    recv_frame,
    send_frame,
)
from repro.experiments.queue import ClaimedJob, QueueCounts, WorkQueue

__all__ = [
    "QueueConnectionError",
    "QueueRemoteError",
    "SocketQueue",
    "parse_addr",
]

logger = logging.getLogger(__name__)

#: Jobs per SUBMIT frame; bounds frame size for very large suites.
_SUBMIT_CHUNK = 500


class QueueConnectionError(ConnectionError):
    """The server stayed unreachable through the whole retry budget."""


class QueueRemoteError(RuntimeError):
    """The server received the request and reported a failure."""


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (the ``--addr`` CLI format)."""
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"queue address {addr!r} is not of the form host:port")
    return host, int(port)


class SocketQueue(WorkQueue):
    """A :class:`WorkQueue` speaking the framed protocol over TCP.

    One persistent connection, re-established transparently inside the
    retry loop; a lock serializes requests so a worker's heartbeat
    thread can share the instance with its main loop.
    """

    def __init__(
        self,
        addr: str,
        *,
        timeout_s: float = 30.0,
        retries: int = 8,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ):
        self.addr = addr
        self.host, self.port = parse_addr(addr)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None

    # -- connection management --------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._disconnect()

    def __enter__(self) -> "SocketQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the request loop -------------------------------------------------------------
    def _request(self, kind: MessageType, payload: dict) -> dict:
        """One request/response exchange, retried over fresh connections.

        Raises :class:`QueueRemoteError` on a server-reported failure
        (not retried) and :class:`QueueConnectionError` once transport
        errors exhaust the retry budget.
        """
        with self._lock:
            delay = self.backoff_s
            last_error: Optional[Exception] = None
            for attempt in range(self.retries + 1):
                if attempt:
                    time.sleep(delay)
                    delay = min(delay * 2, self.backoff_max_s)
                try:
                    sock = self._connect()
                    send_frame(sock, kind, payload)
                    reply = recv_frame(sock)
                except (OSError, FrameError) as error:
                    last_error = error
                    self._disconnect()
                    logger.debug(
                        "queue request %s attempt %d/%d failed: %r",
                        kind.name,
                        attempt + 1,
                        self.retries + 1,
                        error,
                    )
                    continue
                if reply is None:  # server closed between frames
                    last_error = ConnectionError("server closed the connection")
                    self._disconnect()
                    continue
                reply_kind, reply_payload = reply
                if reply_kind is MessageType.ERROR:
                    raise QueueRemoteError(
                        (reply_payload or {}).get("error", "unknown server error")
                    )
                return reply_payload or {}
            raise QueueConnectionError(
                f"queue server {self.addr} unreachable after "
                f"{self.retries + 1} attempts ({last_error!r})"
            )

    # -- submitter side ---------------------------------------------------------------
    def submit(self, job: ExperimentJob) -> str:
        return self._request(MessageType.SUBMIT, {"job": job})["keys"][0]

    def submit_many(self, jobs: Sequence[ExperimentJob]) -> list[str]:
        keys: list[str] = []
        jobs = list(jobs)
        for start in range(0, len(jobs), _SUBMIT_CHUNK):
            chunk = jobs[start : start + _SUBMIT_CHUNK]
            keys.extend(self._request(MessageType.SUBMIT, {"jobs": chunk})["keys"])
        return keys

    def result_entry(self, key: str) -> Optional[dict]:
        return self._request(MessageType.RESULT, {"key": key})["entry"]

    def failure(self, key: str) -> Optional[dict]:
        return self._request(MessageType.FAILURE, {"key": key})["marker"]

    def invalidate(self, key: str) -> None:
        self._request(MessageType.INVALIDATE, {"key": key})

    def requeue_stale(self, lease_s: float) -> list[str]:
        return self._request(MessageType.REQUEUE, {"lease_s": lease_s})["keys"]

    def requeue_worker(self, worker_id: str) -> list[str]:
        return self._request(MessageType.REQUEUE, {"worker": worker_id})["keys"]

    def counts(self) -> QueueCounts:
        return self._request(MessageType.COUNTS, {})["counts"]

    # -- worker side ------------------------------------------------------------------
    def claim(self, worker_id: Optional[str] = None) -> Optional[ClaimedJob]:
        reply = self._request(MessageType.CLAIM, {"worker": worker_id})
        claimed = reply["claimed"]
        if claimed is None:
            return None
        return ClaimedJob(
            key=claimed["key"],
            job=claimed["job"],
            worker_id=claimed["worker"],
            path=None,  # the server holds the claim file
        )

    def heartbeat(self, worker_id: str, keys: Optional[Sequence[str]] = None) -> list[str]:
        return self._request(
            MessageType.HEARTBEAT,
            {"worker": worker_id, "keys": None if keys is None else list(keys)},
        )["refreshed"]

    def complete(self, claimed: ClaimedJob, result, runtime_s: Optional[float] = None) -> None:
        self._request(
            MessageType.COMPLETE,
            {
                "key": claimed.key,
                "worker": claimed.worker_id,
                "job": claimed.job,
                "result": result,
                "runtime_s": runtime_s,
            },
        )

    def fail(self, claimed: ClaimedJob, error: BaseException) -> None:
        self._request(
            MessageType.FAIL,
            {
                "key": claimed.key,
                "worker": claimed.worker_id,
                "error": repr(error),
                "traceback": "".join(traceback.format_exception(error)),
            },
        )

    # -- artifact transfer ------------------------------------------------------------
    def artifact_store(self) -> "_SocketArtifactStore":
        """A store adapter serving trained-agent artefacts over the wire
        (the socket analogue of :meth:`DirectoryQueue.artifact_store`)."""
        return _SocketArtifactStore(self)


class _SocketArtifactStore:
    """Artifact get/put against the queue server's result database.

    Speaks the ARTIFACT_GET / ARTIFACT_PUT frames; an **older server**
    answers an unknown request type with an ERROR frame, which surfaces
    here as :class:`QueueRemoteError` — the adapter then disables itself
    with one log line and degrades gracefully: gets miss and puts drop,
    so workers fall back to deterministic on-demand training instead of
    failing the fleet.  A server that stays unreachable through the
    whole retry budget (:class:`QueueConnectionError`) degrades the same
    way — artifact transfer is an optimization, never a correctness
    dependency.
    """

    def __init__(self, queue: SocketQueue):
        self._queue = queue
        self._disabled = False

    def _disable(self, error: Exception) -> None:
        if not self._disabled:
            logger.warning(
                "queue server %s cannot serve agent artifacts (%s); "
                "falling back to on-demand training",
                self._queue.addr,
                error,
            )
        self._disabled = True

    def get_artifact_bytes(self, hash: str, schema: Optional[int] = None) -> Optional[bytes]:
        if self._disabled:
            return None
        try:
            return self._queue._request(
                MessageType.ARTIFACT_GET, {"hash": hash, "schema": schema}
            )["payload"]
        except (QueueConnectionError, QueueRemoteError) as error:
            self._disable(error)
            return None

    def put_artifact_bytes(
        self,
        hash: str,
        payload: bytes,
        *,
        schema: int,
        kind: str = "agent",
        benchmark: Optional[str] = None,
        spec: Optional[dict] = None,
        runtime_s: Optional[float] = None,
    ) -> bool:
        if self._disabled:
            return False
        try:
            return self._queue._request(
                MessageType.ARTIFACT_PUT,
                {
                    "hash": hash,
                    "payload": payload,
                    "schema": schema,
                    "kind": kind,
                    "benchmark": benchmark,
                    "spec": spec,
                    "runtime_s": runtime_s,
                },
            )["stored"]
        except (QueueConnectionError, QueueRemoteError) as error:
            self._disable(error)
            return False

    def artifact_rows(self, benchmark: Optional[str] = None) -> list[dict]:
        """Explicit-hash resolution support (``agent#<hash>`` placements
        on socket workers); empty against a pre-artifact server."""
        if self._disabled:
            return []
        try:
            return self._queue._request(
                MessageType.ARTIFACT_GET, {"benchmark": benchmark, "rows": True}
            )["rows"]
        except (QueueConnectionError, QueueRemoteError) as error:
            self._disable(error)
            return []
