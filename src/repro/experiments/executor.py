"""Experiment execution: interchangeable serial / parallel / distributed backends.

:class:`ExperimentSuite` takes a list of :class:`ExperimentJob` values
and returns their results in the same order.  Three layers cooperate:

* **deduplication** — identical jobs in one submission execute once
  (several figures slice the same testbed runs);
* **caching** — with a ``cache_dir``, results are stored in the SQLite
  result database (:class:`~repro.experiments.store.ResultStore`, at
  ``<cache_dir>/results.sqlite``) keyed by the job's content hash, so
  re-running a figure (or another figure sharing its runs) replays
  instantly and bit-identically — and the accumulated rows are
  queryable/diffable with ``python -m repro.experiments results``;
* **execution backend** — ``serial`` runs jobs in-process; ``parallel``
  fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`;
  ``distributed`` submits them to a shared-filesystem work queue
  (:class:`~repro.experiments.queue.DirectoryQueue`) drained by
  standalone worker processes — spawned locally by the suite, or
  started by hand on any machine that can see the queue directory with
  ``python -m repro.experiments worker --queue DIR``; ``socket``
  submits to a :class:`~repro.experiments.server.QueueServer` over TCP
  (:class:`~repro.experiments.socket_queue.SocketQueue`) — an external
  server named by ``queue_addr``, or one the suite starts in-process —
  drained by heartbeating workers anywhere the server is reachable
  (``python -m repro.experiments worker --addr HOST:PORT``).

Whatever the backend, jobs are submitted **largest-estimated-cost
first** (:func:`~repro.experiments.cost.order_by_cost`, calibrated from
the runtimes stamped into cache entries), which bounds the idle tail of
a pool without affecting any result.  Because
:func:`repro.experiments.jobs.execute_job` is deterministic, the choice
of backend (or a cache replay) never changes a result — only how fast
it arrives.
"""

from __future__ import annotations

import atexit
import logging
import os
import shutil
import subprocess
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.cost import CostCalibration, CostModel, order_by_cost
from repro.experiments.jobs import ExperimentJob, execute_job
# Re-exported for compatibility: these lived here before the SQLite
# result store split out; ResultCache is now a thin shim over
# ResultStore (see repro.experiments.store).
from repro.experiments.store import (
    ResultCache,
    ResultStore,
    atomic_write_bytes,
    current_git_rev,
)

__all__ = ["BACKENDS", "ExperimentSuite", "ResultCache", "ResultStore",
           "SuiteStats", "atomic_write_bytes", "current_git_rev",
           "default_suite", "run_jobs"]

logger = logging.getLogger(__name__)

#: The execution backends a suite can run jobs on.
BACKENDS = ("serial", "parallel", "distributed", "socket")


@dataclass
class SuiteStats:
    """What happened during :meth:`ExperimentSuite.run` calls."""

    submitted: int = 0
    executed: int = 0
    deduplicated: int = 0
    cache_hits: int = 0

    def merged_with(self, other: "SuiteStats") -> "SuiteStats":
        return SuiteStats(
            submitted=self.submitted + other.submitted,
            executed=self.executed + other.executed,
            deduplicated=self.deduplicated + other.deduplicated,
            cache_hits=self.cache_hits + other.cache_hits,
        )


def _timed_execute(job: ExperimentJob) -> tuple:
    """(result, wall seconds) for ``job`` — module-level for pool pickling."""
    started = time.perf_counter()
    result = execute_job(job)
    return result, time.perf_counter() - started


def _pool_initializer(cache_dir) -> None:
    """Bind the suite's result store as each pool worker's ambient
    artifact store (module-level so spawn-based pools can pickle it).

    Jobs that consume trained-agent artefacts then resolve them from the
    shared database instead of retraining per worker process; without a
    cache the resolution path falls back to deterministic on-demand
    training, so results are identical either way.
    """
    if cache_dir is not None:
        from repro.agents.artifacts import set_artifact_store
        set_artifact_store(ResultStore(cache_dir))


def _split_waves(pending: list[ExperimentJob]) -> list[list[ExperimentJob]]:
    """Dependency waves for one batch: ``train`` jobs, then the rest.

    Training jobs publish the content-addressed artefacts the
    measurement jobs in the same submission consume, so draining them
    first makes every dependent job a warm store hit on every backend
    (serial, pool, directory queue, socket).  Nothing is wrong if a
    measurement job runs cold — artefact resolution trains on demand,
    deterministically — the wave split just prevents that duplicated
    work.
    """
    train = [job for job in pending if job.kind == "train"]
    rest = [job for job in pending if job.kind != "train"]
    return [wave for wave in (train, rest) if wave]


@dataclass
class ExperimentSuite:
    """Runs experiment jobs through a pluggable execution backend.

    ``backend`` is normally inferred — ``distributed`` when a
    ``queue_dir`` is given, ``parallel`` when ``workers > 1``, else
    ``serial`` — but can be pinned explicitly (the CLI's ``--backend``).
    On the distributed backend ``workers`` is the number of local worker
    processes the suite spawns against the queue; with
    ``spawn_workers=False`` the suite only submits and waits, leaving
    execution to externally started workers (``python -m
    repro.experiments worker --queue DIR``, on this or any other machine
    sharing the queue directory).

    The socket backend works the same way over TCP: with ``queue_addr``
    the suite is a client of an external ``python -m repro.experiments
    serve`` process; without one it starts its own
    :class:`~repro.experiments.server.QueueServer` in-process (over
    ``queue_dir``, or a suite-owned temp directory) — handy for tests
    and for accepting extra external ``--addr`` workers into an
    otherwise local run.
    """

    workers: int = 1
    cache_dir: Optional[os.PathLike | str] = None
    backend: Optional[str] = None
    queue_dir: Optional[os.PathLike | str] = None
    #: ``host:port`` of an external queue server (implies ``socket``).
    queue_addr: Optional[str] = None
    spawn_workers: bool = True
    #: Claims older than this are requeued (crashed-worker recovery).
    #: Must exceed the longest single job runtime, or a slow job will be
    #: executed twice (harmless — results are deterministic — but wasteful).
    lease_s: float = 300.0
    #: How long the distributed backend waits for results before raising.
    timeout_s: Optional[float] = None
    stats: SuiteStats = field(default_factory=SuiteStats)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.backend is None:
            self.backend = ("socket" if self.queue_addr is not None
                            else "distributed" if self.queue_dir is not None
                            else "parallel" if self.workers > 1 else "serial")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"known: {BACKENDS}")
        if self.queue_addr is not None and self.backend != "socket":
            raise ValueError("queue_addr only applies to the socket "
                             f"backend, not {self.backend!r}")
        if self.queue_dir is not None \
                and self.backend not in ("distributed", "socket"):
            raise ValueError("queue_dir only applies to the distributed "
                             f"and socket backends, not {self.backend!r}")
        if self.queue_dir is not None and self.queue_addr is not None:
            raise ValueError("queue_dir and queue_addr are exclusive: an "
                             "external server owns its own queue directory")
        # The canonical result path of every backend: the SQLite result
        # store (a legacy pickle directory migrates itself on open).
        self._cache = ResultStore(self.cache_dir) if self.cache_dir else None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._queue = None
        self._server = None                      # suite-owned QueueServer
        self._owned_queue_dir: Optional[Path] = None
        self._worker_log_dir: Optional[Path] = None
        self._worker_procs: list[tuple[subprocess.Popen, str]] = []
        self._worker_seq = 0
        self._calibration: Optional[CostCalibration] = None
        # Results live for the suite's lifetime, so figures sharing runs
        # (10-13 share a sweep, 8-9 the characterization runs) execute
        # them once per suite even without an on-disk cache.  Callers
        # treat results as read-only; determinism makes sharing safe.
        self._memo: dict[ExperimentJob, object] = {}

    @property
    def store(self) -> Optional[ResultStore]:
        """The suite's result store (``None`` when uncached) — the seam
        fleet analytics reports through after a drain."""
        return self._cache

    # -- lifecycle --------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for proc, _ in self._worker_procs:
            proc.terminate()
        for proc, _ in self._worker_procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._worker_procs.clear()
        if self._queue is not None and hasattr(self._queue, "close"):
            self._queue.close()
        self._queue = None
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._owned_queue_dir is not None:
            shutil.rmtree(self._owned_queue_dir, ignore_errors=True)
            self._owned_queue_dir = None
        if self._worker_log_dir is not None:
            shutil.rmtree(self._worker_log_dir, ignore_errors=True)
            self._worker_log_dir = None

    def __enter__(self) -> "ExperimentSuite":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution --------------------------------------------------------------------
    def run(self, jobs: Sequence[ExperimentJob]) -> list:
        """Execute ``jobs`` and return their results, aligned with ``jobs``.

        Duplicate jobs execute once; cached jobs are replayed from disk;
        the rest run on the backend.  The result for a given job is
        bit-identical regardless of which path produced it.
        """
        jobs = list(jobs)
        self.stats.submitted += len(jobs)

        unique: dict[ExperimentJob, object] = {}
        for job in jobs:
            if job in unique:
                self.stats.deduplicated += 1
            else:
                unique[job] = None

        pending: list[ExperimentJob] = []
        for job in unique:
            cached = self._memo.get(job)
            if cached is None and self._cache is not None:
                cached = self._cache.get(job)
            if cached is not None:
                unique[job] = cached
                self._memo[job] = cached
                self.stats.cache_hits += 1
            else:
                pending.append(job)

        if pending:
            self.stats.executed += len(pending)
            # The suite's store doubles as the process-ambient artifact
            # store while its jobs run, so in-process execution (serial
            # backend, and the fused accuracy/inference paths) trains
            # each agent artefact at most once per database.
            bound = self._cache is not None
            if bound:
                from repro.agents.artifacts import set_artifact_store
                previous_store = set_artifact_store(self._cache)
            try:
                for wave in _split_waves(pending):
                    for job, (result, runtime_s) in zip(wave,
                                                        self._map(wave)):
                        unique[job] = result
                        self._memo[job] = result
                        if self._calibration is not None:
                            self._calibration.observe(job.kind,
                                                      job.cost_units(),
                                                      runtime_s)
                        if self._cache is not None:
                            self._cache.put(job, result, runtime_s=runtime_s)
            finally:
                if bound:
                    set_artifact_store(previous_store)

        return [unique[job] for job in jobs]

    def submission_order(self,
                         jobs: Sequence[ExperimentJob]) -> list[ExperimentJob]:
        """The order ``jobs`` would be handed to the backend: largest
        estimated cost first, under the current calibration."""
        return order_by_cost(jobs, self._cost_model())

    def _cost_model(self) -> CostModel:
        # The store scan (one SQL pass over the provenance columns, no
        # result payloads unpickled) happens once per suite; every batch
        # executed afterwards feeds the calibration in memory via run().
        if self._calibration is None:
            cache = self._cache
            if cache is None and self.backend == "distributed":
                cache = self._ensure_queue().results
            self._calibration = (CostCalibration.from_cache(cache)
                                 if cache is not None else CostCalibration())
        return self._calibration.model()

    def _map(self, jobs: list[ExperimentJob]) -> list[tuple]:
        """(result, runtime_s) per job, aligned with ``jobs``."""
        ordered = order_by_cost(jobs, self._cost_model())
        if self.backend in ("distributed", "socket"):
            by_job = self._run_distributed(ordered)
        elif self.backend == "parallel" and self.workers > 1 and len(jobs) > 1:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_initializer,
                    initargs=(self.cache_dir,))
            futures = [(job, self._pool.submit(_timed_execute, job))
                       for job in ordered]
            by_job = {job: future.result() for job, future in futures}
        else:
            by_job = {job: _timed_execute(job) for job in ordered}
        return [by_job[job] for job in jobs]

    # -- the distributed/socket backends ----------------------------------------------
    def _ensure_queue(self):
        if self._queue is None:
            if self.backend == "socket":
                from repro.experiments.socket_queue import SocketQueue
                addr = self.queue_addr
                if addr is None:
                    # No external server: run one in-process over the
                    # queue_dir (or a suite-owned temp directory).  The
                    # suite's workers — and any external --addr worker —
                    # connect over TCP exactly as they would to a
                    # standalone `serve` process.
                    from repro.experiments.server import QueueServer
                    root = self.queue_dir
                    if root is None:
                        root = tempfile.mkdtemp(prefix="pictor-queue-")
                        self._owned_queue_dir = Path(root)
                    self._server = QueueServer(
                        Path(root), lease_s=self.lease_s).start()
                    addr = self._server.address
                self._worker_log_dir = Path(
                    tempfile.mkdtemp(prefix="pictor-socket-workers-"))
                self._queue = SocketQueue(addr)
            else:
                from repro.experiments.queue import DirectoryQueue
                root = self.queue_dir
                if root is None:
                    root = tempfile.mkdtemp(prefix="pictor-queue-")
                    self._owned_queue_dir = Path(root)
                self._queue = DirectoryQueue(root)
        return self._queue

    def _worker_logs(self, queue) -> Path:
        return (self._worker_log_dir if self._worker_log_dir is not None
                else queue.worker_log_dir)

    def _ensure_workers(self, queue) -> None:
        from repro.experiments.worker import spawn_worker
        if not self.spawn_workers:
            return
        alive = [(proc, wid) for proc, wid in self._worker_procs
                 if proc.poll() is None]
        self._worker_procs = alive
        while len(self._worker_procs) < self.workers:
            worker_id = f"suite-{os.getpid()}-w{self._worker_seq}"
            self._worker_seq += 1
            if self.backend == "socket":
                proc = spawn_worker(addr=self._queue.addr,
                                    worker_id=worker_id,
                                    heartbeat_s=2.0,
                                    log_dir=self._worker_log_dir)
            else:
                proc = spawn_worker(queue.root, worker_id=worker_id)
            self._worker_procs.append((proc, worker_id))

    def _reap_dead_workers(self, queue) -> None:
        """Requeue the claims of spawned workers that exited.

        External workers (``spawn_workers=False`` or other machines) are
        invisible here; their crashes are covered by the lease —
        :meth:`DirectoryQueue.requeue_stale` runs every poll iteration.
        """
        alive = []
        for proc, worker_id in self._worker_procs:
            if proc.poll() is None:
                alive.append((proc, worker_id))
                continue
            requeued = queue.requeue_worker(worker_id)
            logger.warning(
                "spawned worker %s exited with code %s; requeued %d claimed "
                "job(s); log: %s", worker_id, proc.returncode, len(requeued),
                self._worker_logs(queue) / f"{worker_id}.log")
        if self.spawn_workers and not alive and self._worker_procs:
            raise RuntimeError(
                "all spawned distributed workers exited while jobs were "
                f"outstanding; see logs under {self._worker_logs(queue)}")
        self._worker_procs = alive

    def _run_distributed(self, ordered: list[ExperimentJob]) -> dict:
        queue = self._ensure_queue()
        outstanding: dict[str, ExperimentJob] = {}
        for key, job in zip(queue.submit_many(ordered), ordered):
            outstanding[key] = job
        self._ensure_workers(queue)

        gathered: dict[ExperimentJob, tuple] = {}
        deadline = (None if self.timeout_s is None
                    else time.monotonic() + self.timeout_s)
        last_warning = time.monotonic()
        while outstanding:
            progressed = False
            for key in list(outstanding):
                entry = queue.result_entry(key)
                if entry is not None:
                    job = outstanding[key]
                    if entry.get("scenario_hash") \
                            != job.scenario.content_hash():
                        # Same contract as ResultStore.get: a tampered
                        # entry (here: pre-existing in a shared queue,
                        # since submit() skips already-completed keys) is
                        # rejected with a log line and re-executed.
                        store = getattr(queue, "results", None)
                        logger.warning(
                            "rejecting tampered cache entry %s: stamped "
                            "scenario hash %s does not match the job's "
                            "scenario %s (written at git rev %s); "
                            "recomputing",
                            store.locate(key) if store is not None else key,
                            entry.get("scenario_hash"),
                            job.scenario.content_hash(),
                            entry.get("git_rev", "unknown"))
                        queue.invalidate(key)
                        queue.submit(job)
                        continue
                    gathered[outstanding.pop(key)] = (
                        entry.get("result"), entry.get("runtime_s"))
                    progressed = True
                    continue
                failure = queue.failure(key)
                if failure is not None:
                    raise RuntimeError(
                        f"distributed job {key[:12]} failed on worker "
                        f"{failure.get('worker', '?')}: "
                        f"{failure.get('error', '?')}\n"
                        f"{failure.get('traceback', '')}")
            if not outstanding:
                break
            self._reap_dead_workers(queue)
            if self.backend == "distributed":
                # The socket backend's server runs its own sweep
                # (heartbeat-timeout requeues plus this same lease
                # backstop); only the directory transport needs the
                # submitter to police leases.
                queue.requeue_stale(self.lease_s)
            if not progressed:
                if deadline is not None and time.monotonic() > deadline:
                    where = (queue.root if self.backend == "distributed"
                             else queue.addr)
                    raise TimeoutError(
                        f"{self.backend} backend timed out after "
                        f"{self.timeout_s:g}s with {len(outstanding)} job(s) "
                        f"outstanding in {where}")
                if not self._worker_procs \
                        and time.monotonic() - last_warning > 30.0:
                    # No spawned workers to watch (spawn_workers=False):
                    # an external fleet may simply not be up yet, but
                    # don't hang silently.
                    last_warning = time.monotonic()
                    start_hint = (f"--queue {queue.root}"
                                  if self.backend == "distributed"
                                  else f"--addr {queue.addr}")
                    logger.warning(
                        "%s backend waiting on %d job(s) with no spawned "
                        "workers; start one with 'python -m "
                        "repro.experiments worker %s'",
                        self.backend, len(outstanding), start_hint)
                time.sleep(0.05)
        return gathered


def run_jobs(jobs: Sequence[ExperimentJob],
             suite: Optional[ExperimentSuite] = None) -> list:
    """Run ``jobs`` on ``suite``, or on the environment-default suite."""
    return (suite or default_suite()).run(jobs)


_DEFAULT_SUITES: dict[tuple, ExperimentSuite] = {}


@atexit.register
def _close_default_suites() -> None:
    # Memoized suites have no owning `with` block, so their spawned
    # distributed workers (and any suite-owned temp queue directory)
    # must be torn down at interpreter exit or they would linger.
    for suite in _DEFAULT_SUITES.values():
        suite.close()


def default_suite() -> ExperimentSuite:
    """The process-wide suite the figure generators fall back to.

    Configured through the environment so existing entry points (tests,
    benchmark harnesses, examples) gain parallelism and caching without
    signature changes:

    * ``PICTOR_WORKERS`` — worker-process count (default 1 = serial);
    * ``PICTOR_CACHE_DIR`` — result cache directory (default: none);
    * ``PICTOR_BACKEND`` — pin a backend (default: inferred);
    * ``PICTOR_QUEUE_DIR`` — work-queue directory (implies distributed);
    * ``PICTOR_QUEUE_ADDR`` — queue server ``host:port`` (implies socket).

    Suites are memoized per configuration so a process pool (or a fleet
    of spawned queue workers) is reused across calls rather than
    respawned.
    """
    workers = max(1, int(os.environ.get("PICTOR_WORKERS", "1") or "1"))
    cache_dir = os.environ.get("PICTOR_CACHE_DIR") or None
    backend = os.environ.get("PICTOR_BACKEND") or None
    queue_dir = os.environ.get("PICTOR_QUEUE_DIR") or None
    queue_addr = os.environ.get("PICTOR_QUEUE_ADDR") or None
    key = (workers, cache_dir, backend, queue_dir, queue_addr)
    suite = _DEFAULT_SUITES.get(key)
    if suite is None:
        suite = ExperimentSuite(workers=workers, cache_dir=cache_dir,
                                backend=backend, queue_dir=queue_dir,
                                queue_addr=queue_addr)
        _DEFAULT_SUITES[key] = suite
    return suite
