"""Experiment execution: interchangeable serial / process-pool backends.

:class:`ExperimentSuite` takes a list of :class:`ExperimentJob` values
and returns their results in the same order.  Three layers cooperate:

* **deduplication** — identical jobs in one submission execute once
  (several figures slice the same testbed runs);
* **caching** — with a ``cache_dir``, results are stored on disk keyed
  by the job's content hash, so re-running a figure (or another figure
  sharing its runs) replays instantly and bit-identically;
* **execution backend** — ``workers <= 1`` runs jobs in-process;
  ``workers > 1`` fans them out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Because :func:`repro.experiments.jobs.execute_job` is deterministic, the
choice of backend (or a cache replay) never changes a result — only how
fast it arrives.
"""

from __future__ import annotations

import logging
import os
import pickle
import subprocess
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.jobs import CACHE_SCHEMA_VERSION, ExperimentJob, execute_job

__all__ = ["ExperimentSuite", "ResultCache", "SuiteStats", "current_git_rev",
           "default_suite", "run_jobs"]

logger = logging.getLogger(__name__)


@lru_cache(maxsize=1)
def current_git_rev() -> str:
    """The repository's HEAD revision, or "unknown" outside a checkout.

    Stamped into cache entries (provenance only — never part of the cache
    key, or replays across commits would always miss).
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent, timeout=10)
        if proc.returncode == 0:
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


@dataclass
class SuiteStats:
    """What happened during :meth:`ExperimentSuite.run` calls."""

    submitted: int = 0
    executed: int = 0
    deduplicated: int = 0
    cache_hits: int = 0

    def merged_with(self, other: "SuiteStats") -> "SuiteStats":
        return SuiteStats(
            submitted=self.submitted + other.submitted,
            executed=self.executed + other.executed,
            deduplicated=self.deduplicated + other.deduplicated,
            cache_hits=self.cache_hits + other.cache_hits,
        )


class ResultCache:
    """Content-addressed on-disk store of provenance-stamped job results.

    Keys are the jobs' SHA-256 content hashes (over the scenario, kind
    and duration override), so any change to the placement list, any
    :class:`ExperimentConfig` field, any session-variant knob or the seed
    policy produces a different key and the stale entry is never
    consulted.  Each entry additionally records *how* it was produced —
    cache schema version, the scenario's own dict and content hash, and
    the git revision — so cross-PR figure regressions are diffable and a
    schema break is **logged** when detected rather than silently
    recomputed.
    """

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, job: ExperimentJob):
        """The cached result for ``job``, or None when absent/unusable."""
        entry = self.get_entry(job.key())
        return None if entry is None else entry.get("result")

    def get_entry(self, key: str) -> Optional[dict]:
        """The full provenance-stamped entry for ``key``, or None."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
        except Exception:
            logger.warning("cache entry %s is unreadable; recomputing", path)
            return None
        if not isinstance(entry, dict) or "schema" not in entry:
            logger.warning(
                "cache entry %s predates provenance stamping; recomputing", path)
            return None
        if entry["schema"] != CACHE_SCHEMA_VERSION:
            logger.warning(
                "rejecting stale cache entry %s: schema version %s != current "
                "%s (written at git rev %s); recomputing", path,
                entry["schema"], CACHE_SCHEMA_VERSION,
                entry.get("git_rev", "unknown"))
            return None
        return entry

    def put(self, job: ExperimentJob, result) -> None:
        """Store ``result`` with provenance, atomically (rename) so readers
        never see a half-written entry."""
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": job.key(),
            "kind": job.kind,
            "duration": job.duration,
            "scenario": job.scenario.to_dict(),
            "scenario_hash": job.scenario.content_hash(),
            "git_rev": current_git_rev(),
            "result": result,
        }
        path = self._path(job.key())
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))


@dataclass
class ExperimentSuite:
    """Runs experiment jobs through a pluggable execution backend."""

    workers: int = 1
    cache_dir: Optional[os.PathLike | str] = None
    stats: SuiteStats = field(default_factory=SuiteStats)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self._cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self._pool: Optional[ProcessPoolExecutor] = None
        # Results live for the suite's lifetime, so figures sharing runs
        # (10-13 share a sweep, 8-9 the characterization runs) execute
        # them once per suite even without an on-disk cache.  Callers
        # treat results as read-only; determinism makes sharing safe.
        self._memo: dict[ExperimentJob, object] = {}

    # -- lifecycle --------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ExperimentSuite":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution --------------------------------------------------------------------
    def run(self, jobs: Sequence[ExperimentJob]) -> list:
        """Execute ``jobs`` and return their results, aligned with ``jobs``.

        Duplicate jobs execute once; cached jobs are replayed from disk;
        the rest run on the backend.  The result for a given job is
        bit-identical regardless of which path produced it.
        """
        jobs = list(jobs)
        self.stats.submitted += len(jobs)

        unique: dict[ExperimentJob, object] = {}
        for job in jobs:
            if job in unique:
                self.stats.deduplicated += 1
            else:
                unique[job] = None

        pending: list[ExperimentJob] = []
        for job in unique:
            cached = self._memo.get(job)
            if cached is None and self._cache is not None:
                cached = self._cache.get(job)
            if cached is not None:
                unique[job] = cached
                self._memo[job] = cached
                self.stats.cache_hits += 1
            else:
                pending.append(job)

        if pending:
            self.stats.executed += len(pending)
            for job, result in zip(pending, self._map(pending)):
                unique[job] = result
                self._memo[job] = result
                if self._cache is not None:
                    self._cache.put(job, result)

        return [unique[job] for job in jobs]

    def _map(self, jobs: list[ExperimentJob]) -> list:
        if self.workers <= 1 or len(jobs) <= 1:
            return [execute_job(job) for job in jobs]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        futures = [self._pool.submit(execute_job, job) for job in jobs]
        return [future.result() for future in futures]


def run_jobs(jobs: Sequence[ExperimentJob],
             suite: Optional[ExperimentSuite] = None) -> list:
    """Run ``jobs`` on ``suite``, or on the environment-default suite."""
    return (suite or default_suite()).run(jobs)


_DEFAULT_SUITES: dict[tuple, ExperimentSuite] = {}


def default_suite() -> ExperimentSuite:
    """The process-wide suite the figure generators fall back to.

    Configured through the environment so existing entry points (tests,
    benchmark harnesses, examples) gain parallelism and caching without
    signature changes:

    * ``PICTOR_WORKERS`` — worker-process count (default 1 = serial);
    * ``PICTOR_CACHE_DIR`` — result cache directory (default: none).

    Suites are memoized per configuration so a process pool is reused
    across calls rather than respawned.
    """
    workers = max(1, int(os.environ.get("PICTOR_WORKERS", "1") or "1"))
    cache_dir = os.environ.get("PICTOR_CACHE_DIR") or None
    key = (workers, cache_dir)
    suite = _DEFAULT_SUITES.get(key)
    if suite is None:
        suite = ExperimentSuite(workers=workers, cache_dir=cache_dir)
        _DEFAULT_SUITES[key] = suite
    return suite
