"""The SQLite result database: the canonical store of experiment results.

:class:`ResultStore` replaces the pickle-directory cache as the single
result path of every execution backend — serial and parallel suites
write their cache through it, distributed workers complete queue jobs
into it, and the cost model calibrates from it with one SQL scan instead
of unpickling a directory of payloads.  :class:`ResultCache` (the name
the rest of the codebase grew up with) is now a thin compatibility shim
over the store, and :class:`PickleResultCache` keeps the legacy
one-file-per-entry format alive for migration and for the equivalence
tests that prove a pickle replay and a store replay are bit-identical.

Each row carries the full provenance stamp the pickle cache introduced —
cache schema version, the scenario's dict and content hash, the job
kind and duration override, the git revision, and the ``runtime_s`` /
``cost_units`` calibration pair — **plus** the pickled entry itself, so
:meth:`ResultStore.get_entry` returns exactly the dict the pickle cache
did.  The provenance columns exist so the database is *queryable*: the
``python -m repro.experiments results`` CLI lists, shows, diffs and
exports rows by kind / scenario hash / git revision without touching a
single result payload.

Rows are keyed ``(key, git_rev)`` — the job's content hash plus the
revision that produced it — so one durable database accumulates results
across commits and ``results diff`` can compare two revs-of-record (or
two databases) metric by metric.  Replays always read the newest row
for a key; determinism makes any row equally valid, and the two
documented rejection paths ("rejecting stale cache entry", "rejecting
tampered cache entry") are checked on every read exactly as the pickle
cache checked them, with the same log lines.

Concurrency: by default the database opens in WAL mode with a generous
busy timeout, so any number of processes on one machine (a suite plus
its spawned workers, or several suites) write simultaneously — writers
queue on the WAL lock instead of failing, readers never block.  WAL's
cross-process coordination lives in a shared-memory file, which does
**not** span machines; stores meant to be written from several hosts
over a shared filesystem (the distributed queue's results database)
open with ``wal=False`` — the rollback journal, whose POSIX advisory
locks are the same primitive multi-host SQLite has always relied on.
The usual SQLite caveat applies: a network filesystem with broken
advisory locking can corrupt any shared database; on such mounts, give
each worker machine its own queue.  Opening a store rooted at a
directory that still contains legacy ``*.pkl`` entries migrates them in
one shot (idempotently — re-runs skip rows that already exist), so
existing cache directories promote themselves.
"""

from __future__ import annotations

import copy
import hashlib
import json
import logging
import math
import os
import pickle
import re
import sqlite3
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass, field, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.experiments.jobs import CACHE_SCHEMA_VERSION

if TYPE_CHECKING:
    from repro.experiments.jobs import ExperimentJob

__all__ = ["ArtifactGcReport", "BackfillReport", "DiffDelta", "DiffReport",
           "GcReport", "MigrationReport", "PROVENANCE_METRIC_COLUMNS",
           "PickleResultCache", "RESULT_DB_FILENAME", "ResultCache",
           "ResultStore", "ToleranceTable", "atomic_write_bytes",
           "current_git_rev", "diff_result_sets", "entry_metrics",
           "flatten_metrics", "migrate_pickle_dir", "numeric_metrics",
           "rekey_ignoring_fast_forward"]

logger = logging.getLogger(__name__)

#: The database file a store keeps inside its root directory.
RESULT_DB_FILENAME = "results.sqlite"

#: How long a writer waits on a locked database before giving up.  High
#: on purpose: distributed workers on a shared filesystem all funnel
#: through one WAL lock, and a queued write is always better than a
#: failed job.
BUSY_TIMEOUT_S = 30.0

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    key           TEXT    NOT NULL,
    git_rev       TEXT    NOT NULL,
    schema        INTEGER NOT NULL,
    kind          TEXT,
    duration      REAL,
    scenario_json TEXT    NOT NULL,
    scenario_hash TEXT    NOT NULL,
    runtime_s     REAL,
    cost_units    REAL,
    created_at    REAL    NOT NULL,
    entry         BLOB    NOT NULL,
    PRIMARY KEY (key, git_rev)
);
CREATE INDEX IF NOT EXISTS idx_results_scenario_hash
    ON results (scenario_hash);
CREATE INDEX IF NOT EXISTS idx_results_git_rev ON results (git_rev);
CREATE INDEX IF NOT EXISTS idx_results_kind ON results (kind);
CREATE TABLE IF NOT EXISTS metrics (
    key     TEXT NOT NULL,
    git_rev TEXT NOT NULL,
    name    TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (key, git_rev, name)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name);
CREATE TABLE IF NOT EXISTS artifacts (
    hash       TEXT    NOT NULL PRIMARY KEY,
    schema     INTEGER NOT NULL,
    kind       TEXT    NOT NULL,
    benchmark  TEXT,
    spec_json  TEXT    NOT NULL,
    git_rev    TEXT    NOT NULL,
    created_at REAL    NOT NULL,
    runtime_s  REAL,
    size_bytes INTEGER NOT NULL,
    payload    BLOB    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_artifacts_benchmark
    ON artifacts (benchmark, created_at);
"""

#: Provenance columns :meth:`ResultStore.provenance_values` may serve as
#: per-key metric streams (the fleet report's ``@column`` selectors).
PROVENANCE_METRIC_COLUMNS = ("runtime_s", "cost_units", "duration")


def atomic_write_bytes(directory: Path, path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + rename, so readers
    (and racing writers — last one wins whole) never see a partial file.

    ``directory`` must be on the same filesystem as ``path`` (it is the
    temp file's home; ``os.replace`` must not cross devices).
    """
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@lru_cache(maxsize=1)
def current_git_rev() -> str:
    """The repository's HEAD revision, or "unknown" outside a checkout.

    Stamped into result rows (provenance only — never part of the cache
    key, or replays across commits would always miss).
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent, timeout=10)
        if proc.returncode == 0:
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _validate_entry(entry, location) -> Optional[dict]:
    """The shared read-side provenance checks (see module docstring).

    Returns the entry when usable, None (after the documented log line)
    otherwise.  Both the store and the legacy pickle cache funnel every
    read through here, so the rejection contract cannot drift between
    them.
    """
    if not isinstance(entry, dict) or "schema" not in entry:
        logger.warning(
            "cache entry %s predates provenance stamping; recomputing",
            location)
        return None
    if entry["schema"] != CACHE_SCHEMA_VERSION:
        logger.warning(
            "rejecting stale cache entry %s: schema version %s != current "
            "%s (written at git rev %s); recomputing", location,
            entry["schema"], CACHE_SCHEMA_VERSION,
            entry.get("git_rev", "unknown"))
        return None
    return entry


def _check_scenario_hash(entry, job: "ExperimentJob", location) -> bool:
    """True when the entry's stamped scenario hash matches ``job``'s.

    A mismatch means the entry was tampered with (or filed under the
    wrong key) and is rejected with a log line, never replayed.
    """
    expected = job.scenario.content_hash()
    stamped = entry.get("scenario_hash")
    if stamped != expected:
        logger.warning(
            "rejecting tampered cache entry %s: stamped scenario hash "
            "%s does not match the job's scenario %s (written at git "
            "rev %s); recomputing", location, stamped, expected,
            entry.get("git_rev", "unknown"))
        return False
    return True


def build_entry(job: "ExperimentJob", result,
                runtime_s: Optional[float] = None) -> dict:
    """The provenance-stamped entry dict for a freshly executed job.

    One construction site for every writer (store, pickle cache, queue
    workers), so the entry layout — including dict key order, which the
    cross-backend equivalence tests compare byte-for-byte after
    pickling — cannot diverge between backends.
    """
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "key": job.key(),
        "kind": job.kind,
        "duration": job.duration,
        "scenario": job.scenario.to_dict(),
        "scenario_hash": job.scenario.content_hash(),
        # Explicit fidelity stamp: fast-forwarded results carry the flag
        # at the top level (not just inside the scenario dict), so no
        # tooling can mistake a temporally upscaled run for an exact one.
        "fast_forward": job.scenario.config.fast_forward.enabled,
        "git_rev": current_git_rev(),
        "runtime_s": runtime_s,
        "cost_units": job.cost_units(),
        "result": result,
    }


class ResultStore:
    """The SQLite-backed result database (see the module docstring).

    ``root`` may be a directory (the database lives at
    ``<root>/results.sqlite``, and any legacy ``*.pkl`` entries found in
    the directory are migrated on open) or a ``.sqlite`` / ``.db`` file
    path.  Instances are cheap; each thread of each process opens its
    own connection (re-opened transparently after a fork — SQLite
    connections are affine to both), and the journal mode + busy
    timeout make concurrent writers from other processes safe.
    ``wal=False`` selects the rollback journal instead of WAL — required
    when several *machines* write the database over a shared filesystem
    (see the module docstring).
    """

    def __init__(self, root: os.PathLike | str, wal: bool = True):
        self.wal = wal
        given = Path(root)
        explicit_db = given.suffix in (".sqlite", ".db")
        if explicit_db:
            self.root = given.parent
            self.db_path = given
        else:
            self.root = given
            self.db_path = given / RESULT_DB_FILENAME
        self.root.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        # Directory-form roots promote themselves: any legacy pickle
        # entries sitting in the directory migrate on open.  An explicit
        # database path opens the file and nothing else (the CLI's
        # ``results migrate`` uses this for accurate reporting).
        if not explicit_db:
            migrate_pickle_dir(self)

    # -- connection management --------------------------------------------------------
    def connection(self) -> sqlite3.Connection:
        """This thread's connection (fork-safe: children reconnect).

        Per-thread because SQLite connections must not cross threads
        (the queue server answers requests from one handler thread per
        client connection); per-process because they must not cross a
        fork either.
        """
        if getattr(self._local, "conn", None) is None \
                or self._local.conn_pid != os.getpid():
            conn = sqlite3.connect(self.db_path, timeout=BUSY_TIMEOUT_S,
                                   isolation_level=None)
            conn.execute(f"PRAGMA busy_timeout = {int(BUSY_TIMEOUT_S * 1000)}")
            if self.wal:
                try:
                    conn.execute("PRAGMA journal_mode = WAL")
                    conn.execute("PRAGMA synchronous = NORMAL")
                except sqlite3.OperationalError:
                    pass             # filesystems without WAL still work
            else:
                # Multi-host writers: the rollback journal's POSIX locks
                # are the only SQLite coordination that spans machines.
                conn.execute("PRAGMA journal_mode = DELETE")
            conn.executescript(_SCHEMA_SQL)
            self._local.conn = conn
            self._local.conn_pid = os.getpid()
        return self._local.conn

    def close(self) -> None:
        """Close *this thread's* connection (others close on GC)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None and self._local.conn_pid == os.getpid():
            conn.close()
        self._local.conn = None
        self._local.conn_pid = None

    def locate(self, key: str) -> str:
        """A human-readable location for ``key``, used in log lines (the
        store's analogue of the pickle cache's per-entry file path)."""
        return f"{self.db_path}#{key}"

    # -- the ResultCache API ----------------------------------------------------------
    def get(self, job: "ExperimentJob"):
        """The stored result for ``job``, or None when absent/unusable.

        Beyond the schema check in :meth:`get_entry`, the entry's stamped
        scenario hash must match the requesting job's scenario — a
        mismatch means the row was tampered with (or filed under the
        wrong key) and is rejected with a log line, never replayed.
        """
        entry = self.get_entry(job.key())
        if entry is None:
            return None
        if not _check_scenario_hash(entry, job, self.locate(job.key())):
            return None
        return entry.get("result")

    def get_entry(self, key: str) -> Optional[dict]:
        """The full provenance-stamped entry for ``key``, or None.

        With rows from several revisions on file, the newest wins —
        execution is deterministic, so any current-schema row is equally
        valid; the provenance stamps say which commit wrote it.
        """
        row = self.connection().execute(
            "SELECT entry FROM results WHERE key = ? "
            "ORDER BY created_at DESC, rowid DESC LIMIT 1", (key,)).fetchone()
        if row is None:
            return None
        try:
            entry = pickle.loads(row[0])
        except Exception:
            logger.warning("cache entry %s is unreadable; recomputing",
                           self.locate(key))
            return None
        return _validate_entry(entry, self.locate(key))

    def entries(self) -> Iterator[dict]:
        """Iterate every readable current-schema entry, newest row per key."""
        keys = [row[0] for row in self.connection().execute(
            "SELECT DISTINCT key FROM results ORDER BY key")]
        for key in keys:
            entry = self.get_entry(key)
            if entry is not None:
                yield entry

    def put(self, job: "ExperimentJob", result,
            runtime_s: Optional[float] = None) -> None:
        """Store ``result`` with provenance; one WAL transaction, so
        readers and concurrent writers never see a partial row."""
        self.put_entry(build_entry(job, result, runtime_s=runtime_s))

    def put_entry(self, entry: dict, replace: bool = True) -> bool:
        """Insert a pre-built entry dict (the writer behind :meth:`put`,
        also the migration path).  With ``replace=False`` an existing
        ``(key, git_rev)`` row is left untouched (idempotent re-import);
        returns whether a row was written.

        Alongside the result row, every numeric leaf of the result
        payload is flattened (:func:`numeric_metrics` — the same dotted
        names ``results diff`` compares) into the indexed ``metrics``
        table in the same transaction, so fleet-scale cohort queries run
        as pure SQL without ever unpickling a payload.
        """
        conflict = "REPLACE" if replace else "IGNORE"
        key = entry.get("key")
        git_rev = entry.get("git_rev", "unknown")
        conn = self.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(
                f"INSERT OR {conflict} INTO results (key, git_rev, schema, "
                "kind, duration, scenario_json, scenario_hash, runtime_s, "
                "cost_units, created_at, entry) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (key, git_rev,
                 entry.get("schema"), entry.get("kind"), entry.get("duration"),
                 json.dumps(entry.get("scenario", {}), sort_keys=True,
                            default=list),
                 entry.get("scenario_hash", ""), entry.get("runtime_s"),
                 entry.get("cost_units"), time.time(),
                 pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)))
            written = cursor.rowcount > 0
            if written:
                conn.execute(
                    "DELETE FROM metrics WHERE key = ? AND git_rev = ?",
                    (key, git_rev))
                conn.executemany(
                    "INSERT OR REPLACE INTO metrics (key, git_rev, name, "
                    "value) VALUES (?, ?, ?, ?)",
                    [(key, git_rev, name, value) for name, value
                     in sorted(numeric_metrics(entry).items())])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return written

    def invalidate(self, key: str) -> None:
        """Drop every revision's row for ``key`` (e.g. one that failed
        validation)."""
        conn = self.connection()
        conn.execute("DELETE FROM results WHERE key = ?", (key,))
        conn.execute("DELETE FROM metrics WHERE key = ?", (key,))

    def __len__(self) -> int:
        """Distinct result keys on file (the pickle cache counted files)."""
        return self.connection().execute(
            "SELECT COUNT(DISTINCT key) FROM results").fetchone()[0]

    # -- SQL-side queries (no result unpickling) --------------------------------------
    def calibration_rows(self) -> Iterator[tuple]:
        """``(kind, cost_units, runtime_s)`` per row — the cost model's
        calibration data, straight from SQL (the pickle cache had to
        unpickle every full result payload for this)."""
        yield from self.connection().execute(
            "SELECT kind, cost_units, runtime_s FROM results "
            "WHERE schema = ?", (CACHE_SCHEMA_VERSION,))

    def rows(self, kind: Optional[str] = None,
             scenario_hash: Optional[str] = None,
             git_rev: Optional[str] = None,
             keys: Optional[set] = None) -> list[dict]:
        """Provenance-only row dicts, filtered; newest first.

        ``scenario_hash`` and ``git_rev`` match by prefix, so the short
        hashes humans copy around work.  Result payloads stay pickled.
        """
        query = ("SELECT key, git_rev, schema, kind, duration, "
                 "scenario_json, scenario_hash, runtime_s, cost_units, "
                 "created_at FROM results")
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if scenario_hash is not None:
            clauses.append("scenario_hash LIKE ?")
            params.append(scenario_hash + "%")
        if git_rev is not None:
            clauses.append("git_rev LIKE ?")
            params.append(git_rev + "%")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_at DESC, rowid DESC"
        rows = []
        for record in self.connection().execute(query, params):
            row = {
                "key": record[0], "git_rev": record[1], "schema": record[2],
                "kind": record[3], "duration": record[4],
                "scenario": json.loads(record[5]), "scenario_hash": record[6],
                "runtime_s": record[7], "cost_units": record[8],
                "created_at": record[9],
            }
            if keys is None or row["key"] in keys:
                rows.append(row)
        return rows

    def git_revs(self) -> list[str]:
        """Every revision with rows on file, most recently written first."""
        return [row[0] for row in self.connection().execute(
            "SELECT git_rev, MAX(created_at) AS newest FROM results "
            "GROUP BY git_rev ORDER BY newest DESC")]

    def result_set(self, git_rev: Optional[str] = None) -> dict[str, dict]:
        """key → validated entry, optionally restricted to one revision
        (prefix match) — the operand of :func:`diff_result_sets`."""
        if git_rev is None:
            return {entry["key"]: entry for entry in self.entries()}
        entries = {}
        for record in self.connection().execute(
                "SELECT key, entry FROM results WHERE git_rev LIKE ? "
                "ORDER BY created_at, rowid", (git_rev + "%",)):
            try:
                entry = pickle.loads(record[1])
            except Exception:
                logger.warning("cache entry %s is unreadable; skipping",
                               self.locate(record[0]))
                continue
            entry = _validate_entry(entry, self.locate(record[0]))
            if entry is not None:
                entries[record[0]] = entry
        return entries

    # -- fleet analytics (pure SQL over provenance + metrics) -------------------------
    def _population(self, conn: sqlite3.Connection, table: str,
                    rows, columns: str) -> None:
        """(Re)fill a temp table with a population selection.  Temp tables
        are connection-local, so concurrent readers never collide."""
        conn.execute(f"CREATE TEMP TABLE IF NOT EXISTS {table} "
                     f"({columns}, PRIMARY KEY (key)) WITHOUT ROWID")
        conn.execute(f"DELETE FROM {table}")
        conn.executemany(
            f"INSERT OR REPLACE INTO {table} VALUES "
            f"({', '.join('?' * len(columns.split(',')))})", rows)

    def select_newest(self, keys, git_rev: Optional[str] = None
                      ) -> dict[str, str]:
        """``key -> git_rev`` of the newest current-schema row per key.

        The fleet report's row selection: restricted to the population
        ``keys``, optionally pinned to a revision (prefix match), and
        computed from provenance columns alone — no payload is unpickled.
        Keys with no row on file are simply absent (the report counts
        them as uncovered).
        """
        conn = self.connection()
        self._population(conn, "_population_keys",
                         ((key,) for key in keys), "key TEXT")
        query = ("SELECT r.key, r.git_rev, r.created_at, r.rowid "
                 "FROM results r JOIN _population_keys p ON p.key = r.key "
                 "WHERE r.schema = ?")
        params: list = [CACHE_SCHEMA_VERSION]
        if git_rev is not None:
            query += " AND r.git_rev LIKE ?"
            params.append(git_rev + "%")
        newest: dict[str, tuple] = {}
        for key, rev, created_at, rowid in conn.execute(query, params):
            current = newest.get(key)
            if current is None or (created_at, rowid) > current[1]:
                newest[key] = (rev, (created_at, rowid))
        return {key: rev for key, (rev, _) in newest.items()}

    def metric_values(self, selection: dict[str, str],
                      pattern: str) -> dict[str, list[float]]:
        """``key -> values`` of the metrics matching ``pattern`` among the
        ``(key, git_rev)`` rows in ``selection``.

        ``pattern`` is a SQL LIKE pattern (escape character ``\\``) over
        the flattened dotted metric names; one key yields several values
        when the pattern spans instances (``reports[%].rtt.mean``).
        Values come straight from the indexed ``metrics`` table —
        no pickle is ever loaded on this path.
        """
        conn = self.connection()
        self._population(conn, "_population_rows",
                         selection.items(), "key TEXT, git_rev TEXT")
        values: dict[str, list[float]] = {}
        for key, value in conn.execute(
                "SELECT m.key, m.value FROM metrics m "
                "JOIN _population_rows p "
                "ON p.key = m.key AND p.git_rev = m.git_rev "
                "WHERE m.name LIKE ? ESCAPE '\\' "
                "ORDER BY m.key, m.name", (pattern,)):
            values.setdefault(key, []).append(value)
        return values

    def provenance_values(self, selection: dict[str, str],
                          column: str) -> dict[str, list[float]]:
        """Like :meth:`metric_values` for a numeric provenance column
        (``runtime_s`` / ``cost_units`` / ``duration``) — the seam that
        turns the store into a cross-revision perf ledger."""
        if column not in PROVENANCE_METRIC_COLUMNS:
            raise ValueError(f"unknown provenance metric {column!r}; "
                             f"known: {PROVENANCE_METRIC_COLUMNS}")
        conn = self.connection()
        self._population(conn, "_population_rows",
                         selection.items(), "key TEXT, git_rev TEXT")
        return {key: [value] for key, value in conn.execute(
            f"SELECT r.key, r.{column} FROM results r "
            "JOIN _population_rows p "
            "ON p.key = r.key AND p.git_rev = r.git_rev "
            f"WHERE r.{column} IS NOT NULL ORDER BY r.key")}

    def backfill_metrics(self) -> "BackfillReport":
        """One-shot metrics backfill for rows that predate the table.

        Every current-schema result row without metrics rows gets its
        payload unpickled once and its numeric leaves written — after
        which the query path above never touches a payload again.
        Idempotent; unreadable payloads are logged and skipped.
        """
        conn = self.connection()
        pending = conn.execute(
            "SELECT key, git_rev, entry FROM results r WHERE schema = ? "
            "AND NOT EXISTS (SELECT 1 FROM metrics m WHERE m.key = r.key "
            "AND m.git_rev = r.git_rev)",
            (CACHE_SCHEMA_VERSION,)).fetchall()
        report = BackfillReport()
        for key, git_rev, blob in pending:
            try:
                entry = pickle.loads(blob)
                rows = sorted(numeric_metrics(entry).items())
            except Exception:
                logger.warning("cache entry %s is unreadable; metrics not "
                               "backfilled", self.locate(key))
                report.skipped += 1
                continue
            if not rows:
                report.skipped += 1
                continue
            conn.executemany(
                "INSERT OR REPLACE INTO metrics (key, git_rev, name, value) "
                "VALUES (?, ?, ?, ?)",
                [(key, git_rev, name, value) for name, value in rows])
            report.backfilled += 1
        if report.backfilled:
            logger.info("backfilled metrics for %d result row(s) in %s "
                        "(%d skipped)", report.backfilled, self.db_path,
                        report.skipped)
        return report

    # -- garbage collection -----------------------------------------------------------
    def gc(self, keep_revs: int = 1, dry_run: bool = False,
           vacuum: bool = True) -> "GcReport":
        """Prune superseded rows: keep the newest ``keep_revs`` revisions
        per key, drop the rest (results and metrics alike).

        Long-lived fleet stores accumulate one row per ``(key, git_rev)``
        across commits; replays only ever read the newest, so older
        revisions are pure ledger history — bound it explicitly.  Every
        dropped ``(key, git_rev)`` pair is logged.  ``dry_run`` reports
        without deleting; ``vacuum`` returns the freed pages to the
        filesystem afterwards.
        """
        if keep_revs < 1:
            raise ValueError("keep_revs must be at least 1")
        conn = self.connection()
        by_key: dict[str, list[tuple]] = {}
        for key, rev, created_at, rowid in conn.execute(
                "SELECT key, git_rev, MAX(created_at), MAX(rowid) "
                "FROM results GROUP BY key, git_rev"):
            by_key.setdefault(key, []).append((created_at, rowid, rev))
        report = GcReport(keys=len(by_key), keep_revs=keep_revs,
                          dry_run=dry_run)
        doomed: list[tuple[str, str]] = []
        for key in sorted(by_key):
            revs = sorted(by_key[key], reverse=True)
            report.kept_rows += min(len(revs), keep_revs)
            for _, _, rev in revs[keep_revs:]:
                doomed.append((key, rev))
                logger.info(
                    "results gc: %s %s@%s (superseded; keeping the newest "
                    "%d revision(s))", "would drop" if dry_run else
                    "dropping", key[:12], rev[:12], keep_revs)
        report.dropped_rows = len(doomed)
        report.dropped_metrics = sum(
            conn.execute("SELECT COUNT(*) FROM metrics "
                         "WHERE key = ? AND git_rev = ?", pair).fetchone()[0]
            for pair in doomed)
        if doomed and not dry_run:
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.executemany(
                    "DELETE FROM results WHERE key = ? AND git_rev = ?",
                    doomed)
                conn.executemany(
                    "DELETE FROM metrics WHERE key = ? AND git_rev = ?",
                    doomed)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            if vacuum:
                conn.execute("VACUUM")
                report.vacuumed = True
        if report.dropped_rows:
            logger.info(
                "results gc: %s %d superseded row(s) across %d key(s) in %s "
                "(%d kept)", "would drop" if dry_run else "dropped",
                report.dropped_rows, report.keys, self.db_path,
                report.kept_rows)
        return report

    # -- trained-agent artifacts --------------------------------------------------------
    # Content-addressed artefact payloads (trained agents, see
    # repro.agents.artifacts) ride in the same database as the results
    # they enable, provenance-stamped like result rows.  The hash is the
    # whole identity — the same spec always trains to bit-identical
    # bytes — so writes are INSERT OR IGNORE: the first writer wins and
    # every later writer is a no-op, which makes concurrent training
    # races (pool workers, fleet workers) harmless.

    def put_artifact_bytes(self, hash: str, payload: bytes, *, schema: int,
                           kind: str = "agent",
                           benchmark: Optional[str] = None,
                           spec: Optional[dict] = None,
                           runtime_s: Optional[float] = None) -> bool:
        """Store one artefact payload under its content hash (idempotent);
        returns whether a new row was written."""
        conn = self.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO artifacts (hash, schema, kind, "
                "benchmark, spec_json, git_rev, created_at, runtime_s, "
                "size_bytes, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (hash, schema, kind, benchmark,
                 json.dumps(spec or {}, sort_keys=True, default=list),
                 current_git_rev(), time.time(), runtime_s, len(payload),
                 payload))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return cursor.rowcount > 0

    def get_artifact_bytes(self, hash: str,
                           schema: Optional[int] = None) -> Optional[bytes]:
        """The stored payload for ``hash``, or None when absent or stale.

        With ``schema`` given, a row written under a different artefact
        schema version is rejected with a log line (mirroring the result
        rows' stale-entry contract) so consumers retrain instead of
        deserializing a stale layout.
        """
        row = self.connection().execute(
            "SELECT schema, payload FROM artifacts WHERE hash = ?",
            (hash,)).fetchone()
        if row is None:
            return None
        if schema is not None and row[0] != schema:
            logger.warning(
                "rejecting stale artifact %s: schema version %s != current "
                "%s; recomputing", self.locate(hash), row[0], schema)
            return None
        return row[1]

    def artifact_rows(self, benchmark: Optional[str] = None) -> list[dict]:
        """Provenance rows of stored artefacts, newest first (payloads
        stay in the database — ``get_artifact_bytes`` serves those)."""
        query = ("SELECT hash, schema, kind, benchmark, spec_json, git_rev, "
                 "created_at, runtime_s, size_bytes FROM artifacts")
        params: list = []
        if benchmark is not None:
            query += " WHERE benchmark = ?"
            params.append(benchmark)
        query += " ORDER BY created_at DESC, hash"
        return [{"hash": row[0], "schema": row[1], "kind": row[2],
                 "benchmark": row[3], "spec": json.loads(row[4]),
                 "git_rev": row[5], "created_at": row[6],
                 "runtime_s": row[7], "size_bytes": row[8]}
                for row in self.connection().execute(query, params)]

    def gc_artifacts(self, keep: int = 1, dry_run: bool = False,
                     vacuum: bool = True) -> "ArtifactGcReport":
        """Prune artefacts: keep the newest ``keep`` per (kind, benchmark).

        Trained-agent payloads are the largest rows a store carries;
        like :meth:`gc` this bounds growth explicitly, and every dropped
        hash is logged.
        """
        if keep < 1:
            raise ValueError("keep must be at least 1")
        conn = self.connection()
        groups: dict[tuple, list[tuple]] = {}
        for hash_, kind, benchmark, created_at, rowid in conn.execute(
                "SELECT hash, kind, benchmark, created_at, rowid "
                "FROM artifacts"):
            groups.setdefault((kind, benchmark or ""), []).append(
                (created_at, rowid, hash_))
        report = ArtifactGcReport(groups=len(groups), keep=keep,
                                  dry_run=dry_run)
        doomed: list[tuple[str]] = []
        for group in sorted(groups):
            rows = sorted(groups[group], reverse=True)
            report.kept += min(len(rows), keep)
            for _, _, hash_ in rows[keep:]:
                doomed.append((hash_,))
                logger.info(
                    "artifacts gc: %s %s (kind=%s benchmark=%s; keeping the "
                    "newest %d)", "would drop" if dry_run else "dropping",
                    hash_[:12], group[0], group[1] or "-", keep)
        report.dropped = len(doomed)
        if doomed and not dry_run:
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.executemany("DELETE FROM artifacts WHERE hash = ?",
                                 doomed)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            if vacuum:
                conn.execute("VACUUM")
                report.vacuumed = True
        return report


@dataclass
class ArtifactGcReport:
    """What one :meth:`ResultStore.gc_artifacts` pass did (or would do)."""

    groups: int = 0           # distinct (kind, benchmark) groups examined
    keep: int = 1
    kept: int = 0
    dropped: int = 0
    dry_run: bool = False
    vacuumed: bool = False


@dataclass
class BackfillReport:
    """What one :meth:`ResultStore.backfill_metrics` pass did."""

    backfilled: int = 0
    skipped: int = 0      # unreadable payloads / no numeric leaves


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` pass did (or would do)."""

    keys: int = 0             # distinct keys examined
    keep_revs: int = 1
    kept_rows: int = 0
    dropped_rows: int = 0     # superseded (key, git_rev) result rows
    dropped_metrics: int = 0  # metrics rows that went with them
    dry_run: bool = False
    vacuumed: bool = False


class ResultCache(ResultStore):
    """Compatibility shim: the pickle-directory cache's name and API,
    now backed by the SQLite :class:`ResultStore`.

    Constructing one over an old pickle-cache directory migrates the
    ``*.pkl`` entries into ``<root>/results.sqlite`` in one shot (see
    :func:`migrate_pickle_dir`); ``get`` / ``get_entry`` / ``entries`` /
    ``put`` / ``invalidate`` / ``len()`` behave exactly as before.  New
    code should say :class:`ResultStore`.
    """


class PickleResultCache:
    """The legacy one-pickle-file-per-entry cache format.

    Kept for two jobs: reading old cache directories during migration,
    and the equivalence tests that prove a pickle replay and a store
    replay return bit-identical results.  Not written by any backend
    anymore.
    """

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, job: "ExperimentJob"):
        entry = self.get_entry(job.key())
        if entry is None:
            return None
        if not _check_scenario_hash(entry, job, self._path(job.key())):
            return None
        return entry.get("result")

    def get_entry(self, key: str) -> Optional[dict]:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
        except Exception:
            logger.warning("cache entry %s is unreadable; recomputing", path)
            return None
        return _validate_entry(entry, path)

    def entries(self) -> Iterator[dict]:
        for path in sorted(self.root.glob("*.pkl")):
            entry = self.get_entry(path.stem)
            if entry is not None:
                yield entry

    def put(self, job: "ExperimentJob", result,
            runtime_s: Optional[float] = None) -> None:
        entry = build_entry(job, result, runtime_s=runtime_s)
        atomic_write_bytes(self.root, self._path(job.key()),
                           pickle.dumps(entry,
                                        protocol=pickle.HIGHEST_PROTOCOL))

    def invalidate(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))


# -- migration ------------------------------------------------------------------------
@dataclass
class MigrationReport:
    """What one pickle-directory migration pass did."""

    migrated: int = 0
    skipped: int = 0      # rows that already existed (idempotent re-run)
    rejected: int = 0     # stale-schema / unreadable / unstamped pickles


def migrate_pickle_dir(store: ResultStore,
                       directory: Optional[os.PathLike | str] = None
                       ) -> MigrationReport:
    """Import a legacy pickle-cache directory's entries into ``store``.

    Reads every ``*.pkl`` in ``directory`` (default: the store's own
    root — the promotion path for existing cache dirs) through the same
    validation the pickle cache applied on read, so stale-schema and
    unstamped entries are logged and skipped, never laundered into the
    database.  Idempotent: entries whose ``(key, git_rev)`` row already
    exists are skipped, and the pickle files are left untouched.
    """
    legacy = PickleResultCache(directory if directory is not None
                               else store.root)
    report = MigrationReport()
    paths = sorted(legacy.root.glob("*.pkl"))
    if not paths:
        return report
    # The legacy format keeps one file per key (the filename stem), so a
    # key already in the database needs no unpickling at all — re-runs
    # over an already-migrated directory cost one SQL query plus a glob.
    migrated_keys = {row[0] for row in store.connection().execute(
        "SELECT DISTINCT key FROM results")}
    for path in paths:
        if path.stem in migrated_keys:
            report.skipped += 1
            continue
        entry = legacy.get_entry(path.stem)
        if entry is None:
            report.rejected += 1
            continue
        if store.put_entry(entry, replace=False):
            report.migrated += 1
        else:
            report.skipped += 1
    if report.migrated:
        logger.info(
            "migrated %d legacy pickle cache entr%s from %s into %s "
            "(%d already present, %d rejected)", report.migrated,
            "y" if report.migrated == 1 else "ies", legacy.root,
            store.db_path, report.skipped, report.rejected)
    return report


# -- query / diff tooling -------------------------------------------------------------
def flatten_metrics(value, prefix: str = "") -> dict:
    """Every leaf of a nested dict/list/dataclass structure, keyed by
    dotted path — the comparable surface of a result.  Numeric leaves
    stay floats (the diff applies its tolerance to them); any other
    leaf is kept as a string and compared for exact equality, so a
    changed label or status can never hide behind a tolerance."""
    metrics: dict = {}
    if is_dataclass(value) and not isinstance(value, type):
        value = {name: getattr(value, name)
                 for name in value.__dataclass_fields__}
    if isinstance(value, dict):
        for key in sorted(value, key=str):
            child = f"{prefix}.{key}" if prefix else str(key)
            metrics.update(flatten_metrics(value[key], child))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            metrics.update(flatten_metrics(item, f"{prefix}[{index}]"))
    elif isinstance(value, bool):
        metrics[prefix] = float(value)
    elif isinstance(value, (int, float)):
        metrics[prefix] = float(value)
    else:
        metrics[prefix] = str(value)
    return metrics


def entry_metrics(entry: dict) -> dict:
    """The flattened leaves of one entry's result payload."""
    result = entry.get("result")
    if hasattr(result, "as_dict"):
        result = result.as_dict()
    return flatten_metrics(result)


def numeric_metrics(entry: dict) -> dict[str, float]:
    """The finite numeric leaves of one entry's result payload — the rows
    the store's ``metrics`` table indexes.  Non-numeric leaves stay the
    diff tooling's business; non-finite values are dropped (SQLite would
    silently turn NaN into NULL)."""
    return {name: value for name, value in entry_metrics(entry).items()
            if isinstance(value, float) and math.isfinite(value)}


@dataclass(frozen=True)
class DiffDelta:
    """One metric that moved (or vanished) between two result sets.

    ``a`` / ``b`` are floats for numeric leaves, strings for any other
    leaf, and None on the side where the metric is missing entirely.
    """

    key: str
    metric: str
    a: object
    b: object

    @property
    def delta(self) -> Optional[float]:
        if isinstance(self.a, float) and isinstance(self.b, float):
            return self.b - self.a
        return None


@dataclass
class DiffReport:
    """Per-metric comparison of two result sets (see ``results diff``)."""

    matched: int = 0                 # keys present on both sides
    identical: int = 0               # matched keys with no delta
    deltas: list = field(default_factory=list)
    only_in_a: list = field(default_factory=list)
    only_in_b: list = field(default_factory=list)

    def empty(self) -> bool:
        """True when the sets agree: same keys, every metric in tolerance."""
        return not self.deltas and not self.only_in_a and not self.only_in_b

    def to_dict(self) -> dict:
        return {
            "matched": self.matched,
            "identical": self.identical,
            "empty": self.empty(),
            "deltas": [{"key": d.key, "metric": d.metric, "a": d.a,
                        "b": d.b, "delta": d.delta} for d in self.deltas],
            "only_in_a": list(self.only_in_a),
            "only_in_b": list(self.only_in_b),
        }


def _within_tolerance(a, b, tolerance: float) -> bool:
    if a == b:
        return True
    if not (isinstance(a, float) and isinstance(b, float)):
        return False        # non-numeric leaves: exact equality only
    return abs(a - b) <= tolerance * max(abs(a), abs(b), 1.0)


class ToleranceTable:
    """Per-metric relative tolerances for :func:`diff_result_sets`.

    The fast-forward accuracy envelope is not one number: horizon-
    normalized rates (FPS, utilization, power) land within a few percent
    of the exact run, while sparse counters (inputs tracked in a short
    window) carry much larger relative quantization.  A table maps metric
    name patterns to tolerances so each class gets its own bar and the
    envelope is a reviewable, committed artifact rather than one loose
    scalar that hides regressions in the tight metrics.

    Patterns support ``*`` wildcards only — matched with an escaped
    regex, **not** :mod:`fnmatch`, because flattened metric names contain
    literal brackets (``reports[0].client_fps``) that fnmatch would
    parse as character classes.  First matching pattern wins, in table
    order; metrics matching no pattern fall back to ``default``.
    """

    def __init__(self, patterns=(), default: float = 0.0):
        self.default = float(default)
        self.patterns: list[tuple[str, float]] = []
        self._compiled: list[tuple[re.Pattern, float]] = []
        for pattern, tolerance in patterns:
            self.add(pattern, tolerance)

    def add(self, pattern: str, tolerance: float) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance for {pattern!r} must be >= 0, "
                             f"got {tolerance!r}")
        regex = re.compile(
            "^" + ".*".join(re.escape(part) for part in pattern.split("*"))
            + "$")
        self.patterns.append((pattern, float(tolerance)))
        self._compiled.append((regex, float(tolerance)))

    def tolerance_for(self, metric: str) -> float:
        for regex, tolerance in self._compiled:
            if regex.match(metric):
                return tolerance
        return self.default

    @classmethod
    def from_mapping(cls, mapping: dict) -> "ToleranceTable":
        """Build from a ``pattern -> tolerance`` mapping (e.g. a loaded
        JSON file).  The reserved key ``"default"`` sets the fallback,
        dunder keys (``"__comment__"``) are ignored; the remaining
        entries keep the mapping's order (first match wins, so put
        specific patterns before broad ones)."""
        table = cls(default=float(mapping.get("default", 0.0)))
        for pattern, tolerance in mapping.items():
            if pattern == "default" or pattern.startswith("__"):
                continue
            table.add(pattern, float(tolerance))
        return table

    @classmethod
    def load(cls, path: os.PathLike | str) -> "ToleranceTable":
        """Load a committed tolerance table (a flat JSON object)."""
        with open(path, "r", encoding="utf-8") as handle:
            mapping = json.load(handle)
        if not isinstance(mapping, dict):
            raise ValueError(f"tolerance table {path} must be a JSON "
                             "object of pattern -> tolerance")
        return cls.from_mapping(mapping)


def rekey_ignoring_fast_forward(entries: dict[str, dict]) -> dict[str, dict]:
    """Re-key a ``key → entry`` result set as if every scenario had the
    default (disabled) fast-forward configuration.

    Job keys deliberately include the fast-forward settings — a macro-
    model approximation must never *replay* as the exact result — so an
    exact run and its fast-forwarded twin normally occupy different keys
    and ``results diff`` would report them as unmatched.  Envelope
    checking wants exactly that comparison: this helper recomputes each
    entry's key from its stamped provenance with ``fast_forward``
    dropped from the scenario config, using the same canonical-JSON
    hash as :meth:`ExperimentJob.key`, so the twins collide and diff
    metric by metric.
    """
    rekeyed: dict[str, dict] = {}
    for entry in entries.values():
        scenario = copy.deepcopy(entry.get("scenario", {}))
        if isinstance(scenario.get("config"), dict):
            scenario["config"].pop("fast_forward", None)
        payload = {
            "kind": entry.get("kind"),
            "duration": entry.get("duration"),
            "scenario": {key: value for key, value in scenario.items()
                         if key != "schema"},
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"), default=list)
        rekeyed[hashlib.sha256(canonical.encode("utf-8")).hexdigest()] = entry
    return rekeyed


def diff_result_sets(a: dict[str, dict], b: dict[str, dict],
                     tolerance: float = 0.0,
                     tolerances: Optional[ToleranceTable] = None
                     ) -> DiffReport:
    """Compare two ``key → entry`` sets metric by metric.

    ``tolerance`` is relative (with an absolute floor of 1.0 in the
    denominator, so near-zero metrics compare sanely); the default 0.0
    demands bit-identical numbers — the right bar for two runs of a
    deterministic executor, and what CI asserts across revisions.
    ``tolerances`` supplies a per-metric :class:`ToleranceTable` instead
    (the fast-forward accuracy envelope); when given it supersedes the
    scalar for every metric.
    """
    report = DiffReport()
    report.only_in_a = sorted(set(a) - set(b))
    report.only_in_b = sorted(set(b) - set(a))
    for key in sorted(set(a) & set(b)):
        report.matched += 1
        metrics_a = entry_metrics(a[key])
        metrics_b = entry_metrics(b[key])
        clean = True
        for metric in sorted(set(metrics_a) | set(metrics_b)):
            value_a = metrics_a.get(metric)
            value_b = metrics_b.get(metric)
            allowed = (tolerances.tolerance_for(metric)
                       if tolerances is not None else tolerance)
            if value_a is None or value_b is None:
                report.deltas.append(DiffDelta(key, metric, value_a, value_b))
                clean = False
            elif not _within_tolerance(value_a, value_b, allowed):
                report.deltas.append(DiffDelta(key, metric, value_a, value_b))
                clean = False
        if clean:
            report.identical += 1
    return report
