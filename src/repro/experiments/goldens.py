"""Golden-trace scenarios: the kernel's machine-checked equivalence suite.

A *golden trace* is the byte-exact processed-event sequence (see
:mod:`repro.sim.trace`) of one registered scenario run.  The committed
files under ``tests/golden/`` pin the kernel's observable behavior on
real workloads — a kernel optimization is only shippable if every golden
re-records byte-identically, and the traces must also agree between the
serial and worker-process executor backends.

The registry deliberately reuses the CLI's spec surface: the mixes come
from ``examples/scenarios/mix3.json`` (the same file CI runs through the
scenario CLI) plus one single-app scenario, all under the fixed smoke
config, with short horizons so the whole suite records in seconds.

Re-record after an intentional semantic change with::

    python -m repro.experiments trace --update

Plain ``python -m repro.experiments trace`` only *checks* — CI runs it
that way so goldens are never rewritten silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.scenarios.config import ExperimentConfig
from repro.scenarios.scenario import Scenario

__all__ = [
    "GOLDEN_DIR",
    "GoldenSpec",
    "check_goldens",
    "golden_registry",
    "golden_path",
    "record_golden",
    "update_goldens",
]

#: Repository root (this file lives at src/repro/experiments/goldens.py).
_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Where golden traces are committed.
GOLDEN_DIR = _REPO_ROOT / "tests" / "golden"

#: The mix spec file shared with the scenario CLI and CI.
MIX3_SPEC = _REPO_ROOT / "examples" / "scenarios" / "mix3.json"

#: Fixed config for golden runs: the smoke profile, pinned seed.  The
#: horizons are shortened further per spec so recording stays fast.
_GOLDEN_CONFIG = ExperimentConfig.smoke(seed=42)

#: Run horizons for golden recordings (simulated seconds).
_GOLDEN_DURATION = 0.6
_GOLDEN_WARMUP = 0.2


@dataclass(frozen=True)
class GoldenSpec:
    """One registered golden workload."""

    name: str
    scenario: Scenario
    duration: float = _GOLDEN_DURATION
    warmup: float = _GOLDEN_WARMUP


def golden_registry() -> dict[str, GoldenSpec]:
    """All registered golden workloads, keyed by name."""
    specs: dict[str, GoldenSpec] = {}

    single = Scenario.single("RE", config=_GOLDEN_CONFIG)
    specs["single-re"] = GoldenSpec("single-re", single)

    mix_entries = json.loads(MIX3_SPEC.read_text())
    for index, entry in enumerate(mix_entries):
        scenario = Scenario.from_dict(entry, config=_GOLDEN_CONFIG)
        name = f"mix3-{index}"
        specs[name] = GoldenSpec(name, scenario)

    # Network-degradation variants of the 3-way mix: the first
    # figure-independent use of the link registries.  The kernel's event
    # order under a degraded (or faster) link is behavior worth pinning —
    # latency and bandwidth feed the per-packet event schedule directly.
    degraded_base = Scenario.from_dict(mix_entries[0], config=_GOLDEN_CONFIG)
    for network in ("cellular_5g", "broadband_10g"):
        scenario = replace(degraded_base, network=network)
        name = f"mix3-0-{network}"
        specs[name] = GoldenSpec(name, scenario)
    return specs


def golden_path(name: str, golden_dir: Path | None = None) -> Path:
    return (golden_dir or GOLDEN_DIR) / f"{name}.trace"


def record_golden(name: str, heap: str = "tuple") -> str:
    """Run one registered golden scenario and return its trace text.

    Module-level and argument-picklable on purpose: the regression tests
    ship this function to worker processes to prove the serial and
    process-pool backends produce identical traces.  ``heap`` selects
    the kernel heap implementation; every implementation must record
    the same bytes (the trace header does not mention the heap for
    exactly that reason).
    """
    spec = golden_registry()[name]
    host = spec.scenario.build_host(heap=heap)
    recorder = host.attach_tracer()
    host.run(duration=spec.duration, warmup=spec.warmup)
    recorder.close()
    header = (f"golden={spec.name} scenario={spec.scenario.short_hash()} "
              f"duration={spec.duration:g} warmup={spec.warmup:g}")
    return recorder.text(header=header)


def check_goldens(golden_dir: Path | None = None,
                  heap: str = "tuple") -> dict[str, str]:
    """Re-record every golden and compare against the committed files.

    Returns ``{name: status}`` where status is ``"ok"``, ``"missing"``
    or ``"mismatch: <detail>"``.
    """
    results: dict[str, str] = {}
    for name in golden_registry():
        path = golden_path(name, golden_dir)
        recorded = record_golden(name, heap=heap)
        if not path.exists():
            results[name] = "missing"
            continue
        committed = path.read_text()
        if committed == recorded:
            results[name] = "ok"
        else:
            detail = _first_difference(committed, recorded)
            results[name] = f"mismatch: {detail}"
    return results


def update_goldens(golden_dir: Path | None = None) -> dict[str, str]:
    """Re-record every golden and (re)write the committed files.

    Returns ``{name: status}`` with ``"written"`` or ``"unchanged"``.
    """
    results: dict[str, str] = {}
    directory = golden_dir or GOLDEN_DIR
    directory.mkdir(parents=True, exist_ok=True)
    for name in golden_registry():
        path = golden_path(name, directory)
        recorded = record_golden(name)
        if path.exists() and path.read_text() == recorded:
            results[name] = "unchanged"
        else:
            path.write_text(recorded)
            results[name] = "written"
    return results


def _first_difference(committed: str, recorded: str) -> str:
    old_lines = committed.splitlines()
    new_lines = recorded.splitlines()
    for index, (old, new) in enumerate(zip(old_lines, new_lines), start=1):
        if old != new:
            return f"line {index}: committed {old!r} != recorded {new!r}"
    if len(old_lines) != len(new_lines):
        return (f"length: committed {len(old_lines)} lines, "
                f"recorded {len(new_lines)} lines")
    return "unknown difference"
