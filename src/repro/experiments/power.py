"""Figure 17: per-instance power when colocating 1–4 instances.

Adding an instance raises total server power only modestly (the idle
floor and the GPU dominate), so the power attributable to each instance
drops by roughly 33%, 50% and 61% at two, three and four instances —
the energy argument for cloud consolidation in Section 5.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentSuite, run_jobs
from repro.experiments.jobs import ExperimentJob
from repro.scenarios.scenario import Scenario

__all__ = ["PowerPoint", "power_jobs", "power_points_from_results",
           "per_instance_power"]


@dataclass
class PowerPoint:
    """Power measurements for one (benchmark, instance-count) configuration."""

    benchmark: str
    instances: int
    total_power_watts: float
    per_instance_power_watts: float
    energy_joules: float

    def reduction_vs(self, single: "PowerPoint") -> float:
        """Per-instance power reduction (%) relative to the 1-instance run."""
        if single.per_instance_power_watts <= 0:
            return 0.0
        return (1.0 - self.per_instance_power_watts
                / single.per_instance_power_watts) * 100.0


def power_jobs(benchmark: str, config: Optional[ExperimentConfig] = None,
               max_instances: Optional[int] = None) -> list[ExperimentJob]:
    """The Figure-17 colocation runs, as declarative jobs."""
    config = config or ExperimentConfig()
    max_instances = max_instances or config.max_instances
    return [ExperimentJob(Scenario.colocated(benchmark, count, config,
                                             seed_offset=200 + count))
            for count in range(1, max_instances + 1)]


def power_points_from_results(benchmark: str, results) -> list[PowerPoint]:
    return [PowerPoint(
        benchmark=benchmark,
        instances=len(result.reports),
        total_power_watts=result.average_power_watts,
        per_instance_power_watts=result.per_instance_power_watts,
        energy_joules=result.energy_joules,
    ) for result in results]


def per_instance_power(benchmark: str, config: Optional[ExperimentConfig] = None,
                       max_instances: Optional[int] = None,
                       suite: Optional[ExperimentSuite] = None) -> list[PowerPoint]:
    """Figure 17 series for one benchmark."""
    jobs = power_jobs(benchmark, config, max_instances)
    return power_points_from_results(benchmark, run_jobs(jobs, suite))
