"""Fleet-scale experiment sweeps: sampled populations, cohort analytics.

The fourth pillar next to :mod:`repro.scenarios`, :mod:`repro.sim` and
:mod:`repro.experiments`.  Three layers:

1. **Population sampling** — a declarative, content-hashed
   :class:`PopulationSpec` describing distributions over the scenario
   registries, and a deterministic, streamable :func:`sample` that turns
   (spec, n, seed) into the same :class:`~repro.scenarios.Scenario`
   sequence on every machine.
2. **Fleet execution** — :func:`population_jobs` feeds a sample to the
   existing :class:`~repro.experiments.ExperimentSuite` backends
   unchanged; the content-addressed store makes interrupted runs
   resumable for free.
3. **Cohort analytics** — :func:`fleet_report` answers p50/p95/p99
   latency, FPS and power per cohort (network, machine, variant, mix
   arity) with pure SQL over the store's ``metrics`` table, and
   :func:`compare_reports` turns two revisions of the same population
   into a perf ledger.

>>> from repro.fleet import PopulationSpec, sample
>>> spec = PopulationSpec(benchmarks=("RE", "D2"), mix_sizes={1: 1, 2: 1})
>>> [s.content_hash() for s in sample(spec, 3, seed=0)] == \\
...     [s.content_hash() for s in sample(spec, 3, seed=0)]
True
"""

from repro.fleet.analytics import (
    COHORT_DIMENSIONS,
    DEFAULT_DIMENSIONS,
    DEFAULT_METRICS,
    CohortStat,
    FleetReport,
    MetricSelector,
    cohort_value,
    compare_reports,
    fleet_report,
    like_pattern,
    quantile,
)
from repro.fleet.population import (
    POPULATION_SCHEMA_VERSION,
    PopulationSpec,
    sample,
    sample_one,
)
from repro.fleet.runner import (
    population_digest,
    population_jobs,
    scenarios_by_key,
)

__all__ = [
    "COHORT_DIMENSIONS",
    "CohortStat",
    "DEFAULT_DIMENSIONS",
    "DEFAULT_METRICS",
    "FleetReport",
    "MetricSelector",
    "POPULATION_SCHEMA_VERSION",
    "PopulationSpec",
    "cohort_value",
    "compare_reports",
    "fleet_report",
    "like_pattern",
    "population_digest",
    "population_jobs",
    "quantile",
    "sample",
    "sample_one",
    "scenarios_by_key",
]
