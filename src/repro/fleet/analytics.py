"""SQL cohort analytics over a fleet's result store.

Answers the fleet questions the ROADMAP names — p50/p95/p99 latency,
FPS, and power *by cohort* (network, machine, session variant, mix
arity) — from the store's indexed ``metrics`` table plus provenance
columns.  **No result payload is ever unpickled on this path**: cohort
membership comes from the sampled scenarios themselves, metric values
from pure SQL (:meth:`~repro.experiments.store.ResultStore.metric_values`
/ :meth:`~repro.experiments.store.ResultStore.provenance_values`).

A :class:`MetricSelector` names either a glob over the flattened dotted
metric names ``results diff`` already speaks (``reports[*].rtt.mean`` —
one value per instance of every session) or, with an ``@`` prefix, a
numeric provenance column (``@runtime_s``), which makes the same report
a cross-revision *perf ledger*: :func:`compare_reports` against a
``--baseline`` revision shows how runtimes and metrics moved between two
commits over the identical population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.experiments.store import ResultStore
from repro.scenarios.scenario import Scenario
from repro.scenarios.variants import variant_name

__all__ = ["COHORT_DIMENSIONS", "CohortStat", "DEFAULT_DIMENSIONS",
           "DEFAULT_METRICS", "FleetReport", "MetricSelector",
           "cohort_value", "compare_reports", "fleet_report",
           "like_pattern", "quantile"]

#: Cohort dimensions a report can group by.  ``arity`` is the number of
#: distinct benchmarks in the mix (a "3-way mix" has arity 3);
#: ``instances`` counts every instance, so counted placements weigh in.
COHORT_DIMENSIONS = ("network", "machine", "variant", "arity", "instances")

DEFAULT_DIMENSIONS = ("network", "machine", "variant", "arity")

#: ``*`` matches any run of characters; everything else is literal.
_LIKE_SPECIALS = ("\\", "%", "_")


@dataclass(frozen=True)
class MetricSelector:
    """One metric a fleet report aggregates.

    ``pattern`` is a glob (``*`` wildcard) over flattened metric names,
    or ``@column`` for a numeric provenance column
    (:data:`~repro.experiments.store.PROVENANCE_METRIC_COLUMNS`).
    """

    label: str
    pattern: str

    @staticmethod
    def parse(text: str) -> "MetricSelector":
        """``LABEL=PATTERN`` (or a bare pattern labelled by itself)."""
        label, _, pattern = text.partition("=")
        if not pattern:
            label, pattern = text, text
        if not label or not pattern:
            raise ValueError(f"cannot parse metric selector {text!r}; "
                             "expected LABEL=PATTERN")
        return MetricSelector(label, pattern)


#: The questions the ROADMAP asks by default: latency, FPS, power —
#: plus per-job runtime, the perf-ledger column.
DEFAULT_METRICS = (
    MetricSelector("rtt_s", "reports[*].rtt.mean"),
    MetricSelector("client_fps", "reports[*].client_fps"),
    MetricSelector("power_w", "average_power_watts"),
    MetricSelector("runtime_s", "@runtime_s"),
)


def like_pattern(glob: str) -> str:
    """The SQL LIKE form (escape ``\\``) of a ``*``-wildcard glob.

    LIKE's own specials (``%``, ``_`` — underscores are everywhere in
    metric names) are escaped, so only ``*`` is a wildcard."""
    out = []
    for char in glob:
        if char == "*":
            out.append("%")
        elif char in _LIKE_SPECIALS:
            out.append("\\" + char)
        else:
            out.append(char)
    return "".join(out)


def quantile(ordered: Sequence[float], q: float) -> float:
    """The ``q``-quantile of an ascending sequence, linearly interpolated
    (numpy's default).  Deterministic, so reports are byte-reproducible."""
    if not ordered:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    position = (len(ordered) - 1) * q
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def cohort_value(scenario: Scenario, dimension: str) -> str:
    """The cohort ``scenario`` belongs to along ``dimension``."""
    if dimension == "network":
        return scenario.network
    if dimension == "machine":
        return scenario.machine
    if dimension == "variant":
        return variant_name(scenario.variant) or "custom"
    if dimension == "arity":
        return str(len(scenario.placements))
    if dimension == "instances":
        return str(len(scenario.benchmarks))
    raise ValueError(f"unknown cohort dimension {dimension!r}; "
                     f"known: {COHORT_DIMENSIONS}")


@dataclass(frozen=True)
class CohortStat:
    """One (metric, dimension, cohort) aggregate."""

    metric: str
    dimension: str
    cohort: str
    count: int                 # pooled values, not sessions
    mean: float
    p50: float
    p95: float
    p99: float
    min: float
    max: float

    def to_dict(self) -> dict:
        return {"metric": self.metric, "dimension": self.dimension,
                "cohort": self.cohort, "count": self.count,
                "mean": self.mean, "p50": self.p50, "p95": self.p95,
                "p99": self.p99, "min": self.min, "max": self.max}


@dataclass
class FleetReport:
    """Per-cohort aggregates for one population over one store."""

    git_rev: Optional[str]     # revision filter, None = newest row per key
    sampled: int               # population keys asked about
    covered: int               # keys with a result row on file
    stats: list[CohortStat]

    def to_dict(self) -> dict:
        return {"git_rev": self.git_rev, "sampled": self.sampled,
                "covered": self.covered,
                "stats": [stat.to_dict() for stat in self.stats]}


def _aggregate(metric: str, dimension: str, cohort: str,
               values: list[float]) -> CohortStat:
    ordered = sorted(values)
    return CohortStat(
        metric=metric, dimension=dimension, cohort=cohort,
        count=len(ordered), mean=math.fsum(ordered) / len(ordered),
        p50=quantile(ordered, 0.50), p95=quantile(ordered, 0.95),
        p99=quantile(ordered, 0.99), min=ordered[0], max=ordered[-1])


def fleet_report(store: ResultStore,
                 scenarios_by_key: Mapping[str, Scenario],
                 dimensions: Iterable[str] = DEFAULT_DIMENSIONS,
                 metrics: Iterable[MetricSelector] = DEFAULT_METRICS,
                 git_rev: Optional[str] = None) -> FleetReport:
    """Aggregate ``store``'s rows for one population into cohort stats.

    ``scenarios_by_key`` is the population index (job key → sampled
    scenario); rows are the newest per key, or pinned to ``git_rev``
    (prefix).  Pure SQL + provenance: monkeypatching ``pickle.loads`` to
    raise leaves this function working, and a test holds it to that.
    """
    dimensions = tuple(dimensions)
    for dimension in dimensions:
        if dimension not in COHORT_DIMENSIONS:
            raise ValueError(f"unknown cohort dimension {dimension!r}; "
                             f"known: {COHORT_DIMENSIONS}")
    selection = store.select_newest(list(scenarios_by_key), git_rev=git_rev)
    stats: list[CohortStat] = []
    for metric in metrics:
        if metric.pattern.startswith("@"):
            by_key = store.provenance_values(selection, metric.pattern[1:])
        else:
            by_key = store.metric_values(selection,
                                         like_pattern(metric.pattern))
        for dimension in dimensions:
            pools: dict[str, list[float]] = {}
            for key, values in by_key.items():
                cohort = cohort_value(scenarios_by_key[key], dimension)
                pools.setdefault(cohort, []).extend(values)
            for cohort in sorted(pools):
                stats.append(_aggregate(metric.label, dimension, cohort,
                                        pools[cohort]))
    return FleetReport(git_rev=git_rev, sampled=len(scenarios_by_key),
                       covered=len(selection), stats=stats)


def compare_reports(current: FleetReport,
                    baseline: FleetReport) -> list[dict]:
    """Per-cohort deltas between two reports over the same population —
    the perf-ledger view.  Cohorts present on only one side are listed
    with the other side's columns empty."""
    def indexed(report: FleetReport) -> dict[tuple, CohortStat]:
        return {(s.metric, s.dimension, s.cohort): s for s in report.stats}

    now, base = indexed(current), indexed(baseline)
    deltas = []
    for spot in sorted(set(now) | set(base)):
        stat_a, stat_b = base.get(spot), now.get(spot)
        row = {"metric": spot[0], "dimension": spot[1], "cohort": spot[2],
               "p50": stat_b.p50 if stat_b else None,
               "p50_baseline": stat_a.p50 if stat_a else None,
               "p99": stat_b.p99 if stat_b else None,
               "p99_baseline": stat_a.p99 if stat_a else None,
               "p50_delta_pct": None, "p99_delta_pct": None}
        if stat_a and stat_b:
            for which in ("p50", "p99"):
                reference = getattr(stat_a, which)
                if reference:
                    change = getattr(stat_b, which) - reference
                    row[f"{which}_delta_pct"] = 100.0 * change / reference
        deltas.append(row)
    return deltas
