"""Population specs: declarative distributions over the scenario space.

The paper's figures enumerate a handful of hand-picked scenarios; a
:class:`PopulationSpec` instead *describes a distribution* over the
registries the scenario model already speaks — weighted mix sizes drawn
from the benchmark pool (the same unordered combinations
:func:`repro.scenarios.n_way_mixes` enumerates), weighted network /
machine / session-variant draws, per-placement instance counts, a
containerization probability, and a seed policy — and
:func:`sample` turns it into a reproducible stream of
:class:`~repro.scenarios.Scenario` values.

Like a scenario, a spec is a frozen value object: it round-trips through
:meth:`PopulationSpec.to_dict` / :meth:`PopulationSpec.from_dict` (the
``fleet`` CLI's JSON format) and has a stable
:meth:`PopulationSpec.content_hash`.

**Sampling guarantees.**  ``sample(spec, n, seed)`` derives one
independent :class:`random.Random` per index from
``sha256(spec_hash : seed : index)``, so

* the same ``(spec, seed)`` yields a byte-identical
  ``content_hash`` sequence in any process on any machine;
* scenario ``i`` never depends on how many scenarios were drawn before
  it — the stream can be sliced, resumed, or generated lazily, and a
  10,000-scenario population never has to materialize in memory;
* any edit to any spec field (and only such an edit) changes the spec
  hash and therefore the whole sample.

Each index also gets its own seed-policy offset
(``seed_offset_base + index * seed_stride``), so two indices that draw
the same mix/network/machine/variant still hash — and therefore run and
cache — as distinct sessions unless ``seed_stride`` is explicitly 0.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional

from repro.apps.registry import all_benchmarks
from repro.scenarios.config import ExperimentConfig
from repro.scenarios.machines import MACHINE_SPECS
from repro.scenarios.mixes import sample_mix
from repro.scenarios.networks import NETWORKS
from repro.scenarios.scenario import (AGENT_FACTORIES, Placement, Scenario,
                                      SeedPolicy, split_agent_name)
from repro.scenarios.variants import SESSION_VARIANTS

__all__ = ["POPULATION_SCHEMA_VERSION", "PopulationSpec", "sample",
           "sample_one"]

#: Bump when the serialized spec layout changes, so stale specs are
#: detectable (the hash itself deliberately excludes it, like Scenario's).
POPULATION_SCHEMA_VERSION = 1

_SPEC_FIELDS = {"schema", "name", "benchmarks", "mix_sizes",
                "instance_counts", "networks", "machines", "variants",
                "containerized", "config", "seed", "agents"}


def _as_weights(value, *, key_type=str) -> tuple[tuple, ...]:
    """Canonicalize a weight table: mapping ``value -> weight``, or a
    sequence of values (equal weights), into a sorted tuple of pairs."""
    if isinstance(value, Mapping):
        items = [(key_type(entry), float(weight))
                 for entry, weight in value.items()]
    elif isinstance(value, (list, tuple)):
        items = []
        for entry in value:
            if isinstance(entry, (list, tuple)) and len(entry) == 2:
                items.append((key_type(entry[0]), float(entry[1])))
            else:
                items.append((key_type(entry), 1.0))
    else:
        raise TypeError(f"cannot interpret {value!r} as a weight table "
                        "(use a mapping value -> weight, or a list of "
                        "values for equal weights)")
    if not items:
        raise ValueError("a weight table needs at least one entry")
    seen = set()
    for entry, weight in items:
        if entry in seen:
            raise ValueError(f"duplicate weight-table entry {entry!r}")
        seen.add(entry)
        if not weight > 0.0 or weight != weight or weight == float("inf"):
            raise ValueError(f"weight for {entry!r} must be a positive "
                             f"finite number, not {weight!r}")
    return tuple(sorted(items))


def _weighted(rng: random.Random, table: tuple[tuple, ...]):
    """One entry of ``table`` drawn with probability proportional to its
    weight.  Always consumes exactly one ``rng.random()`` output, so the
    draw positions of later fields never shift."""
    point = rng.random() * sum(weight for _, weight in table)
    cumulative = 0.0
    for entry, weight in table:
        cumulative += weight
        if point < cumulative:
            return entry
    return table[-1][0]     # floating-point edge: the last entry wins


@dataclass(frozen=True)
class PopulationSpec:
    """A declarative distribution over the scenario registries.

    Weight tables are stored canonically as sorted ``(value, weight)``
    tuples; :meth:`from_dict` also accepts JSON-friendly mappings
    (``{"lan_1gbps": 3, "cellular_5g": 1}``) and plain lists (equal
    weights).  ``config`` is a *partial* :class:`ExperimentConfig` dict
    merged over the base configuration at sampling time, exactly like a
    scenario spec's ``config`` section.
    """

    name: str = "population"
    #: The benchmark pool mixes are drawn from; empty = the full registry.
    benchmarks: tuple[str, ...] = ()
    #: Weighted number of *distinct* benchmarks per mix.
    mix_sizes: tuple = ((1, 1.0),)
    #: Weighted per-placement instance count.
    instance_counts: tuple = ((1, 1.0),)
    networks: tuple = (("lan_1gbps", 1.0),)
    machines: tuple = (("paper", 1.0),)
    variants: tuple = (("default", 1.0),)
    #: Probability that a sampled scenario runs containerized.
    containerized: float = 0.0
    #: Partial ExperimentConfig overrides applied to the base config.
    config: dict = field(default_factory=dict)
    #: Scenario ``i`` gets SeedPolicy(offset=offset_base + i * stride,
    #: base=seed_base); stride 0 makes equal draws collapse into one key.
    seed_base: Optional[int] = None
    seed_offset_base: int = 0
    seed_stride: int = 1
    #: Weighted per-placement agent names (``human``, ``intelligent``,
    #: ``intelligent@K``, ``intelligent#HASH``, ``deskbench[@K]`` — the
    #: scenario agent-name grammar).  The all-human default draws
    #: nothing, so existing spec hashes and sample streams are untouched.
    agents: tuple = (("human", 1.0),)

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "mix_sizes",
                           _as_weights(self.mix_sizes, key_type=int))
        object.__setattr__(self, "instance_counts",
                           _as_weights(self.instance_counts, key_type=int))
        object.__setattr__(self, "networks", _as_weights(self.networks))
        object.__setattr__(self, "machines", _as_weights(self.machines))
        object.__setattr__(self, "variants", _as_weights(self.variants))
        object.__setattr__(self, "agents", _as_weights(self.agents))
        object.__setattr__(self, "config", dict(self.config))
        if not self.name:
            raise ValueError("population name must be non-empty")
        known = set(all_benchmarks())
        unknown = [b for b in self.benchmarks if b not in known]
        if unknown:
            raise ValueError(f"unknown benchmarks in pool: {unknown}; "
                             f"known: {sorted(known)}")
        pool_size = len(self.pool())
        for size, _ in self.mix_sizes:
            if not 1 <= size <= pool_size:
                raise ValueError(f"mix size {size} is outside the pool "
                                 f"(1..{pool_size})")
        for count, _ in self.instance_counts:
            if count < 1:
                raise ValueError("instance counts must be at least 1")
        for table, registry, label in (
                (self.networks, NETWORKS, "network"),
                (self.machines, MACHINE_SPECS, "machine"),
                (self.variants, SESSION_VARIANTS, "session variant")):
            for entry, _ in table:
                if entry not in registry:
                    raise ValueError(f"unknown {label} {entry!r}; "
                                     f"known: {sorted(registry)}")
        for name, _ in self.agents:
            base, _, _ = split_agent_name(name)
            if base not in AGENT_FACTORIES:
                raise ValueError(f"unknown agent {base!r}; known: "
                                 f"{', '.join(sorted(AGENT_FACTORIES))}")
        if not 0.0 <= self.containerized <= 1.0:
            raise ValueError("containerized must be a probability in [0, 1]")
        unknown = set(self.config) - set(ExperimentConfig.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown config fields {sorted(unknown)}")
        if self.seed_stride < 0:
            raise ValueError("seed_stride must be non-negative")

    def pool(self) -> tuple[str, ...]:
        """The effective benchmark pool (the registry when unspecified)."""
        return self.benchmarks or tuple(all_benchmarks())

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """A plain-data form that round-trips through :meth:`from_dict`."""
        data = {
            "schema": POPULATION_SCHEMA_VERSION,
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "mix_sizes": {str(size): weight
                          for size, weight in self.mix_sizes},
            "instance_counts": {str(count): weight
                                for count, weight in self.instance_counts},
            "networks": dict(self.networks),
            "machines": dict(self.machines),
            "variants": dict(self.variants),
            "containerized": self.containerized,
            "config": dict(self.config),
            "seed": {"base": self.seed_base,
                     "offset_base": self.seed_offset_base,
                     "stride": self.seed_stride},
        }
        # The all-human default is omitted so every pre-agents spec (and
        # its pinned content hash) serializes exactly as it always did.
        if self.agents != (("human", 1.0),):
            data["agents"] = dict(self.agents)
        return data

    @staticmethod
    def from_dict(data: Mapping) -> "PopulationSpec":
        """Rebuild a spec from :meth:`to_dict` output or a hand-written
        JSON spec; every field is optional, unknown fields are rejected."""
        unknown = set(data) - _SPEC_FIELDS
        if unknown:
            raise KeyError(f"unknown population spec fields {sorted(unknown)}")
        seed_data = dict(data.get("seed", {}))
        unknown = set(seed_data) - {"base", "offset_base", "stride"}
        if unknown:
            raise KeyError(f"unknown population seed fields {sorted(unknown)}")
        kwargs = {}
        for spec_field in ("name", "benchmarks", "mix_sizes",
                           "instance_counts", "networks", "machines",
                           "variants", "containerized", "config", "agents"):
            if spec_field in data:
                kwargs[spec_field] = data[spec_field]
        return PopulationSpec(
            seed_base=seed_data.get("base"),
            seed_offset_base=int(seed_data.get("offset_base", 0)),
            seed_stride=int(seed_data.get("stride", 1)),
            **kwargs)

    def content_hash(self) -> str:
        """A stable SHA-256 over the spec's content (schema excluded, as
        for :meth:`Scenario.content_hash`)."""
        payload = {key: value for key, value in self.to_dict().items()
                   if key != "schema"}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def short_hash(self) -> str:
        return self.content_hash()[:12]

    def describe(self) -> str:
        """A short human-readable label for progress output."""
        sizes = "/".join(str(size) for size, _ in self.mix_sizes)
        nets = "/".join(name for name, _ in self.networks)
        return (f"{self.name} [{self.short_hash()}] "
                f"mixes={sizes} nets={nets} pool={len(self.pool())}")


def _index_rng(spec_hash: str, seed: int, index: int) -> random.Random:
    """The independent RNG of sample ``index`` (see the module docstring)."""
    digest = hashlib.sha256(
        f"{spec_hash}:{seed}:{index}".encode("ascii")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def sample_one(spec: PopulationSpec, index: int, seed: int = 0,
               config: Optional[ExperimentConfig] = None,
               _spec_hash: Optional[str] = None) -> Scenario:
    """Scenario ``index`` of the population — independent of every other
    index, so streams can be sliced and resumed freely."""
    base = config or ExperimentConfig()
    if spec.config:
        merged = dict(spec.config)
        if "benchmarks" in merged:
            merged["benchmarks"] = tuple(merged["benchmarks"])
        base = replace(base, **merged)
    rng = _index_rng(_spec_hash or spec.content_hash(), seed, index)
    # Fixed draw order — size, mix, (agent, count) per placement,
    # network, machine, variant, containerized — so a spec edit never
    # shifts unrelated draws within one index (it changes the spec hash,
    # and thus all of them, anyway).  The all-human default skips the
    # agent draw entirely, keeping pre-agents sample streams identical.
    size = _weighted(rng, spec.mix_sizes)
    mix = sample_mix(rng, spec.pool(), size)
    default_agents = spec.agents == (("human", 1.0),)
    placements = tuple(
        Placement(benchmark,
                  agent=("human" if default_agents
                         else _weighted(rng, spec.agents)),
                  count=_weighted(rng, spec.instance_counts))
        for benchmark in mix)
    network = _weighted(rng, spec.networks)
    machine = _weighted(rng, spec.machines)
    variant = _weighted(rng, spec.variants)
    containerized = rng.random() < spec.containerized
    return Scenario(
        placements=placements, config=base, variant=variant,
        machine=machine, containerized=containerized, network=network,
        seed=SeedPolicy(
            offset=spec.seed_offset_base + index * spec.seed_stride,
            base=spec.seed_base))


def sample(spec: PopulationSpec, n: int, seed: int = 0,
           config: Optional[ExperimentConfig] = None) -> Iterator[Scenario]:
    """A reproducible stream of ``n`` scenarios drawn from ``spec``.

    Lazy: scenario ``i`` is constructed when the iterator reaches it, so
    arbitrarily large populations stream through a constant memory
    footprint.  ``config`` is the base experiment configuration (e.g. a
    CLI profile); the spec's partial ``config`` section is merged over
    it.  Same ``(spec, seed, config)`` ⇒ the identical
    ``content_hash`` sequence in any process.
    """
    if n < 0:
        raise ValueError("sample size must be non-negative")
    spec_hash = spec.content_hash()
    for index in range(n):
        yield sample_one(spec, index, seed=seed, config=config,
                         _spec_hash=spec_hash)
