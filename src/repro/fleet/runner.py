"""Fleet execution: a sampled population drained through the suite.

This layer is deliberately thin: a population sample is just a list of
:class:`~repro.experiments.jobs.ExperimentJob` values, and every
property of the execution subsystem — deduplication, the content-
addressed result store (which makes interrupted fleet runs resumable
for free), cost-packed submission, and the serial / parallel /
distributed / socket backends — applies unchanged.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence

from repro.experiments.jobs import ExperimentJob
from repro.fleet.population import PopulationSpec, sample
from repro.scenarios.config import ExperimentConfig
from repro.scenarios.scenario import Scenario

__all__ = ["population_digest", "population_jobs", "scenarios_by_key"]


def population_jobs(spec: PopulationSpec, n: int, seed: int = 0,
                    config: Optional[ExperimentConfig] = None,
                    duration: Optional[float] = None) -> list[ExperimentJob]:
    """The ``host`` jobs of a population sample, in sample order.

    The suite reorders submissions by estimated cost itself, so sample
    order carries no scheduling meaning — it is the stable identity
    order reports and digests use.
    """
    return [ExperimentJob(scenario, duration=duration)
            for scenario in sample(spec, n, seed=seed, config=config)]


def scenarios_by_key(jobs: Sequence[ExperimentJob]) -> dict[str, Scenario]:
    """``job key -> scenario`` — the cohort analytics' population index.

    Duplicate keys (a spec with ``seed_stride=0`` can draw the same
    scenario twice) collapse, exactly as the executor deduplicates them.
    """
    return {job.key(): job.scenario for job in jobs}


def population_digest(scenarios: Iterable[Scenario]) -> str:
    """One SHA-256 over the sample's scenario hash sequence.

    A cheap cross-process / cross-backend determinism check: two
    machines that print the same digest sampled byte-identical
    populations.
    """
    digest = hashlib.sha256()
    for scenario in scenarios:
        digest.update(scenario.content_hash().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()
