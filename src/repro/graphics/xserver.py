"""X window/event layer.

TurboVNC places each session behind its own X proxy: user inputs are
injected as X events (the application receives them via ``XNextEvent``,
the API intercepted by hook4), the interposer queries window geometry via
``XGetWindowAttributes`` (the pathologically slow call that the first
Section-6 optimization memoizes), and rendered frames travel to the VNC
server through MIT-SHM (``XShmPutImage``, hook7).

Costs are charged to CPU threads so they inherit scheduling and memory
contention — this is what makes the inter-process-communication stages
(PS and AS) slow down by up to ~96% when several instances colocate
(Section 5.2.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.graphics.frame import Frame
from repro.hardware.cpu import CpuThread, StageCpuProfile
from repro.sim.engine import Environment
from repro.sim.randomness import StreamRandom
from repro.sim.resources import Store

__all__ = ["XConfig", "XDisplay", "XEvent", "XWindow"]

_window_ids = itertools.count(1)


@dataclass(frozen=True)
class XConfig:
    """Latency parameters of the X layer."""

    # XGetWindowAttributes performs a synchronous round trip to the X server
    # and takes 6–9 ms in the paper's measurements (Section 6).
    get_window_attributes_ms_low: float = 6.0
    get_window_attributes_ms_high: float = 9.0
    # Injecting one input event into the application (stage PS).
    send_event_ms: float = 2.0
    # Base cost of an XShmPutImage hand-off, plus a per-megabyte component
    # (stage AS).  Shared-memory copies still consume CPU and memory bandwidth.
    shm_put_base_ms: float = 1.5
    shm_put_ms_per_mb: float = 0.55
    jitter_fraction: float = 0.20


#: CPU profile of the IPC-heavy X calls: low parallelism, memory intensive
#: (shared-memory copies stream through the cache hierarchy).
IPC_CPU_PROFILE = StageCpuProfile(
    demand=0.6,
    memory_intensity=0.8,
    base_retiring=0.25,
    base_frontend=0.12,
    base_bad_speculation=0.04,
    working_set_mb=8.0,
)


@dataclass
class XEvent:
    """One X input event (keystroke, pointer motion, or HMD pose update)."""

    kind: str
    payload: Any = None
    tag: Optional[int] = None
    injected_at: Optional[float] = None


class XWindow:
    """A top-level application window."""

    def __init__(self, env: Environment, width: int = 1920, height: int = 1080,
                 name: str = "benchmark"):
        self.env = env
        self.window_id = next(_window_ids)
        self.name = name
        self.width = width
        self.height = height
        self.event_queue: Store = Store(env)
        self.resize_count = 0

    def resize(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("window resolution must be positive")
        self.width = width
        self.height = height
        self.resize_count += 1


class XDisplay:
    """One session's X display connection."""

    def __init__(self, env: Environment, config: Optional[XConfig] = None,
                 rng: Optional[StreamRandom] = None):
        self.env = env
        self.config = config or XConfig()
        self.rng = rng or StreamRandom(0)
        self.windows: list[XWindow] = []
        self.get_window_attributes_calls = 0
        self.events_delivered = 0
        self.images_put = 0

    # -- window management --------------------------------------------------
    def create_window(self, width: int = 1920, height: int = 1080,
                      name: str = "benchmark") -> XWindow:
        window = XWindow(self.env, width, height, name)
        self.windows.append(window)
        return window

    # -- input event path (stage PS / hook4) -------------------------------------
    def send_input_event(self, window: XWindow, event: XEvent, thread: CpuThread):
        """Generator: inject an input event into the application's queue."""
        cost = self.rng.jitter(self.config.send_event_ms * 1e-3,
                               self.config.jitter_fraction)
        yield from thread.run(cost, IPC_CPU_PROFILE)
        event.injected_at = self.env.now
        yield window.event_queue.put(event)
        self.events_delivered += 1

    def next_event(self, window: XWindow):
        """Generator: block until the next input event arrives (XNextEvent)."""
        event = yield window.event_queue.get()
        return event

    def pending_events(self, window: XWindow) -> int:
        """XPending: how many events are queued without blocking."""
        return len(window.event_queue)

    def drain_events(self, window: XWindow) -> list[XEvent]:
        """Non-blocking drain of every queued event (typical game input poll)."""
        drained = list(window.event_queue.items)
        window.event_queue.items.clear()
        return drained

    # -- window attribute query (the Section-6 bottleneck) ---------------------------
    def get_window_attributes(self, window: XWindow, thread: CpuThread):
        """Generator: the synchronous, slow XGetWindowAttributes round trip."""
        cost = self.rng.uniform(self.config.get_window_attributes_ms_low,
                                self.config.get_window_attributes_ms_high) * 1e-3
        yield from thread.run(cost, IPC_CPU_PROFILE)
        self.get_window_attributes_calls += 1
        return {"width": window.width, "height": window.height,
                "resize_count": window.resize_count}

    # -- frame hand-off (stage AS / hook7) ----------------------------------------------
    def shm_put_image(self, frame: Frame, destination: Store, thread: CpuThread):
        """Generator: copy a frame into the proxy's shared-memory segment."""
        megabytes = frame.raw_bytes / 1e6
        cost = self.rng.jitter(
            (self.config.shm_put_base_ms + self.config.shm_put_ms_per_mb * megabytes) * 1e-3,
            self.config.jitter_fraction)
        yield from thread.run(cost, IPC_CPU_PROFILE)
        yield destination.put(frame)
        self.images_put += 1
