"""Frames and the objects they contain.

A :class:`Frame` is the unit flowing through the rendering pipeline: the
application produces it, the GPU renders it, the interposer copies it
back, the VNC proxy compresses and ships it, and the intelligent client
runs its CNN over it.  Frames carry:

* a list of :class:`SceneObject` instances — the randomly generated /
  placed objects that make recorded-replay input generation unreliable
  for 3D applications (Section 1);
* a small rasterized pixel buffer (a downsampled stand-in for the
  1920×1080 framebuffer) used by the CNN, by DeskBench's frame
  comparison, and by the tag-in-pixels tracking of hook6/hook8;
* bookkeeping: frame id, nominal resolution, complexity (GPU work units),
  and the Pictor tag when input tracking is enabled.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

__all__ = ["Frame", "ObjectClass", "SceneObject", "TAG_PIXEL_COUNT"]

_frame_ids = itertools.count(1)

#: Number of pixels (in the rasterized buffer) used to embed a tracking tag.
TAG_PIXEL_COUNT = 4


class ObjectClass(enum.Enum):
    """Object categories the benchmark scenes generate.

    These are the classes the intelligent client's CNN is trained to
    recognize; they cover the six applications' needs (track edges and
    opponents for the racing game, units/buildings for the RTS, enemies
    and pickups for the shooter / MOBA, gaze targets and anatomy for the
    VR titles).
    """

    TRACK = "track"
    OPPONENT = "opponent"
    UNIT = "unit"
    BUILDING = "building"
    ENEMY = "enemy"
    PICKUP = "pickup"
    PROJECTILE = "projectile"
    TARGET = "target"
    ORGAN = "organ"
    UI_ELEMENT = "ui_element"


# Distinct base colours per class so the rasterized frames are learnable.
_CLASS_COLOURS: dict[ObjectClass, tuple[float, float, float]] = {
    ObjectClass.TRACK: (0.55, 0.55, 0.55),
    ObjectClass.OPPONENT: (0.95, 0.15, 0.15),
    ObjectClass.UNIT: (0.20, 0.55, 0.95),
    ObjectClass.BUILDING: (0.60, 0.40, 0.20),
    ObjectClass.ENEMY: (0.90, 0.10, 0.60),
    ObjectClass.PICKUP: (0.15, 0.90, 0.30),
    ObjectClass.PROJECTILE: (0.95, 0.85, 0.10),
    ObjectClass.TARGET: (0.10, 0.90, 0.90),
    ObjectClass.ORGAN: (0.85, 0.55, 0.65),
    ObjectClass.UI_ELEMENT: (0.95, 0.95, 0.95),
}


@dataclass
class SceneObject:
    """One object visible in a frame, in normalized [0, 1] screen coordinates."""

    object_class: ObjectClass
    x: float
    y: float
    size: float = 0.05
    velocity_x: float = 0.0
    velocity_y: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.x <= 1.0 or not 0.0 <= self.y <= 1.0:
            raise ValueError(f"object position must be in [0, 1]², got ({self.x}, {self.y})")
        if self.size <= 0:
            raise ValueError(f"object size must be positive, got {self.size}")

    def advanced(self, dt: float) -> "SceneObject":
        """The same object after ``dt`` seconds of motion, clamped to the screen."""
        return SceneObject(
            object_class=self.object_class,
            x=float(np.clip(self.x + self.velocity_x * dt, 0.0, 1.0)),
            y=float(np.clip(self.y + self.velocity_y * dt, 0.0, 1.0)),
            size=self.size,
            velocity_x=self.velocity_x,
            velocity_y=self.velocity_y,
        )


@dataclass
class Frame:
    """One rendered frame travelling through the pipeline."""

    width: int = 1920
    height: int = 1080
    objects: list[SceneObject] = field(default_factory=list)
    complexity: float = 1.0              # GPU work units relative to an average frame
    scene_change: float = 0.1            # fraction of pixels changed vs. previous frame
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    tag: Optional[int] = None
    raster_width: int = 64
    raster_height: int = 36
    _pixels: Optional[np.ndarray] = field(default=None, repr=False)
    _saved_tag_pixels: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("frame resolution must be positive")
        if self.complexity <= 0:
            raise ValueError("frame complexity must be positive")
        if not 0.0 <= self.scene_change <= 1.0:
            raise ValueError("scene_change must be in [0, 1]")

    # -- size ---------------------------------------------------------------
    @property
    def raw_bytes(self) -> float:
        """Uncompressed framebuffer size (RGBA, 8 bits per channel)."""
        return float(self.width * self.height * 4)

    # -- rasterization --------------------------------------------------------
    @property
    def pixels(self) -> np.ndarray:
        """The downsampled pixel buffer (H × W × 3 floats in [0, 1])."""
        if self._pixels is None:
            self._pixels = self._rasterize()
        return self._pixels

    def _rasterize(self) -> np.ndarray:
        buffer = np.zeros((self.raster_height, self.raster_width, 3), dtype=np.float64)
        # A faint background gradient stands in for the 3D environment so
        # that frames are never trivially identical.
        gradient = np.linspace(0.05, 0.15, self.raster_width)
        buffer[:, :, 2] = gradient[np.newaxis, :]
        for obj in self.objects:
            self._draw_object(buffer, obj)
        return buffer

    def _draw_object(self, buffer: np.ndarray, obj: SceneObject) -> None:
        colour = _CLASS_COLOURS[obj.object_class]
        cx = int(obj.x * (self.raster_width - 1))
        cy = int(obj.y * (self.raster_height - 1))
        radius = max(1, int(obj.size * self.raster_width / 2))
        y0, y1 = max(0, cy - radius), min(self.raster_height, cy + radius + 1)
        x0, x1 = max(0, cx - radius), min(self.raster_width, cx + radius + 1)
        buffer[y0:y1, x0:x1, :] = colour

    # -- tag embedding (hook6 / hook8) -------------------------------------------
    def embed_tag(self, tag: int) -> None:
        """Embed a tracking tag into the first pixels of the buffer.

        Mirrors hook6 in the paper: the original pixel values are saved (to
        shared memory in the real system) so the server proxy can restore
        them after extracting the tag at hook8.
        """
        if tag < 0:
            raise ValueError(f"tag must be non-negative, got {tag}")
        pixels = self.pixels
        self._saved_tag_pixels = pixels[0, :TAG_PIXEL_COUNT, :].copy()
        encoded = np.array([
            (tag >> (8 * i)) & 0xFF for i in range(TAG_PIXEL_COUNT)
        ], dtype=np.float64) / 255.0
        pixels[0, :TAG_PIXEL_COUNT, 0] = encoded
        self.tag = tag

    def extract_tag(self) -> Optional[int]:
        """Read the embedded tag back out of the pixel buffer."""
        if self._saved_tag_pixels is None:
            return None
        values = np.rint(self.pixels[0, :TAG_PIXEL_COUNT, 0] * 255.0).astype(int)
        tag = 0
        for i, value in enumerate(values):
            tag |= int(value) << (8 * i)
        return tag

    def restore_tag_pixels(self) -> None:
        """Undo :meth:`embed_tag`, restoring the saved pixels (hook8)."""
        if self._saved_tag_pixels is None:
            return
        self.pixels[0, :TAG_PIXEL_COUNT, :] = self._saved_tag_pixels
        self._saved_tag_pixels = None

    # -- comparison (DeskBench-style) -----------------------------------------------
    def pixel_difference(self, other: "Frame") -> float:
        """Mean absolute pixel difference against another frame, in [0, 1]."""
        if (other.raster_width, other.raster_height) != (self.raster_width,
                                                         self.raster_height):
            raise ValueError("cannot compare frames with different raster sizes")
        return float(np.mean(np.abs(self.pixels - other.pixels)))

    def objects_of_class(self, object_class: ObjectClass) -> list[SceneObject]:
        return [obj for obj in self.objects if obj.object_class is object_class]

    @staticmethod
    def from_objects(objects: Iterable[SceneObject], **kwargs) -> "Frame":
        return Frame(objects=list(objects), **kwargs)
