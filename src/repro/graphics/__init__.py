"""Graphics substrate: frames, GL command layer, X events, interposer, codecs.

This package models the open-source Linux graphics stack the paper
instruments — Mesa-style GL entry points, the X window/event layer, the
VirtualGL-style graphics interposer that reads frames back from the GPU,
and the frame compression performed by the VNC proxy — at the API
granularity that Pictor's hooks observe (Table 1 / Figure 4).
"""

from repro.graphics.compression import Codec, RawCodec, TightCodec
from repro.graphics.frame import Frame, SceneObject, ObjectClass
from repro.graphics.framebuffer import Framebuffer
from repro.graphics.opengl import GlContext, GlQuery
from repro.graphics.pipeline import STAGES, PipelineConfig, StageTimings
from repro.graphics.xserver import XDisplay, XEvent, XWindow
from repro.graphics.interposer import GraphicsInterposer, InterposerConfig

__all__ = [
    "Codec",
    "Frame",
    "Framebuffer",
    "GlContext",
    "GlQuery",
    "GraphicsInterposer",
    "InterposerConfig",
    "ObjectClass",
    "PipelineConfig",
    "RawCodec",
    "STAGES",
    "SceneObject",
    "StageTimings",
    "TightCodec",
    "XDisplay",
    "XEvent",
    "XWindow",
]
