"""Double-buffered framebuffer shared between the application and the GPU.

The application draws into the *back* buffer; ``swap`` makes the freshly
rendered frame the *front* buffer that the interposer reads back.  The
framebuffer also remembers the frame that is currently being copied so
the two-step copy optimization (Section 6) can overlap a copy of frame
``i-1`` with the application logic of frame ``i+1``.
"""

from __future__ import annotations

from typing import Optional

from repro.graphics.frame import Frame

__all__ = ["Framebuffer"]


class Framebuffer:
    """Front/back buffer pair for one rendering window."""

    def __init__(self, width: int = 1920, height: int = 1080):
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer resolution must be positive")
        self.width = width
        self.height = height
        self.front: Optional[Frame] = None
        self.back: Optional[Frame] = None
        self.swap_count = 0

    def attach_back(self, frame: Frame) -> None:
        """Bind a newly produced frame as the back buffer."""
        if frame.width != self.width or frame.height != self.height:
            raise ValueError(
                f"frame resolution {frame.width}x{frame.height} does not match "
                f"framebuffer {self.width}x{self.height}")
        self.back = frame

    def swap(self) -> Optional[Frame]:
        """Swap buffers; returns the frame that became the front buffer."""
        if self.back is None:
            return self.front
        self.front, self.back = self.back, None
        self.swap_count += 1
        return self.front

    def resize(self, width: int, height: int) -> None:
        """Change the window resolution (rare during gameplay)."""
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer resolution must be positive")
        self.width = width
        self.height = height
        self.front = None
        self.back = None
