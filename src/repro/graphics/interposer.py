"""Graphics interposer (the VirtualGL analogue).

VirtualGL is preloaded into the application process to force GL rendering
onto the server GPU and to read rendered frames back for delivery to the
VNC proxy.  It is the component the two Section-6 optimizations modify:

* it calls ``XGetWindowAttributes`` before every frame copy just to learn
  the window resolution (6–9 ms each time) — optimization 1 memoizes it;
* the baseline copy blocks the application thread until the PCIe DMA
  completes — optimization 2 splits the copy into asynchronous start /
  finish halves (Figure 21).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graphics.frame import Frame
from repro.graphics.opengl import GlContext
from repro.graphics.xserver import XDisplay, XWindow
from repro.hardware.cpu import CpuThread
from repro.sim.engine import Environment, Process
from repro.sim.resources import Store

__all__ = ["GraphicsInterposer", "InterposerConfig"]


@dataclass(frozen=True)
class InterposerConfig:
    """Behavioural switches of the interposer (mirrors PipelineConfig)."""

    memoize_window_attributes: bool = False
    two_step_frame_copy: bool = False


class GraphicsInterposer:
    """Per-application interposer sitting between the app, GL and X."""

    def __init__(self, env: Environment, gl: GlContext, xdisplay: XDisplay,
                 window: XWindow, config: Optional[InterposerConfig] = None):
        self.env = env
        self.gl = gl
        self.xdisplay = xdisplay
        self.window = window
        self.config = config or InterposerConfig()
        self._cached_attributes: Optional[dict] = None
        self._cached_resize_count = -1
        self._inflight_copies: dict[int, Process] = {}
        self.frames_copied = 0
        self.attribute_queries_avoided = 0

    # -- window attribute handling -----------------------------------------------
    def query_window_attributes(self, thread: CpuThread):
        """Generator: obtain window geometry, memoized when enabled.

        The cache is invalidated when the window's resize counter changes,
        which the real optimization detects by watching X resize events at
        hook4.
        """
        cache_valid = (self._cached_attributes is not None
                       and self._cached_resize_count == self.window.resize_count)
        if self.config.memoize_window_attributes and cache_valid:
            self.attribute_queries_avoided += 1
            return self._cached_attributes
        attributes = yield from self.xdisplay.get_window_attributes(self.window, thread)
        self._cached_attributes = attributes
        self._cached_resize_count = self.window.resize_count
        return attributes

    # -- frame copy (stage FC) ------------------------------------------------------
    def copy_frame(self, frame: Frame, thread: CpuThread):
        """Generator: the baseline blocking frame copy.

        Queries the window attributes, then blocks on glReadPixels until
        the frame has crossed the PCIe bus.
        """
        yield from self.query_window_attributes(thread)
        yield from self.gl.read_pixels(frame)
        self.frames_copied += 1
        return frame

    def start_frame_copy(self, frame: Frame, thread: CpuThread) -> Process:
        """Optimization 2, first half: issue the copy and return immediately.

        The attribute query (possibly memoized) still happens synchronously
        — it is cheap once optimization 1 is on — but the PCIe transfer runs
        in its own process so the application thread is free to continue.
        """
        return self.env.process(self._async_copy(frame, thread))

    def _async_copy(self, frame: Frame, thread: CpuThread):
        yield from self.query_window_attributes(thread)
        yield from self.gl.read_pixels(frame)
        self.frames_copied += 1
        return frame

    def finish_frame_copy(self, copy_process: Process):
        """Optimization 2, second half: wait for an earlier start to complete."""
        if copy_process.is_alive:
            yield copy_process
        return copy_process.value

    # -- frame delivery (stage AS) ------------------------------------------------------
    def deliver_frame(self, frame: Frame, proxy_inbox: Store, thread: CpuThread):
        """Generator: hand the copied frame to the VNC proxy via MIT-SHM."""
        yield from self.xdisplay.shm_put_image(frame, proxy_inbox, thread)
        return frame
