"""Frame compression codecs used by the server proxy (stage CP).

TurboVNC compresses each framebuffer update with its "Tight" JPEG-based
encoder before shipping it to the client; the compression time and the
compressed size both depend on how much of the scene changed since the
previous frame, which is why the VNC proxy's CPU utilization varies from
169% to 243% across benchmarks (Section 5.1.1) and the per-frame network
cost stays under ~600 Mbps (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graphics.frame import Frame
from repro.hardware.cpu import CpuThread, StageCpuProfile
from repro.sim.randomness import StreamRandom

__all__ = ["Codec", "CompressedFrame", "RawCodec", "TightCodec"]


#: Compression is vectorized, branch-light CPU work that streams the whole
#: framebuffer: high retiring share but also memory-hungry.
COMPRESSION_CPU_PROFILE = StageCpuProfile(
    demand=1.9,
    memory_intensity=0.7,
    base_retiring=0.40,
    base_frontend=0.08,
    base_bad_speculation=0.03,
    working_set_mb=16.0,
)


@dataclass
class CompressedFrame:
    """The result of compressing one frame."""

    frame: Frame
    compressed_bytes: float
    compression_time: float
    codec_name: str

    @property
    def compression_ratio(self) -> float:
        if self.frame.raw_bytes <= 0:
            return 0.0
        return self.compressed_bytes / self.frame.raw_bytes


class Codec:
    """Base class for frame codecs.

    Subclasses define the compressed-size and CPU-time models; ``compress``
    charges the CPU time to the supplied proxy thread and returns a
    :class:`CompressedFrame`.
    """

    name = "base"

    def __init__(self, rng: Optional[StreamRandom] = None):
        self.rng = rng or StreamRandom(0)
        self.frames_compressed = 0
        self.bytes_out = 0.0

    # -- model hooks ---------------------------------------------------------
    def compressed_size(self, frame: Frame) -> float:
        raise NotImplementedError

    def compression_time(self, frame: Frame) -> float:
        raise NotImplementedError

    # -- public API ------------------------------------------------------------
    def compress(self, frame: Frame, thread: CpuThread):
        """Generator: compress ``frame`` on ``thread``; returns CompressedFrame."""
        nominal = self.compression_time(frame)
        started = thread.cpu.env.now
        yield from thread.run(nominal, COMPRESSION_CPU_PROFILE)
        elapsed = thread.cpu.env.now - started
        size = self.compressed_size(frame)
        self.frames_compressed += 1
        self.bytes_out += size
        return CompressedFrame(frame=frame, compressed_bytes=size,
                               compression_time=elapsed, codec_name=self.name)


class TightCodec(Codec):
    """TurboVNC's Tight/JPEG encoder model.

    The compressed size scales with how much of the frame changed (VNC only
    re-encodes damaged regions) plus a floor for headers and the always-
    changing HUD; the CPU time scales with the changed area and a per-frame
    fixed cost.
    """

    name = "tight-jpeg"

    def __init__(self, rng: Optional[StreamRandom] = None,
                 quality_ratio: float = 0.20,
                 base_time_ms: float = 4.0,
                 time_ms_per_changed_mb: float = 3.5):
        super().__init__(rng)
        if not 0.0 < quality_ratio <= 1.0:
            raise ValueError(f"quality_ratio must be in (0, 1], got {quality_ratio}")
        self.quality_ratio = quality_ratio
        self.base_time_ms = base_time_ms
        self.time_ms_per_changed_mb = time_ms_per_changed_mb

    def compressed_size(self, frame: Frame) -> float:
        changed_fraction = 0.15 + 0.85 * frame.scene_change
        size = frame.raw_bytes * changed_fraction * self.quality_ratio
        return self.rng.jitter(size, 0.10)

    def compression_time(self, frame: Frame) -> float:
        changed_mb = frame.raw_bytes * (0.15 + 0.85 * frame.scene_change) / 1e6
        nominal_ms = self.base_time_ms + self.time_ms_per_changed_mb * changed_mb
        return self.rng.jitter(nominal_ms * 1e-3, 0.15)


class RawCodec(Codec):
    """No compression: ships raw pixels (the fallback RFB "Raw" encoding)."""

    name = "raw"

    def __init__(self, rng: Optional[StreamRandom] = None,
                 copy_time_ms_per_mb: float = 0.35):
        super().__init__(rng)
        self.copy_time_ms_per_mb = copy_time_ms_per_mb

    def compressed_size(self, frame: Frame) -> float:
        return frame.raw_bytes

    def compression_time(self, frame: Frame) -> float:
        return frame.raw_bytes / 1e6 * self.copy_time_ms_per_mb * 1e-3
