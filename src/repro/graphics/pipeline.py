"""Software-pipeline vocabulary shared across the repository.

Figure 5 of the paper names the stages of the remote-rendering software
pipeline; every measurement in Sections 4–6 is expressed in terms of
them.  This module defines the canonical stage identifiers, the
per-stage timing accumulator used by sessions and by Pictor's analysis
framework, and the pipeline configuration switches (most importantly the
two Section-6 optimizations and the measurement-framework toggle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["PipelineConfig", "STAGES", "Stage", "StageTimings"]


class Stage:
    """Canonical stage names (Figure 5)."""

    CS = "CS"   # client sends the input over the network
    SP = "SP"   # server proxy parses the input message
    PS = "PS"   # proxy sends (injects) the input into the application
    AL = "AL"   # application logic for the frame
    RD = "RD"   # GPU rendering
    FC = "FC"   # frame copy from GPU memory (glReadPixels over PCIe)
    AS = "AS"   # application sends the frame to the server proxy (SHM)
    CP = "CP"   # server proxy compresses the frame
    SS = "SS"   # server sends the frame over the network to the client
    CD = "CD"   # client decodes and displays the frame

    #: Stages that execute on the server between receiving an input and
    #: emitting its response frame (the "server time" of Figure 12).
    SERVER_STAGES = (SP, PS, AL, RD, FC, AS, CP)
    #: Stages inside the application / interposer (Figure 13).
    APPLICATION_STAGES = (AL, FC, RD)
    #: Network stages (Figure 11).
    NETWORK_STAGES = (CS, SS)


#: Every stage, in pipeline order.
STAGES = (Stage.CS, Stage.SP, Stage.PS, Stage.AL, Stage.RD, Stage.FC,
          Stage.AS, Stage.CP, Stage.SS, Stage.CD)


@dataclass
class StageTimings:
    """Per-stage latency samples collected during a run."""

    samples: dict[str, list[float]] = field(default_factory=dict)

    def record(self, stage: str, duration: float) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown pipeline stage {stage!r}")
        if duration < 0:
            raise ValueError(f"negative stage duration for {stage}: {duration}")
        self.samples.setdefault(stage, []).append(duration)

    def count(self, stage: str) -> int:
        return len(self.samples.get(stage, []))

    def mean(self, stage: str) -> float:
        values = self.samples.get(stage)
        if not values:
            return 0.0
        return float(np.mean(values))

    def percentile(self, stage: str, q: float) -> float:
        values = self.samples.get(stage)
        if not values:
            return 0.0
        return float(np.percentile(values, q))

    def total_mean(self, stages: Iterable[str]) -> float:
        return float(sum(self.mean(stage) for stage in stages))

    def merge(self, other: "StageTimings") -> None:
        for stage, values in other.samples.items():
            self.samples.setdefault(stage, []).extend(values)

    def as_means(self) -> dict[str, float]:
        return {stage: self.mean(stage) for stage in STAGES if self.count(stage)}


@dataclass
class PipelineConfig:
    """Configuration switches of one rendering session.

    ``measurement_enabled``
        Whether Pictor's performance analysis framework (API hooks, tags,
        GPU time queries) is active.  Turning it off reproduces the native
        TurboVNC baseline used in the Section-4 overhead evaluation.
    ``double_buffered_queries``
        Use two GPU query buffers and alternate between frames (the low-
        overhead configuration); with a single buffer the CPU stalls on
        query retrieval and overhead grows to ~10%.
    ``memoize_window_attributes``
        Section-6 optimization 1: cache XGetWindowAttributes results.
    ``two_step_frame_copy``
        Section-6 optimization 2: split the frame copy into asynchronous
        start/finish halves so the application thread never stalls on PCIe.
    ``containerized``
        Run the session (application + VNC proxy) inside a container.
    """

    measurement_enabled: bool = True
    double_buffered_queries: bool = True
    memoize_window_attributes: bool = False
    two_step_frame_copy: bool = False
    containerized: bool = False
    target_width: int = 1920
    target_height: int = 1080

    def with_optimizations(self) -> "PipelineConfig":
        """A copy of this config with both Section-6 optimizations enabled."""
        return PipelineConfig(
            measurement_enabled=self.measurement_enabled,
            double_buffered_queries=self.double_buffered_queries,
            memoize_window_attributes=True,
            two_step_frame_copy=True,
            containerized=self.containerized,
            target_width=self.target_width,
            target_height=self.target_height,
        )
