"""OpenGL command layer (the Mesa analogue).

The application (or its rendering engine) calls into this layer to draw
frames.  The calls Pictor intercepts (Table 1) appear here with their
real names:

``swap_buffers``  (glXSwapBuffers / glutSwapBuffers, hook5)
    Submits the back buffer's frame to the GPU.  Like the real call under
    a compositing interposer, it does not block for the rendering to
    finish: the GPU works asynchronously while the CPU moves on.

``read_pixels``  (glReadBuffer + glReadPixels, hook6)
    Synchronously reads the rendered frame back across PCIe.  This is the
    slow path VirtualGL uses and the frame-copy (FC) stage is built on it.

``GlQuery``  (GL_TIME_ELAPSED query objects)
    GPU timestamps used by Pictor's GPU-time measurement; retrieving a
    result before the GPU has produced it stalls the CPU, which is why
    Pictor double-buffers its queries (Section 3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.graphics.frame import Frame
from repro.graphics.framebuffer import Framebuffer
from repro.hardware.gpu import GpuRenderJob, RenderContext
from repro.hardware.pcie import PcieBus
from repro.sim.engine import Environment, Process, SimulationError

__all__ = ["GlContext", "GlQuery"]

_query_ids = itertools.count(1)


@dataclass
class GlQuery:
    """A GL_TIME_ELAPSED query covering one frame's GPU rendering."""

    frame_id: int
    query_id: int
    submitted_at: float
    result_ready_at: Optional[float] = None
    gpu_time: Optional[float] = None

    @property
    def is_ready(self) -> bool:
        return self.result_ready_at is not None


class GlContext:
    """One application's OpenGL rendering context."""

    def __init__(self, env: Environment, render_context: RenderContext,
                 pcie: PcieBus, framebuffer: Optional[Framebuffer] = None,
                 readback_stall_ms: float = 4.0,
                 base_render_time_s: float = 0.008):
        self.env = env
        self.render_context = render_context
        self.pcie = pcie
        self.framebuffer = framebuffer or Framebuffer()
        # glReadPixels forces a pipeline flush / format conversion before the
        # DMA starts; this is the fixed part of that stall.
        self.readback_stall_ms = readback_stall_ms
        self.base_render_time_s = base_render_time_s
        self._pending_renders: dict[int, Process] = {}
        self._completed_jobs: dict[int, GpuRenderJob] = {}
        self.queries: list[GlQuery] = []
        self.frames_submitted = 0
        self.frames_read_back = 0

    # -- drawing --------------------------------------------------------------
    def draw_frame(self, frame: Frame) -> None:
        """Record GL draw calls for ``frame`` into the back buffer."""
        self.framebuffer.attach_back(frame)

    def swap_buffers(self, frame: Frame, with_query: bool = False) -> Optional[GlQuery]:
        """Submit the frame's rendering to the GPU (hook5). Non-blocking.

        Returns the time query covering this frame when ``with_query`` is
        set (the measurement framework's hook5 requests one).
        """
        if self.framebuffer.back is not frame:
            self.framebuffer.attach_back(frame)
        query: Optional[GlQuery] = None
        if with_query:
            query = GlQuery(frame_id=frame.frame_id, query_id=next(_query_ids),
                            submitted_at=self.env.now)
            self.queries.append(query)

        process = self.env.process(self._render(frame, query))
        self._pending_renders[frame.frame_id] = process
        self.frames_submitted += 1
        return query

    def _render(self, frame: Frame, query: Optional[GlQuery]):
        job = yield from self.render_context.render(
            nominal_time=frame.complexity * self._base_render_time(),
            work_units=frame.complexity)
        self._completed_jobs[frame.frame_id] = job
        self.framebuffer.swap()
        if query is not None:
            query.gpu_time = job.gpu_time
            query.result_ready_at = self.env.now
        return job

    def _base_render_time(self) -> float:
        """Nominal GPU time for a complexity-1.0 frame on an idle GPU."""
        return self.base_render_time_s

    # -- readback (hook6) --------------------------------------------------------
    def wait_for_render(self, frame: Frame):
        """Generator: block until the GPU has finished rendering ``frame``."""
        process = self._pending_renders.get(frame.frame_id)
        if process is not None and process.is_alive:
            yield process
        return self._completed_jobs.get(frame.frame_id)

    def read_pixels(self, frame: Frame):
        """Generator: copy the rendered frame from GPU memory (glReadPixels)."""
        yield from self.wait_for_render(frame)
        if self.readback_stall_ms > 0:
            yield self.env.timeout(self.readback_stall_ms * 1e-3)
        yield from self.pcie.transfer(frame.raw_bytes, direction="from_gpu")
        self.frames_read_back += 1
        return frame

    def upload(self, size_bytes: float):
        """Generator: upload vertex/texture data to the GPU (glBufferData etc.)."""
        if size_bytes < 0:
            raise SimulationError("upload size cannot be negative")
        if size_bytes == 0:
            return None
        return (yield from self.pcie.transfer(size_bytes, direction="to_gpu"))

    # -- query results -------------------------------------------------------------
    def get_query_result(self, query: GlQuery, blocking: bool = True):
        """Generator: glGetQueryObject.  Blocking retrieval stalls the CPU."""
        if query.is_ready:
            return query.gpu_time
        if not blocking:
            return None
        process = self._pending_renders.get(query.frame_id)
        if process is not None and process.is_alive:
            yield process
        return query.gpu_time

    def completed_job(self, frame: Frame) -> Optional[GpuRenderJob]:
        return self._completed_jobs.get(frame.frame_id)
