"""Named machine specifications a scenario may request.

Scenarios refer to machines by *name* (not by spec object) so the
serialized form — and therefore the content hash that keys the result
cache — stays a small string.  The registry is extensible: experiment
code can register additional specs (a bigger server, a contention-free
counterfactual, a laptop-class machine) and any scenario can then select
them declaratively.
"""

from __future__ import annotations

from repro.hardware.cpu import CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.machine import MachineSpec
from repro.hardware.memory import MemorySpec

__all__ = ["MACHINE_SPECS", "machine_spec", "register_machine_spec"]


def _no_contention_spec() -> MachineSpec:
    """A machine whose shared resources never push back.

    Plenty of cores, an enormous L3 with no pressure sensitivity, and a
    GPU that does not slow down when shared: colocation then costs almost
    nothing, which is exactly what the contention model is there to avoid
    (see :mod:`repro.experiments.ablations`).
    """
    return MachineSpec(
        cpu=CpuSpec(cores=64, frequency_ghz=3.6, l3_mb=2048.0),
        memory=MemorySpec(l3_mb=2048.0, pressure_sensitivity=0.0,
                          max_stall_factor=1.0),
        gpu=GpuSpec(sharing_slowdown_per_context=0.0,
                    l2_pressure_sensitivity=0.0, l2_miss_penalty=0.0,
                    pipeline_depth=16),
    )


#: Named machine specifications, keyed by the name scenarios use.
MACHINE_SPECS = {
    "paper": MachineSpec.paper_server,
    "no_contention": _no_contention_spec,
}


def machine_spec(name: str) -> MachineSpec:
    """Instantiate the machine specification registered under ``name``."""
    try:
        return MACHINE_SPECS[name]()
    except KeyError:
        raise KeyError(f"unknown machine spec {name!r}; "
                       f"known: {sorted(MACHINE_SPECS)}") from None


def register_machine_spec(name: str, factory) -> None:
    """Register a zero-argument ``MachineSpec`` factory under ``name``.

    Names are resolved inside the executing process: register at module
    import time (see :func:`repro.scenarios.register_agent`) so
    spawn-based pool workers resolve them too.
    """
    if not name:
        raise ValueError("machine spec name must be non-empty")
    MACHINE_SPECS[name] = factory
