"""Session/pipeline variants: the named alternative configurations.

A :class:`SessionVariant` captures every per-session knob the paper's
evaluation flips — measurement framework on/off, GPU time-query
buffering, the two Section-6 optimizations, and slow-motion
benchmarking — as one frozen value.  The :data:`SESSION_VARIANTS`
registry gives the combinations the figures actually use stable *names*
("native", "optimized", "slow_motion", …) so scenarios and serialized
specs never spell out boolean soup.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.core.pictor import PictorConfig
from repro.graphics.pipeline import PipelineConfig
from repro.network.link import LinkSpec
from repro.server.session import SessionConfig

__all__ = ["SESSION_VARIANTS", "SessionVariant", "register_session_variant",
           "session_variant", "variant_name"]


@dataclass(frozen=True)
class SessionVariant:
    """The declarative per-session configuration of one testbed run."""

    measurement_enabled: bool = True
    double_buffered_queries: bool = True
    memoize_window_attributes: bool = False
    two_step_frame_copy: bool = False
    slow_motion: bool = False

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig(
            measurement_enabled=self.measurement_enabled,
            double_buffered_queries=self.double_buffered_queries,
            memoize_window_attributes=self.memoize_window_attributes,
            two_step_frame_copy=self.two_step_frame_copy,
        )

    def session_config(self, link: Optional[LinkSpec] = None) -> SessionConfig:
        """The per-session configuration this variant describes."""
        if link is None:
            return SessionConfig(pipeline=self.pipeline_config(),
                                 slow_motion=self.slow_motion)
        return SessionConfig(pipeline=self.pipeline_config(), link=link,
                             slow_motion=self.slow_motion)

    def pictor_config(self) -> PictorConfig:
        return PictorConfig(
            measurement_enabled=self.measurement_enabled,
            double_buffered_queries=self.double_buffered_queries,
        )

    @staticmethod
    def optimized(keys=None) -> "SessionVariant":
        """The variant with the selected Section-6 optimizations enabled.

        Keys and their configuration fields come from the optimization
        registry (:data:`repro.optimizations.OPTIMIZATIONS`), so the
        scenario path and the legacy ``apply_optimizations`` path cannot
        diverge.
        """
        from repro.optimizations import OPTIMIZATIONS
        known = {opt.key: opt.config_field for opt in OPTIMIZATIONS}
        keys = tuple(known) if keys is None else tuple(keys)
        unknown = set(keys) - set(known)
        if unknown:
            raise KeyError(f"unknown optimizations {sorted(unknown)}; "
                           f"known: {sorted(known)}")
        return SessionVariant(**{known[key]: True for key in keys})

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data) -> "SessionVariant":
        """Rebuild a variant from a dict of fields or a registry name."""
        if isinstance(data, str):
            return session_variant(data)
        if isinstance(data, SessionVariant):
            return data
        unknown = set(data) - {f for f in SessionVariant.__dataclass_fields__}
        if unknown:
            raise KeyError(f"unknown session-variant fields {sorted(unknown)}")
        return SessionVariant(**data)


#: The named variants the paper's figures use.
SESSION_VARIANTS: dict[str, SessionVariant] = {
    "default": SessionVariant(),
    "native": SessionVariant(measurement_enabled=False),
    "single_buffered": SessionVariant(double_buffered_queries=False),
    "optimized": SessionVariant.optimized(),
    "memoize_xgwa": SessionVariant.optimized(("memoize_xgwa",)),
    "two_step_copy": SessionVariant.optimized(("two_step_copy",)),
    "slow_motion": SessionVariant(slow_motion=True),
}


def session_variant(name: str) -> SessionVariant:
    """Look up a named session variant."""
    try:
        return SESSION_VARIANTS[name]
    except KeyError:
        raise KeyError(f"unknown session variant {name!r}; "
                       f"known: {sorted(SESSION_VARIANTS)}") from None


def register_session_variant(name: str, variant: SessionVariant) -> SessionVariant:
    """Register a variant under ``name`` for use in serialized scenarios."""
    if not name:
        raise ValueError("session variant name must be non-empty")
    SESSION_VARIANTS[name] = variant
    return variant


def variant_name(variant: SessionVariant) -> Optional[str]:
    """The registry name of ``variant``, or None for unnamed combinations."""
    for name, registered in SESSION_VARIANTS.items():
        if registered == variant:
            return name
    return None
