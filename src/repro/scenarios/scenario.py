"""The canonical, declarative description of one testbed run.

A :class:`Scenario` answers every question the paper's evaluation grid
asks about a run — *which* benchmark instances share a host (with which
driving agent, how many occurrences), on *what* machine, under *which*
session variant and network conditions, containerized or not, and with
what seed policy — as one frozen, hashable, picklable value.

Because it is a value object it round-trips through
:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict` (the CLI's
JSON-spec format) and has a stable :meth:`Scenario.content_hash` that the
experiment executor uses as its cache key: any change to any knob, and
only such a change, produces a different hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Optional

from repro.apps.registry import all_benchmarks
from repro.scenarios.config import ExperimentConfig
from repro.sim.fastforward import FastForwardConfig
from repro.scenarios.machines import MACHINE_SPECS, machine_spec
from repro.scenarios.networks import NETWORKS, network_link
from repro.scenarios.variants import SessionVariant, variant_name
from repro.server.host import CloudHost, HostConfig, HostResult
from repro.sim.engine import Environment

__all__ = ["AGENT_FACTORIES", "Placement", "SCENARIO_SCHEMA_VERSION",
           "Scenario", "SeedPolicy", "agent_factory", "register_agent",
           "split_agent_name"]

#: Bump when the serialized scenario layout (or the result layout the
#: executor caches) changes, so stale provenance is always detectable.
SCENARIO_SCHEMA_VERSION = 2

#: Named driving agents a placement may request.  ``None`` means the
#: host's default (the synthetic human player).  Factories must be
#: module-level callables taking the instantiated application, so the
#: scenario stays picklable — the name crosses the process boundary and
#: the factory is resolved inside the worker.
class _ArtifactAgentSpec:
    """Registry entry for agents materialized from trained artefacts.

    The placement name stays declarative (``intelligent``,
    ``intelligent@3``, ``intelligent#<hash>``, ``deskbench@3``); the
    trained agent resolves lazily — memo, ambient artefact store, or
    train-on-demand — inside the executing process when the host binds
    its instances, like every other name-resolved scenario registry.
    The heavy agents package is imported only at bind time, so scenario
    construction and hashing stay lightweight.
    """

    def __init__(self, kind: str):
        self.kind = kind

    def bind(self, scenario: "Scenario", benchmark: str, agent: str) -> Callable:
        from repro.agents.artifacts import bind_scenario_agent
        return bind_scenario_agent(self.kind, scenario, benchmark, agent)


AGENT_FACTORIES: dict[str, Optional[Callable]] = {
    "human": None,
    "intelligent": _ArtifactAgentSpec("intelligent"),
    "deskbench": _ArtifactAgentSpec("deskbench"),
}


def split_agent_name(name: str) -> tuple[str, str, str]:
    """Split a placement agent name into (base, separator, parameter).

    ``"intelligent@3"`` → ``("intelligent", "@", "3")`` (a training-seed
    offset), ``"intelligent#ab12…"`` → ``("intelligent", "#", "ab12…")``
    (an explicit artefact hash), bare names → ``(name, "", "")``.
    """
    for sep in ("@", "#"):
        base, found, param = name.partition(sep)
        if found:
            return base, sep, param
    return name, "", ""


def agent_factory(name: str) -> Optional[Callable]:
    """The agent factory registered under ``name`` (None = default human).

    Parametrized names (``intelligent@3``) resolve through their base
    name; the parameter is consumed by the registered spec's ``bind``
    (see :meth:`Scenario.build_host`).
    """
    base, _, _ = split_agent_name(name)
    try:
        return AGENT_FACTORIES[base]
    except KeyError:
        raise KeyError(f"unknown agent {base!r}; "
                       f"known: {sorted(AGENT_FACTORIES)}") from None


def register_agent(name: str, factory: Callable) -> None:
    """Register an agent factory (``factory(app) -> agent``) under ``name``.

    Like all scenario registries (agents, machines, networks), entries
    are resolved *by name* inside the executing process.  For scenarios
    that run on a process-pool backend, perform the registration at
    module import time in an imported module (not ad hoc in ``__main__``)
    so spawn-based worker processes see it too; fork-based workers
    (Linux default) inherit it either way.
    """
    if not name:
        raise ValueError("agent name must be non-empty")
    AGENT_FACTORIES[name] = factory


@dataclass(frozen=True)
class Placement:
    """``count`` instances of one benchmark, driven by one named agent."""

    benchmark: str
    agent: str = "human"
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("placement count must be at least 1")
        known = all_benchmarks()
        if self.benchmark not in known:
            raise ValueError(f"unknown benchmark {self.benchmark!r}; "
                             f"known: {', '.join(sorted(known))}")
        base, sep, param = split_agent_name(self.agent)
        if base not in AGENT_FACTORIES:
            raise ValueError(f"unknown agent {base!r}; "
                             f"known: {sorted(AGENT_FACTORIES)}")
        if sep:
            if not hasattr(AGENT_FACTORIES[base], "bind"):
                raise ValueError(f"agent {base!r} does not take a "
                                 f"{sep!r} parameter")
            if sep == "@":
                try:
                    int(param)
                except ValueError:
                    raise ValueError(
                        f"agent parameter in {self.agent!r} must be an "
                        "integer training-seed offset") from None
            elif not param:
                raise ValueError(f"agent {self.agent!r} names an empty "
                                 "artefact hash")


@dataclass(frozen=True)
class SeedPolicy:
    """How a scenario derives the seed of its random streams.

    ``base`` pins an absolute base seed; the default (None) inherits
    ``config.seed`` so sweeps stay controlled by one experiment config.
    ``offset`` decorrelates repeated runs of otherwise-equal scenarios.
    """

    offset: int = 0
    base: Optional[int] = None


def _as_placement(entry) -> Placement:
    if isinstance(entry, Placement):
        return entry
    if isinstance(entry, str):
        return Placement(benchmark=entry)
    if isinstance(entry, dict):
        return Placement(**entry)
    raise TypeError(f"cannot interpret {entry!r} as a placement")


@dataclass(frozen=True)
class Scenario:
    """One declaratively described testbed run."""

    placements: tuple[Placement, ...]
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    variant: SessionVariant = field(default_factory=SessionVariant)
    machine: str = "paper"
    containerized: bool = False
    network: str = "lan_1gbps"
    seed: SeedPolicy = field(default_factory=SeedPolicy)

    def __post_init__(self) -> None:
        placements = tuple(_as_placement(p) for p in self.placements)
        if not placements:
            raise ValueError("a scenario needs at least one placement")
        # Canonical form: adjacent placements of the same (benchmark,
        # agent) merge into one counted placement, so ("RE", "RE") and
        # Placement("RE", count=2) hash — and therefore cache — the same.
        merged: list[Placement] = []
        for placement in placements:
            if merged and merged[-1].benchmark == placement.benchmark \
                    and merged[-1].agent == placement.agent:
                merged[-1] = replace(merged[-1],
                                     count=merged[-1].count + placement.count)
            else:
                merged.append(placement)
        object.__setattr__(self, "placements", tuple(merged))
        # Accept a registry name or field dict for the variant, mirroring
        # the JSON-spec form ("variant": "optimized").
        object.__setattr__(self, "variant",
                           SessionVariant.from_dict(self.variant))
        if self.machine not in MACHINE_SPECS:
            raise ValueError(f"unknown machine spec {self.machine!r}; "
                             f"known: {sorted(MACHINE_SPECS)}")
        if self.network not in NETWORKS:
            raise ValueError(f"unknown network {self.network!r}; "
                             f"known: {sorted(NETWORKS)}")

    # -- convenience constructors -----------------------------------------------------
    @classmethod
    def single(cls, benchmark: str, config: Optional[ExperimentConfig] = None,
               *, agent: str = "human", seed_offset: int = 0,
               **options) -> "Scenario":
        """One benchmark instance alone on the server."""
        return cls(placements=(Placement(benchmark, agent=agent),),
                   config=config or ExperimentConfig(),
                   seed=SeedPolicy(offset=seed_offset), **options)

    @classmethod
    def colocated(cls, benchmark: str, instances: int,
                  config: Optional[ExperimentConfig] = None,
                  *, seed_offset: int = 0, **options) -> "Scenario":
        """``instances`` copies of the same benchmark on one server."""
        if instances < 1:
            raise ValueError("instances must be at least 1")
        return cls(placements=(Placement(benchmark, count=instances),),
                   config=config or ExperimentConfig(),
                   seed=SeedPolicy(offset=seed_offset), **options)

    @classmethod
    def mixed(cls, benchmarks, config: Optional[ExperimentConfig] = None,
              *, seed_offset: int = 0, **options) -> "Scenario":
        """An arbitrary mix of benchmarks sharing one server."""
        return cls(placements=tuple(_as_placement(b) for b in benchmarks),
                   config=config or ExperimentConfig(),
                   seed=SeedPolicy(offset=seed_offset), **options)

    # -- derived views ----------------------------------------------------------------
    @property
    def benchmarks(self) -> tuple[str, ...]:
        """The benchmark short names, one entry per instance, in order."""
        return tuple(p.benchmark for p in self.placements for _ in range(p.count))

    @property
    def instances(self) -> tuple[tuple[str, str], ...]:
        """(benchmark, agent) per instance, in placement order."""
        return tuple((p.benchmark, p.agent)
                     for p in self.placements for _ in range(p.count))

    def effective_seed(self) -> int:
        base = self.config.seed if self.seed.base is None else self.seed.base
        return base + self.seed.offset

    def cost_units(self, duration: Optional[float] = None) -> float:
        """An a-priori cost for running this scenario, in abstract units.

        Simulated seconds (warm-up plus the measurement interval, or
        ``duration`` when the caller overrides it) times the instance
        count: every instance adds its own event streams, so the event
        volume — and therefore wall time on any backend — grows roughly
        with this product.  The executor's cost model turns units into
        wall-clock estimates (calibrated from cached runtimes) to pack
        backends largest-first; ordering never affects results, only how
        well the pool is utilized.
        """
        span = self.config.duration_s if duration is None else duration
        ff = self.config.fast_forward
        if ff.enabled:
            # Fast-forward micro-simulates only enough windows to
            # establish steadiness plus the exit window; without this
            # cap the queue packer would schedule a fast-forwarded
            # two-minute run as if it cost a full-fidelity one.
            micro_cap = (ff.window_s * (ff.min_steady_windows + 1)
                         + ff.exit_window_s)
            span = min(span, micro_cap)
        return (self.config.warmup_s + span) * len(self.benchmarks)

    def describe(self) -> str:
        """A short human-readable label for progress output and tables."""
        names = []
        for placement in self.placements:
            label = placement.benchmark
            if placement.count > 1:
                label += f"x{placement.count}"
            if placement.agent != "human":
                label += f"({placement.agent})"
            names.append(label)
        parts = ["+".join(names), f"seed+{self.seed.offset}"]
        if self.seed.base is not None:
            parts[-1] = f"seed={self.seed.base}+{self.seed.offset}"
        name = variant_name(self.variant)
        if name != "default":
            changed = name or ",".join(
                field_name for field_name, value in asdict(self.variant).items()
                if value != getattr(SessionVariant(), field_name))
            parts.append(f"[{changed}]")
        if self.machine != "paper":
            parts.append(f"@{self.machine}")
        if self.network != "lan_1gbps":
            parts.append(f"net={self.network}")
        if self.containerized:
            parts.append("containerized")
        if self.config.fast_forward.enabled:
            parts.append("fast-forward")
        return " ".join(parts)

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """A plain-data form that round-trips through :meth:`from_dict`."""
        config = asdict(self.config)
        # Omit-when-default: a config with fast-forward off serializes
        # exactly as it did before the field existed, so every existing
        # content hash, cache key and golden-trace header is preserved.
        if self.config.fast_forward == FastForwardConfig():
            del config["fast_forward"]
        return {
            "schema": SCENARIO_SCHEMA_VERSION,
            "placements": [asdict(p) for p in self.placements],
            "config": config,
            "variant": self.variant.to_dict(),
            "machine": self.machine,
            "containerized": self.containerized,
            "network": self.network,
            "seed": asdict(self.seed),
        }

    @staticmethod
    def from_dict(data: dict,
                  config: Optional[ExperimentConfig] = None) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output or a hand-written
        spec.

        Specs may omit anything but ``placements``.  ``config`` (e.g. a
        CLI profile) is the base configuration; a spec's ``config``
        section — itself allowed to be partial — is merged over it, so
        ``{"config": {"seed": 7}}`` keeps the profile's durations.
        Placement entries may be bare benchmark names.
        """
        if "placements" not in data:
            raise KeyError("a scenario spec needs a 'placements' list")
        unknown = set(data) - {"schema", "placements", "config", "variant",
                               "machine", "containerized", "network", "seed"}
        if unknown:
            raise KeyError(f"unknown scenario spec fields {sorted(unknown)}")
        config = config or ExperimentConfig()
        if "config" in data:
            config_data = dict(data["config"])
            unknown = set(config_data) - set(
                ExperimentConfig.__dataclass_fields__)
            if unknown:
                raise KeyError(f"unknown config fields {sorted(unknown)}")
            if "benchmarks" in config_data:
                config_data["benchmarks"] = tuple(config_data["benchmarks"])
            config = replace(config, **config_data)
        seed_data = data.get("seed", {})
        if isinstance(seed_data, int):
            seed_data = {"offset": seed_data}
        return Scenario(
            placements=tuple(_as_placement(p) for p in data["placements"]),
            config=config,
            variant=SessionVariant.from_dict(data.get("variant", {})),
            machine=data.get("machine", "paper"),
            containerized=bool(data.get("containerized", False)),
            network=data.get("network", "lan_1gbps"),
            seed=SeedPolicy(**seed_data),
        )

    def content_hash(self) -> str:
        """A stable SHA-256 over the scenario's content.

        Deliberately excludes the schema version: provenance (is this
        entry from the current schema?) is recorded *inside* cache
        entries so stale entries are detected and logged rather than
        silently keyed away (see
        :class:`repro.experiments.executor.ResultCache`).
        """
        payload = {key: value for key, value in self.to_dict().items()
                   if key != "schema"}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def short_hash(self) -> str:
        return self.content_hash()[:12]

    # -- execution --------------------------------------------------------------------
    def build_host(self, heap: str = "tuple") -> CloudHost:
        """Construct the (not yet run) testbed host this scenario describes.

        ``heap`` selects the kernel's scheduling-heap implementation
        (see :class:`repro.sim.engine.Environment`); both must produce
        byte-identical traces, which the golden suite checks.
        """
        host_config = HostConfig(
            seed=self.effective_seed(),
            machine_spec=machine_spec(self.machine),
            pictor=self.variant.pictor_config(),
            containerized=self.containerized,
        )
        host = CloudHost(host_config, env=Environment(heap=heap))
        link = network_link(self.network)
        for benchmark, agent in self.instances:
            factory = agent_factory(agent)
            if hasattr(factory, "bind"):
                factory = factory.bind(self, benchmark, agent)
            host.add_instance(
                benchmark, agent_factory=factory,
                session_config=self.variant.session_config(link=link))
        return host

    def run(self, suite=None, duration: Optional[float] = None) -> HostResult:
        """Run this scenario and return its :class:`HostResult`.

        With a ``suite`` the run goes through the experiment executor
        (deduplication, caching, worker processes); without one it
        executes in-process.  Both paths produce bit-identical results.
        """
        from repro.experiments.jobs import ExperimentJob, execute_job
        job = ExperimentJob(self, duration=duration)
        if suite is not None:
            return suite.run([job])[0]
        return execute_job(job)
