"""Shared experiment configuration (lives with the scenario model).

The paper runs each benchmark for three 15-minute sessions and notes the
results are stable after ~10 minutes.  Simulated time is cheap but not
free, so the default configuration uses a shorter measurement interval
that is already past the warm-up transient; the ``quick()`` preset trims
it further for unit tests and CI.

Every :class:`~repro.scenarios.Scenario` embeds an
:class:`ExperimentConfig`, which is why it is defined here at the bottom
of the dependency stack; :mod:`repro.experiments.config` re-exports it
for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.apps.registry import BENCHMARK_SHORT_NAMES
from repro.sim.fastforward import FastForwardConfig

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment generator."""

    seed: int = 0
    duration_s: float = 30.0          # measurement interval per run
    warmup_s: float = 3.0
    benchmarks: tuple[str, ...] = BENCHMARK_SHORT_NAMES
    max_instances: int = 4            # colocation sweep upper bound
    # Intelligent-client training budget.
    recording_seconds: float = 12.0
    cnn_epochs: int = 10
    lstm_epochs: int = 25
    # Temporal upscaling (repro.sim.fastforward); off by default.  Also
    # accepts a bool or a partial dict — the JSON-spec / replace() forms.
    fast_forward: FastForwardConfig = field(
        default_factory=FastForwardConfig)

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.warmup_s < 0:
            raise ValueError("durations must be positive (warmup non-negative)")
        if self.max_instances < 1:
            raise ValueError("max_instances must be at least 1")
        unknown = [b for b in self.benchmarks if b not in BENCHMARK_SHORT_NAMES]
        if unknown:
            raise ValueError(f"unknown benchmarks in config: {unknown}")
        object.__setattr__(self, "fast_forward",
                           FastForwardConfig.coerce(self.fast_forward))

    @staticmethod
    def quick(seed: int = 0) -> "ExperimentConfig":
        """A fast preset for unit tests and smoke benchmarks."""
        return ExperimentConfig(
            seed=seed, duration_s=8.0, warmup_s=1.0,
            recording_seconds=6.0, cnn_epochs=4, lstm_epochs=10)

    @staticmethod
    def smoke(seed: int = 0) -> "ExperimentConfig":
        """The smallest sensible preset: CI smoke runs and CLI dry runs.

        Shared by ``python -m repro.experiments --profile smoke`` and the
        benchmark harnesses' ``PICTOR_BENCH_PROFILE=smoke`` so their jobs
        hash identically and can share one result cache.
        """
        return ExperimentConfig(
            seed=seed, duration_s=2.0, warmup_s=0.5,
            recording_seconds=3.0, cnn_epochs=2, lstm_epochs=4)

    @staticmethod
    def paper(seed: int = 0) -> "ExperimentConfig":
        """A longer preset closer to the paper's measurement intervals."""
        return ExperimentConfig(
            seed=seed, duration_s=120.0, warmup_s=10.0,
            recording_seconds=30.0, cnn_epochs=20, lstm_epochs=50)

    def with_benchmarks(self, benchmarks) -> "ExperimentConfig":
        return replace(self, benchmarks=tuple(benchmarks))
