"""Named network conditions between each client and the server.

Like machines, link specifications are referenced by name so the
scenario's serialized form stays small and its content hash stable.  The
default is the testbed's 1 Gbps LAN; the other presets let a scenario
degrade every client's network declaratively.
"""

from __future__ import annotations

from repro.network.link import LinkSpec

__all__ = ["NETWORKS", "network_link", "register_network"]

#: Named link specifications, keyed by the name scenarios use.
NETWORKS = {
    "lan_1gbps": LinkSpec.lan_1gbps,
    "cellular_5g": LinkSpec.cellular_5g,
    "broadband_10g": LinkSpec.broadband_10g,
}


def network_link(name: str) -> LinkSpec:
    """Instantiate the link specification registered under ``name``."""
    try:
        return NETWORKS[name]()
    except KeyError:
        raise KeyError(f"unknown network {name!r}; "
                       f"known: {sorted(NETWORKS)}") from None


def register_network(name: str, factory) -> None:
    """Register a zero-argument ``LinkSpec`` factory under ``name``.

    Names are resolved inside the executing process: register at module
    import time (see :func:`repro.scenarios.register_agent`) so
    spawn-based pool workers resolve them too.
    """
    if not name:
        raise ValueError("network name must be non-empty")
    NETWORKS[name] = factory
