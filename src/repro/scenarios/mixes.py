"""Scenario generators for heterogeneous N-way benchmark mixes.

The paper's mixed-pair experiments (Figures 18–19) stop at two instances
per server; the scenario model holds an arbitrary placement list, so the
deeper mixes the ROADMAP calls for are one generator away.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Optional

from repro.apps.registry import all_benchmarks
from repro.scenarios.config import ExperimentConfig
from repro.scenarios.scenario import Scenario

__all__ = ["mix_combinations", "n_way_mixes", "sample_mix"]

#: Seed-offset block reserved for the N-way mix sweeps, clear of the
#: per-figure blocks (0–99 characterization, 100+ architecture, … 800+
#: ablations).
_NWAY_SEED_BASE = 900


def mix_combinations(benchmarks, size: int) -> Iterator[tuple[str, ...]]:
    """Every unordered mix of ``size`` distinct benchmarks, in pool order.

    The canonical enumeration both :func:`n_way_mixes` (which walks it
    exhaustively) and :func:`sample_mix` (which draws from it uniformly)
    agree on: a mix is an unordered subset of the pool, represented as a
    tuple sorted by pool position.
    """
    if size < 1:
        raise ValueError("a mix needs at least one instance")
    yield from combinations(tuple(benchmarks), size)


def sample_mix(rng, benchmarks, size: int) -> tuple[str, ...]:
    """One mix drawn uniformly from ``mix_combinations(benchmarks, size)``.

    ``rng`` is a :class:`random.Random`; the draw consumes a fixed number
    of its outputs, so callers (the fleet population sampler) get
    reproducible streams without enumerating the combination space.
    """
    pool = tuple(benchmarks)
    if not 1 <= size <= len(pool):
        raise ValueError(f"cannot draw a {size}-way mix from a pool of "
                         f"{len(pool)} benchmark(s)")
    picked = rng.sample(range(len(pool)), size)
    return tuple(pool[index] for index in sorted(picked))


def n_way_mixes(config: Optional[ExperimentConfig] = None,
                sizes=(3, 4), benchmarks=None,
                seed_offset_base: int = _NWAY_SEED_BASE,
                **options) -> list[Scenario]:
    """Every unordered mix of ``sizes`` distinct benchmarks, as scenarios.

    Defaults to the full apps registry (so newly registered workloads
    join the sweep automatically) restricted by ``config.benchmarks``
    when a config is given.  ``options`` (variant, machine, network,
    containerized) pass through to every generated scenario.
    """
    config = config or ExperimentConfig()
    benchmarks = tuple(benchmarks if benchmarks is not None
                       else config.benchmarks or all_benchmarks())
    scenarios = []
    offset = seed_offset_base
    for size in sizes:
        if size < 2:
            raise ValueError("a mix needs at least two instances")
        for combo in mix_combinations(benchmarks, size):
            scenarios.append(Scenario.mixed(combo, config=config,
                                            seed_offset=offset, **options))
            offset += 1
    return scenarios
