"""Scenario generators for heterogeneous N-way benchmark mixes.

The paper's mixed-pair experiments (Figures 18–19) stop at two instances
per server; the scenario model holds an arbitrary placement list, so the
deeper mixes the ROADMAP calls for are one generator away.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from repro.apps.registry import all_benchmarks
from repro.scenarios.config import ExperimentConfig
from repro.scenarios.scenario import Scenario

__all__ = ["n_way_mixes"]

#: Seed-offset block reserved for the N-way mix sweeps, clear of the
#: per-figure blocks (0–99 characterization, 100+ architecture, … 800+
#: ablations).
_NWAY_SEED_BASE = 900


def n_way_mixes(config: Optional[ExperimentConfig] = None,
                sizes=(3, 4), benchmarks=None,
                seed_offset_base: int = _NWAY_SEED_BASE,
                **options) -> list[Scenario]:
    """Every unordered mix of ``sizes`` distinct benchmarks, as scenarios.

    Defaults to the full apps registry (so newly registered workloads
    join the sweep automatically) restricted by ``config.benchmarks``
    when a config is given.  ``options`` (variant, machine, network,
    containerized) pass through to every generated scenario.
    """
    config = config or ExperimentConfig()
    benchmarks = tuple(benchmarks if benchmarks is not None
                       else config.benchmarks or all_benchmarks())
    scenarios = []
    offset = seed_offset_base
    for size in sizes:
        if size < 2:
            raise ValueError("a mix needs at least two instances")
        for combo in combinations(benchmarks, size):
            scenarios.append(Scenario.mixed(combo, config=config,
                                            seed_offset=offset, **options))
            offset += 1
    return scenarios
