"""Declarative scenarios: the canonical description of a testbed run.

One :class:`Scenario` value says everything about a run — instance
placements (benchmark, agent, occurrence count), the named machine spec,
the named session variant, network conditions, host options and the seed
policy — and every layer of the repository speaks it natively: the figure
generators build scenarios, the executor hashes them into cache keys, the
CLI runs them from JSON specs, and the cache stamps results with their
hash for provenance.

>>> from repro.scenarios import Scenario, session_variant
>>> s = Scenario.mixed(("RE", "ITP", "D2"), variant=session_variant("optimized"))
>>> s == Scenario.from_dict(s.to_dict())
True
>>> result = s.run()                      # doctest: +SKIP
"""

from repro.scenarios.config import ExperimentConfig
from repro.scenarios.machines import (
    MACHINE_SPECS,
    machine_spec,
    register_machine_spec,
)
from repro.scenarios.mixes import mix_combinations, n_way_mixes, sample_mix
from repro.scenarios.networks import NETWORKS, network_link, register_network
from repro.scenarios.scenario import (
    AGENT_FACTORIES,
    Placement,
    SCENARIO_SCHEMA_VERSION,
    Scenario,
    SeedPolicy,
    agent_factory,
    register_agent,
)
from repro.scenarios.variants import (
    SESSION_VARIANTS,
    SessionVariant,
    register_session_variant,
    session_variant,
    variant_name,
)

__all__ = [
    "AGENT_FACTORIES",
    "ExperimentConfig",
    "MACHINE_SPECS",
    "NETWORKS",
    "Placement",
    "SCENARIO_SCHEMA_VERSION",
    "SESSION_VARIANTS",
    "Scenario",
    "SeedPolicy",
    "SessionVariant",
    "agent_factory",
    "machine_spec",
    "mix_combinations",
    "n_way_mixes",
    "network_link",
    "register_agent",
    "register_machine_spec",
    "register_network",
    "register_session_variant",
    "sample_mix",
    "session_variant",
    "variant_name",
]
