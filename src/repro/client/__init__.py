"""Client side of the cloud rendering system.

The client machine is thin: it captures user inputs (from a human, from
Pictor's intelligent client, or from one of the prior-work baselines),
ships them to the server proxy, and decodes/displays the compressed
frames that come back.  Pictor's hook1 and hook10 both live here, which
is what lets the framework measure true end-to-end round-trip times at
the client rather than inferring them from server-side stages.
"""

from repro.client.proxy import ClientProxy, ClientProxyConfig
from repro.client.input_devices import InputDevice, Keyboard, Mouse, HeadMountedDisplay

__all__ = [
    "ClientProxy",
    "ClientProxyConfig",
    "HeadMountedDisplay",
    "InputDevice",
    "Keyboard",
    "Mouse",
]
