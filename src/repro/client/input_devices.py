"""Interactive input devices attached to the client.

The paper's benchmarks span keyboard-driven games, mouse-driven games and
VR titles whose "input" is a continuous stream of head poses; TurboVNC
had to be extended to carry the latter.  The device classes map an
abstract :class:`~repro.apps.base.Action` onto the wire-level message
kind and payload each device produces, which determines the RFB message
type and size used on the uplink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import Action, InputKind
from repro.network.packet import MessageKind

__all__ = ["HeadMountedDisplay", "InputDevice", "Keyboard", "Mouse",
           "device_for_input_kind"]


@dataclass(frozen=True)
class InputDevice:
    """Base class: maps actions to protocol message kinds."""

    name: str = "generic"

    def message_kind(self, action: Action) -> MessageKind:
        raise NotImplementedError

    def describe(self, action: Action) -> str:
        """Human-readable description of the action as this device emits it."""
        return f"{self.name}:{action.steer:+.2f}/{action.pitch:+.2f}" + (
            "+primary" if action.primary else "")


@dataclass(frozen=True)
class Keyboard(InputDevice):
    """Arrow keys / WASD plus an action key."""

    name: str = "keyboard"

    def message_kind(self, action: Action) -> MessageKind:
        return MessageKind.KEY_EVENT


@dataclass(frozen=True)
class Mouse(InputDevice):
    """Pointer motion plus buttons."""

    name: str = "mouse"

    def message_kind(self, action: Action) -> MessageKind:
        return MessageKind.POINTER_EVENT


@dataclass(frozen=True)
class HeadMountedDisplay(InputDevice):
    """VR head-pose updates (the TurboVNC VR-input extension)."""

    name: str = "hmd"

    def message_kind(self, action: Action) -> MessageKind:
        return MessageKind.HMD_EVENT


def device_for_input_kind(input_kind: InputKind) -> InputDevice:
    """Pick the device a benchmark's profile asks for."""
    if input_kind is InputKind.HMD:
        return HeadMountedDisplay()
    if input_kind is InputKind.MOUSE:
        return Mouse()
    if input_kind is InputKind.KEYBOARD:
        return Keyboard()
    return Mouse()
