"""The client proxy: input capture, frame display, and hooks 1 / 10.

One :class:`ClientProxy` instance runs per benchmark instance (each
instance has its own client machine in the paper's testbed).  It hosts
the driving agent — a synthetic human, Pictor's intelligent client, or a
prior-work baseline — on its input side, and the frame decoder / display
on its output side.  The measurement framework's first and last hooks
live here: hook1 tags every captured input, hook10 matches a received
frame's tag back to the input that caused it, which is what gives Pictor
true client-observed round-trip times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.base import Action
from repro.client.input_devices import InputDevice, device_for_input_kind
from repro.core.hooks import HookPoint
from repro.core.monitors import FpsCounter
from repro.core.pictor import SessionInstrumentation
from repro.graphics.frame import Frame
from repro.graphics.pipeline import Stage
from repro.network.link import NetworkLink
from repro.network.protocols import RfbProtocol
from repro.sim.engine import Environment
from repro.sim.randomness import StreamRandom
from repro.sim.resources import Store

__all__ = ["ClientProxy", "ClientProxyConfig"]


@dataclass(frozen=True)
class ClientProxyConfig:
    """Client-side behaviour parameters."""

    # Decoding a compressed frame update on the thin client.
    decode_ms_per_mb: float = 2.2
    decode_base_ms: float = 1.0
    # Jitter applied to the agent's action interval.
    interval_jitter: float = 0.30
    # In slow-motion mode the client waits for the response frame of the
    # previous input before issuing the next one (Nieh et al.'s
    # slow-motion benchmarking).
    wait_for_response: bool = False
    slow_motion_timeout_s: float = 1.0


class ClientProxy:
    """Client-side endpoint of one rendering session."""

    def __init__(self, env: Environment, link: NetworkLink,
                 rfb: Optional[RfbProtocol] = None,
                 instrumentation: Optional[SessionInstrumentation] = None,
                 config: Optional[ClientProxyConfig] = None,
                 rng: Optional[StreamRandom] = None,
                 name: str = "client"):
        self.env = env
        self.link = link
        self.rfb = rfb or RfbProtocol()
        self.instrumentation = instrumentation
        self.config = config or ClientProxyConfig()
        self.rng = rng or StreamRandom(0)
        self.name = name

        #: Set by the rendering session: where uplink input messages land.
        self.server_inbox: Optional[Store] = None
        #: Downlink frames (frame, tags, compressed_bytes) land here.
        self.frame_queue: Store = Store(env)

        self.client_fps = FpsCounter(env, name=f"{name}.client_fps")
        self.latest_frame: Optional[Frame] = None
        self.latest_frame_at: Optional[float] = None
        self.inputs_sent = 0
        self.frames_displayed = 0
        self._outstanding_inputs = 0
        self._processes = []

    # -- lifecycle -----------------------------------------------------------------
    def start(self, agent, device: Optional[InputDevice] = None) -> None:
        """Start the input-generation and display loops for ``agent``."""
        if self.server_inbox is None:
            raise RuntimeError("server_inbox must be connected before starting")
        self._processes.append(self.env.process(self._input_loop(agent, device)))
        self._processes.append(self.env.process(self._display_loop()))

    # -- input side (hook1, stage CS) --------------------------------------------------
    def _input_loop(self, agent, device: Optional[InputDevice]):
        device = device or device_for_input_kind(agent.input_kind)
        while True:
            interval = self.rng.jitter(1.0 / agent.actions_per_second,
                                       self.config.interval_jitter)
            yield self.env.timeout(interval)

            if self.config.wait_for_response:
                yield from self._wait_for_quiescence()

            decision = agent.decide(self.latest_frame, self.env.now)
            if decision is None:
                continue
            action, compute_time = decision
            if compute_time > 0:
                yield self.env.timeout(compute_time)
            yield from self.send_input(action, device)

    def _wait_for_quiescence(self):
        """Slow-motion benchmarking: one outstanding input/frame at a time."""
        waited = 0.0
        poll = 0.005
        while self._outstanding_inputs > 0 and waited < self.config.slow_motion_timeout_s:
            yield self.env.timeout(poll)
            waited += poll

    def send_input(self, action: Action, device: InputDevice):
        """Generator: tag (hook1) and transmit one input (stage CS)."""
        kind = device.message_kind(action)
        message = self.rfb.encode_input(kind, payload=action)
        action.issued_at = self.env.now

        tag = None
        if self.instrumentation is not None and self.instrumentation.enabled:
            record = self.instrumentation.tracker.create_record(
                kind=kind.value, timestamp=self.env.now, payload=action)
            tag = record.tag
            message.with_tag(tag)
            self.instrumentation.hooks.fire(
                HookPoint.HOOK1, timestamp=self.env.now, api="client_capture_input",
                tag=tag)

        send_started = self.env.now
        yield from self.link.transmit(message, NetworkLink.UPLINK)
        cs_duration = self.env.now - send_started
        if tag is not None:
            self.instrumentation.tracker.record_stage(tag, Stage.CS, cs_duration)

        yield self.server_inbox.put(message)
        self.inputs_sent += 1
        self._outstanding_inputs += 1
        return message

    # -- display side (hook10, stage CD) --------------------------------------------------
    def _display_loop(self):
        while True:
            frame, tags, compressed_bytes = yield self.frame_queue.get()
            decode_started = self.env.now
            decode_time = (self.config.decode_base_ms
                           + self.config.decode_ms_per_mb * compressed_bytes / 1e6) * 1e-3
            yield self.env.timeout(self.rng.jitter(decode_time, 0.15))
            self._display(frame, tags, self.env.now - decode_started)

    def _display(self, frame: Frame, tags, decode_duration: float) -> None:
        self.client_fps.record_frame()
        self.frames_displayed += 1
        self.latest_frame = frame
        self.latest_frame_at = self.env.now
        self._outstanding_inputs = max(0, self._outstanding_inputs - len(tags))

        if self.instrumentation is None or not self.instrumentation.enabled:
            return
        tracker = self.instrumentation.tracker
        for tag in tags:
            self.instrumentation.hooks.fire(
                HookPoint.HOOK10, timestamp=self.env.now,
                api="client_display_frame", tag=tag, frame_id=frame.frame_id)
            tracker.record_stage(tag, Stage.CD, decode_duration)
            tracker.complete(tag, self.env.now, frame_id=frame.frame_id)
