"""Network substrate: links, NICs, messages and RFB-style protocol framing.

The paper's testbed gives each benchmark instance its own 1 Gbps NIC (the
link behaves similarly to 5G cellular for frame delivery), so the model
provides per-instance full-duplex links with bandwidth sharing, latency
and jitter, plus byte counters for the Figure 9 bandwidth characterization.
"""

from repro.network.link import LinkSpec, NetworkLink, Nic
from repro.network.packet import Message, MessageKind
from repro.network.protocols import RfbProtocol, StreamingProtocol

__all__ = [
    "LinkSpec",
    "Message",
    "MessageKind",
    "NetworkLink",
    "Nic",
    "RfbProtocol",
    "StreamingProtocol",
]
