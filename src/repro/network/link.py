"""Network links and NICs.

Each benchmark instance gets its own full-duplex :class:`NetworkLink`
(the paper provisions one 1 Gbps NIC per instance precisely to avoid
network contention between instances).  Within a link, concurrent
transmissions in the same direction share the bandwidth equally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.packet import Message
from repro.sim.engine import Environment, SimulationError
from repro.sim.randomness import StreamRandom

__all__ = ["LinkSpec", "NetworkLink", "Nic"]


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one network path between client and server."""

    bandwidth_gbps: float = 1.0     # usable bandwidth, gigabits per second
    base_latency_ms: float = 5.0    # one-way propagation + switching latency
    jitter_fraction: float = 0.25   # uniform jitter applied to the latency
    mtu_bytes: int = 1500
    per_packet_overhead_bytes: int = 66   # Ethernet + IP + TCP headers

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    @staticmethod
    def lan_1gbps() -> "LinkSpec":
        """The testbed's 1 Gbps LAN (behaves like 5G for frame delivery)."""
        return LinkSpec(bandwidth_gbps=1.0, base_latency_ms=5.0, jitter_fraction=0.25)

    @staticmethod
    def cellular_5g() -> "LinkSpec":
        """A 5G-like profile: similar bandwidth, slightly higher latency."""
        return LinkSpec(bandwidth_gbps=1.0, base_latency_ms=8.0, jitter_fraction=0.45)

    @staticmethod
    def broadband_10g() -> "LinkSpec":
        return LinkSpec(bandwidth_gbps=10.0, base_latency_ms=2.0, jitter_fraction=0.15)


class _Direction:
    """Per-direction state of a full-duplex link."""

    def __init__(self) -> None:
        self.active_transfers = 0
        self.bytes_moved = 0.0
        self.messages = 0


class NetworkLink:
    """A full-duplex point-to-point link between one client and the server."""

    UPLINK = "client_to_server"
    DOWNLINK = "server_to_client"

    def __init__(self, env: Environment, spec: Optional[LinkSpec] = None,
                 rng: Optional[StreamRandom] = None, name: str = "link"):
        self.env = env
        self.spec = spec or LinkSpec.lan_1gbps()
        self.rng = rng or StreamRandom(0)
        self.name = name
        self._directions = {self.UPLINK: _Direction(), self.DOWNLINK: _Direction()}
        # Hot-path caches: transmit() runs per message, and the frozen
        # dataclass recomputes these on every property access.
        self._bandwidth_bytes_per_s = self.spec.bandwidth_bytes_per_s
        self._base_latency_s = self.spec.base_latency_ms * 1e-3

    # -- transmission -----------------------------------------------------------
    def transmit(self, message: Message, direction: str):
        """Generator: move ``message`` across the link; returns the message."""
        state = self._direction_state(direction)
        message.sent_at = self.env.now

        wire_bytes = self._wire_bytes(message.size_bytes)
        state.active_transfers += 1
        try:
            share = max(1, state.active_transfers)
            effective_bw = self._bandwidth_bytes_per_s / share
            serialization = wire_bytes / effective_bw
            latency = self.rng.jitter(self._base_latency_s,
                                      self.spec.jitter_fraction)
            yield self.env.timeout(latency + serialization)
        finally:
            state.active_transfers = max(0, state.active_transfers - 1)

        message.received_at = self.env.now
        state.bytes_moved += wire_bytes
        state.messages += 1
        return message

    def _wire_bytes(self, payload_bytes: float) -> float:
        packets = max(1, int(payload_bytes // self.spec.mtu_bytes) + 1)
        return payload_bytes + packets * self.spec.per_packet_overhead_bytes

    def _direction_state(self, direction: str) -> _Direction:
        if direction not in self._directions:
            raise SimulationError(
                f"direction must be {self.UPLINK!r} or {self.DOWNLINK!r}, "
                f"got {direction!r}")
        return self._directions[direction]

    def record_synthetic_bytes(self, direction: str, wire_bytes: float) -> None:
        """Credit ``wire_bytes`` skipped over by a fast-forward macro jump."""
        if wire_bytes < 0:
            raise ValueError("synthetic wire bytes cannot be negative")
        self._direction_state(direction).bytes_moved += wire_bytes

    # -- reporting ----------------------------------------------------------------
    def bandwidth_usage_mbps(self, direction: str,
                             elapsed: Optional[float] = None) -> float:
        """Average megabits per second moved in ``direction``."""
        state = self._direction_state(direction)
        horizon = elapsed if elapsed is not None else self.env.now
        if horizon <= 0:
            return 0.0
        return state.bytes_moved * 8.0 / 1e6 / horizon

    def bytes_moved(self, direction: str) -> float:
        return self._direction_state(direction).bytes_moved

    def message_count(self, direction: str) -> int:
        return self._direction_state(direction).messages


class Nic:
    """A server-side network interface dedicated to one benchmark instance."""

    def __init__(self, env: Environment, link: NetworkLink, name: str = "nic0"):
        self.env = env
        self.link = link
        self.name = name

    def send_to_client(self, message: Message):
        return self.link.transmit(message, NetworkLink.DOWNLINK)

    def receive_from_client(self, message: Message):
        return self.link.transmit(message, NetworkLink.UPLINK)
