"""Message objects carried over the simulated network.

A message is the unit the proxies exchange: user inputs travelling from
the client to the server, and compressed frame updates travelling back.
Messages carry the Pictor input tag (when the measurement framework is
enabled) so hook2 and hook10 can extract it — see Section 3.2 of the
paper.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message", "MessageKind"]

_message_ids = itertools.count(1)


class MessageKind(enum.Enum):
    """The RFB-style message types the proxies exchange."""

    KEY_EVENT = "key_event"
    POINTER_EVENT = "pointer_event"
    HMD_EVENT = "hmd_event"            # VR head-motion inputs (TurboVNC extension)
    FRAMEBUFFER_UPDATE = "framebuffer_update"
    CONTROL = "control"


#: Input message kinds, i.e. those travelling client → server.
INPUT_KINDS = frozenset({
    MessageKind.KEY_EVENT,
    MessageKind.POINTER_EVENT,
    MessageKind.HMD_EVENT,
})


@dataclass
class Message:
    """A protocol message in flight between the client and server proxies."""

    kind: MessageKind
    size_bytes: float
    payload: Any = None
    tag: Optional[int] = None
    sent_at: Optional[float] = None
    received_at: Optional[float] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"message size cannot be negative: {self.size_bytes}")

    @property
    def is_input(self) -> bool:
        return self.kind in INPUT_KINDS

    @property
    def network_time(self) -> Optional[float]:
        if self.sent_at is None or self.received_at is None:
            return None
        return self.received_at - self.sent_at

    def with_tag(self, tag: int) -> "Message":
        """Return the same message annotated with a Pictor input tag."""
        self.tag = tag
        return self
