"""Protocol framing: how inputs and frames are encoded on the wire.

Two protocol families appear in cloud 3D rendering systems (Section 2):
the RFB protocol used by VNC-style remote framebuffers, and RTSP-style
video streaming used by systems like GamingAnywhere.  Both are modelled
at the level Pictor observes them — message sizes and per-message
overheads — since the measurement hooks sit above the wire format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.packet import Message, MessageKind

__all__ = ["RfbProtocol", "StreamingProtocol"]


@dataclass(frozen=True)
class RfbProtocol:
    """Remote Frame Buffer framing (the TurboVNC path evaluated in the paper)."""

    key_event_bytes: int = 8
    pointer_event_bytes: int = 6
    hmd_event_bytes: int = 28           # TurboVNC VR-input extension (quaternion + pos)
    update_header_bytes: int = 16
    rectangle_header_bytes: int = 12

    def encode_input(self, kind: MessageKind, payload=None) -> Message:
        """Build the wire message for one user input."""
        sizes = {
            MessageKind.KEY_EVENT: self.key_event_bytes,
            MessageKind.POINTER_EVENT: self.pointer_event_bytes,
            MessageKind.HMD_EVENT: self.hmd_event_bytes,
        }
        if kind not in sizes:
            raise ValueError(f"{kind} is not an input message kind")
        return Message(kind=kind, size_bytes=sizes[kind], payload=payload)

    def encode_frame_update(self, compressed_bytes: float, rectangles: int = 1,
                            payload=None) -> Message:
        """Build the wire message for one framebuffer update."""
        if compressed_bytes < 0:
            raise ValueError("compressed frame size cannot be negative")
        if rectangles < 1:
            raise ValueError("a frame update carries at least one rectangle")
        size = (self.update_header_bytes
                + rectangles * self.rectangle_header_bytes
                + compressed_bytes)
        return Message(kind=MessageKind.FRAMEBUFFER_UPDATE, size_bytes=size,
                       payload=payload)


@dataclass(frozen=True)
class StreamingProtocol:
    """RTSP/RTP-style framing used by video-streaming cloud gaming systems."""

    rtp_header_bytes: int = 12
    packet_payload_bytes: int = 1400
    input_channel_overhead_bytes: int = 24

    def encode_input(self, kind: MessageKind, payload=None) -> Message:
        return Message(kind=kind,
                       size_bytes=self.input_channel_overhead_bytes,
                       payload=payload)

    def encode_frame_update(self, compressed_bytes: float, rectangles: int = 1,
                            payload=None) -> Message:
        if compressed_bytes < 0:
            raise ValueError("compressed frame size cannot be negative")
        packets = max(1, int(compressed_bytes // self.packet_payload_bytes) + 1)
        size = compressed_bytes + packets * self.rtp_header_bytes
        return Message(kind=MessageKind.FRAMEBUFFER_UPDATE, size_bytes=size,
                       payload=payload)
