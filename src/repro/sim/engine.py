"""Core discrete-event simulation engine.

The engine is a small, deterministic, generator-based kernel in the style
of SimPy.  It provides:

``Environment``
    Owns the simulation clock and the event heap, schedules events and
    steps the simulation forward.

``Event``
    A one-shot occurrence that callbacks can be attached to.  Events are
    either *succeeded* with a value or *failed* with an exception.

``Timeout``
    An event that fires after a fixed simulated delay.

``Process``
    Wraps a generator.  The generator yields events; the process resumes
    when the yielded event fires.  A process is itself an event that fires
    when the generator returns.

``AllOf`` / ``AnyOf``
    Composite events over several child events.

The engine is deliberately strict: scheduling into the past, running a
non-generator as a process, or yielding a non-event raise
``SimulationError`` immediately rather than silently corrupting the run.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Any, Callable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for structural misuse of the simulation engine."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the interrupting party's reason and is
    typically used by preemptive resources to tell the victim why it lost
    the resource.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet decided" from a None value.
_PENDING = object()


class Event:
    """A one-shot simulation event.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    makes it *triggered*; it is then scheduled and its callbacks run when
    the environment processes it, after which it is *processed*.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled or processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on the event.
        If nobody waits, the environment raises it at the end of the step
        (unless :meth:`defused` was called).
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining).

        The source event must itself already be triggered; propagating
        from a still-pending source is a structural error.
        """
        ok = event._ok
        if ok:
            self.succeed(event._value)
        elif ok is None:
            raise SimulationError(
                f"cannot trigger {self!r} from {event!r}, which is still pending")
        else:
            self.defuse_source(event)
            self.fail(event._value)

    @staticmethod
    def defuse_source(event: "Event") -> None:
        event._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback`` to run when this event is processed.

        The supported way to observe an event from outside the engine —
        the concrete type behind ``callbacks`` is an implementation
        detail of the kernel.
        """
        if self.callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env._schedule(self, delay=self.delay)


class Initialize(Event):
    """Internal event used to start a newly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        self.process = process
        env._schedule(self, priority=Environment.PRIORITY_URGENT)


class Process(Event):
    """A running process wrapping a generator of events.

    The process is itself an event: it succeeds with the generator's return
    value, or fails with the exception that escaped the generator.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        env._pid = self._pid = env._pid + 1
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        Interruption(self, cause)

    # -- stepping ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue

            if next_event.callbacks is not None:
                # Event still pending or scheduled: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop immediately with its value.
            event = next_event

        self._target = None if not self.is_alive else self._target
        self.env._active_process = None


class Interruption(Event):
    """Helper event that delivers an :class:`Interrupt` to a process."""

    def __init__(self, process: Process, cause: Any):
        super().__init__(process.env)
        self.process = process
        self.callbacks.append(self._deliver)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env._schedule(self, priority=Environment.PRIORITY_URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if not process.is_alive:
            return
        # Detach the process from whatever it is currently waiting on so the
        # original event does not also resume it later.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class ConditionEvent(Event):
    """Base class for :class:`AllOf` and :class:`AnyOf`."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._completed: list[Event] = []
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            if event.callbacks is None:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._completed.append(event)
        if self._satisfied():
            self.succeed({e: e._value for e in self._completed})

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Succeeds once every child event has succeeded."""

    def _satisfied(self) -> bool:
        return len(self._completed) == len(self.events)


class AnyOf(ConditionEvent):
    """Succeeds as soon as any child event succeeds."""

    def _satisfied(self) -> bool:
        return len(self._completed) >= 1


class Environment:
    """The simulation environment: clock, event heap, and run loop."""

    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._pid = 0
        self._active_process: Optional[Process] = None
        # Optional ``tracer(now, event)`` hook observed by step(); install
        # it (see repro.sim.trace.TraceRecorder) *before* running.
        self._tracer: Optional[Callable[[float, Event], None]] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention in this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("nothing left to simulate")
        when, _priority, _eid, event = heapq.heappop(self._queue)
        self._now = when
        tracer = self._tracer
        if tracer is not None:
            tracer(when, event)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock reaches it), an event
        (run until it fires, returning its value), or None (run until the
        event queue drains).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time!r} is in the past (now={self._now!r})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
            raise SimulationError("event queue drained before the stop event fired")
        if stop_time is not None:
            self._now = stop_time
        return None
