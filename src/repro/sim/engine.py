"""Core discrete-event simulation engine.

The engine is a small, deterministic, generator-based kernel in the style
of SimPy.  It provides:

``Environment``
    Owns the simulation clock and the event queues, schedules events and
    steps the simulation forward.

``Event``
    A one-shot occurrence that callbacks can be attached to.  Events are
    either *succeeded* with a value or *failed* with an exception.

``Timeout``
    An event that fires after a fixed simulated delay.

``Process``
    Wraps a generator.  The generator yields events; the process resumes
    when the yielded event fires.  A process is itself an event that fires
    when the generator returns.

``AllOf`` / ``AnyOf``
    Composite events over several child events.

Observability goes through one seam: :attr:`Environment.bus`, an
:class:`~repro.sim.bus.EventBus` whose subscribers see every processed
``(now, event)`` pair (and every fast-forward
:class:`MacroJump`).  The bus compiles down to a single hook slot the
run loop reads, so an unobserved kernel pays one ``is None`` test per
event and nothing else.

The engine is deliberately strict: scheduling into the past, running a
non-generator as a process, or yielding a non-event raise
``SimulationError`` immediately rather than silently corrupting the run.

Implementation notes (the hot path)
-----------------------------------

This kernel is the innermost loop of every experiment, so the
implementation trades a little repetition for constant-factor speed while
keeping the *observable* event order bit-identical to the reference
semantics — every pending event still fires in ``(time, priority,
sequence-id)`` order, with sequence ids advancing exactly as through
:meth:`Environment._schedule`.  The golden traces in ``tests/golden/``
pin this down against the pre-rewrite kernel, on both heap
implementations.  The tricks:

* every event class declares ``__slots__``;
* heap entries are flat ``(time, key, event)`` triples where ``key``
  packs ``(priority, sequence-id)`` into one integer, so tie-breaking
  never falls through to an extra tuple element;
* zero-delay events bypass the heap entirely: they are appended to
  plain FIFO deques (``Environment._fifo`` / ``_urgent``) carrying
  their packed key in the ``_key`` slot instead of a per-entry tuple,
  turning the dominant schedule-now case from O(log n) + allocation
  into a single O(1) append;
* ``callbacks`` avoids list allocation: a fresh event carries a shared
  empty tuple, a single waiter is stored directly (processes are
  callable), and only a second waiter materializes a list
  (``callbacks is None`` still means "processed");
* a waiting process registers *itself* as the callback (it is callable)
  rather than materializing a ``_resume`` bound method per wait;
* ``_defused`` is lazily initialized: the dispatch loop only reads it
  for *failed* events, so hot factories skip the slot write and every
  path that can produce ``_ok = False`` guarantees the slot is set
  (``fail()`` and ``Interruption`` write it; process crashes rely on
  ``Process.__init__``);
* a yielded object is validated by reading its ``callbacks`` attribute
  under ``try/except AttributeError`` instead of an ``isinstance``
  check — free for the overwhelmingly common valid yield;
* ``Timeout`` construction, ``succeed``/``fail`` and process
  termination inline the scheduling push, and
  :meth:`Environment.run` inlines both the pop/dispatch loop and the
  resume step of a single waiting process;
* the run loop *batches* same-timestamp work: once the heap cannot
  interfere at the current instant, the zero-delay FIFO is drained in a
  tight inner loop that re-checks only what dispatch can actually
  change (an urgent arrival, the stop event firing) instead of
  re-deriving the full pop order per event.  The factories keep the
  heap out of the current instant by construction: positive delays too
  small for the clock to represent are routed to the deques (same
  ``(time, priority, id)`` order), and the one remaining way to put a
  heap entry at ``now`` — a zero-delay schedule at priority >= 2 —
  sorts after all current-instant normal work regardless.

The optimized loop serves the default tuple heap.
``Environment(heap="array")`` selects the parallel-array heap
(:class:`~repro.sim.heaps.ArrayHeap` — the layout a native accelerator
would target) and runs through :meth:`Environment._run_reference`, a
direct transcription of the pop/dispatch semantics that both loops must
preserve.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator, Iterable
from heapq import heappop, heappush
from math import inf
from typing import Any, Callable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "MacroJump",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for structural misuse of the simulation engine."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the interrupting party's reason and is
    typically used by preemptive resources to tell the victim why it lost
    the resource.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet decided" from a None value.
_PENDING = object()

# Shared placeholder for "no callbacks attached yet".  Freshly created
# events carry this immutable empty tuple instead of allocating a list;
# a single waiter is then stored directly and only a second waiter
# materializes a list.  ``callbacks is None`` still (and only) means
# "processed".
_NO_CALLBACKS: tuple = ()

# Heap keys pack (priority, sequence-id) into a single integer:
# ``(priority << _KEY_SHIFT) + eid``.  Urgent events (priority 0) sort
# before normal ones at the same timestamp, and within a priority FIFO
# order follows the monotonically increasing id — exactly the ordering
# of the reference ``(time, priority, eid, event)`` heap tuples.
#
# Deque entries store the *bare* sequence id in ``_key``; the compare
# sites reconstruct the full packed key on demand (``_NORMAL_KEY +
# _key`` for the normal FIFO, the bare id for the urgent deque).  The
# reconstruction only happens when the heap could actually interfere at
# the current instant, so the dominant zero-delay path never pays the
# big-integer add (or its allocation).
_KEY_SHIFT = 53
_NORMAL_KEY = 1 << _KEY_SHIFT


class Event:
    """A one-shot simulation event.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    makes it *triggered*; it is then scheduled and its callbacks run when
    the environment processes it, after which it is *processed*.

    ``callbacks`` is the shared empty tuple until a waiter attaches, a
    single callable while one waiter is attached, a list once several
    are, and ``None`` once processed.  ``_key`` holds the event's
    sequence id while the event sits in a zero-delay deque (events are
    one-shot, so the slot is written at most once); the deque identity
    supplies the priority half of the packed scheduling key.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_key")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled or processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        self._key = eid
        env._fifo.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on the event.
        If nobody waits, the environment raises it at the end of the step
        (unless :meth:`defuse_source` was called).
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        # Hot factories skip the _defused init; every failure path must
        # write it before the dispatch loop can read it.
        self._defused = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        self._key = eid
        env._fifo.append(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining).

        The source event must itself already be triggered; propagating
        from a still-pending source is a structural error.
        """
        ok = event._ok
        if ok:
            self.succeed(event._value)
        elif ok is None:
            raise SimulationError(
                f"cannot trigger {self!r} from {event!r}, which is still pending")
        else:
            event._defused = True
            self.fail(event._value)

    @staticmethod
    def defuse_source(event: "Event") -> None:
        event._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback`` to run when this event is processed.

        The supported way to observe an event from outside the engine —
        the concrete type behind ``callbacks`` is an implementation
        detail of the kernel.
        """
        callbacks = self.callbacks
        if callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        if callbacks.__class__ is tuple:
            self.callbacks = callback
        elif callbacks.__class__ is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._value is not _PENDING:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Dedicated fast path: a timeout is born triggered-successfully,
        # so the generic Event init + _schedule machinery is bypassed.
        # _defused is left unset: it is only ever read for failed events
        # and a timeout is born succeeded.
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._ok = True
        self._value = value
        self.delay = delay = float(delay)
        env._eid = eid = env._eid + 1
        now = env._now
        when = now + delay
        if when > now:
            queue = env._queue
            if queue.__class__ is list:
                heappush(queue, (when, _NORMAL_KEY + eid, self))
            else:
                queue.push(when, _NORMAL_KEY + eid, self)
        else:
            # Zero delay — or one too small for the clock to represent
            # the advance; either way the event fires at the current
            # instant in id order, which is exactly the FIFO's order.
            self._key = eid
            env._fifo.append(self)


# Pre-bound allocators for the hot factories below (skips one
# class-attribute lookup per created event).
_EVENT_NEW = Event.__new__
_TIMEOUT_NEW = Timeout.__new__


class MacroJump(Event):
    """Trace marker for one coarse fast-forward advance (macro step).

    Emitted by :meth:`Environment.macro_advance` straight to the event
    bus — never enqueued, so it consumes no sequence id and cannot
    perturb the micro event order.  Its value is the virtual seconds
    skipped; the micro clock (``env.now``) is unchanged, so trace
    timestamps stay monotone by construction.
    """

    __slots__ = ("delta",)

    def __init__(self, env: "Environment", delta: float):
        self.env = env
        self.callbacks = None  # born processed: nothing may wait on it
        self._ok = True
        self._value = float(delta)
        self._defused = False
        self.delta = float(delta)


class Initialize(Event):
    """Internal event used to start a newly created process."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = process
        self._ok = True
        self._value = None
        self._defused = False
        self.process = process
        env._eid = eid = env._eid + 1
        self._key = eid
        env._urgent.append(self)


class Process(Event):
    """A running process wrapping a generator of events.

    The process is itself an event: it succeeds with the generator's return
    value, or fails with the exception that escaped the generator.  It is
    also its own resume callback (see ``__call__``), so waiting on an
    event appends the process object instead of a bound method.
    """

    __slots__ = ("_generator", "_send", "_target", "_pid")

    def __init__(self, env: "Environment", generator: Generator):
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value = _PENDING
        self._ok = None
        # Written here (not at the crash site) so a crashing process can
        # be dispatched through the failed-event check.
        self._defused = False
        self._generator = generator
        self._send = generator.send
        self._target: Optional[Event] = None
        env._pid = self._pid = env._pid + 1
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env._active_process:
            raise SimulationError("a process cannot interrupt itself")
        Interruption(self, cause)

    # -- stepping ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # NOTE: Environment.run() inlines this method for the common
        # single-waiter dispatch; any semantic change here must be
        # mirrored there (the golden traces will catch divergence).
        env = self.env
        env._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self._target = None
                env._eid = eid = env._eid + 1
                self._key = eid
                env._fifo.append(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._target = None
                env._eid = eid = env._eid + 1
                self._key = eid
                env._fifo.append(self)
                break

            # A valid yield is an object with a ``callbacks`` slot (an
            # Event); anything else is a structural error delivered as a
            # failed event thrown into the generator.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if callbacks is not None:
                # Event still pending or scheduled: wait for it.
                if callbacks.__class__ is tuple:
                    next_event.callbacks = self
                elif callbacks.__class__ is list:
                    callbacks.append(self)
                else:
                    next_event.callbacks = [callbacks, self]
                self._target = next_event
                break
            # Event already processed: loop immediately with its value.
            event = next_event

        env._active_process = None

    # A process doubles as its own resume callback, so waiting appends
    # the process object itself instead of materializing a bound method.
    __call__ = _resume


class Interruption(Event):
    """Helper event that delivers an :class:`Interrupt` to a process."""

    __slots__ = ("process",)

    def __init__(self, process: Process, cause: Any):
        env = process.env
        self.env = env
        self.callbacks = self._deliver
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        env._eid = eid = env._eid + 1
        self._key = eid
        env._urgent.append(self)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if not process.is_alive:
            return
        # Detach the process from whatever it is currently waiting on so the
        # original event does not also resume it later.
        target = process._target
        if target is not None:
            callbacks = target.callbacks
            if callbacks is process:
                target.callbacks = _NO_CALLBACKS
            elif callbacks.__class__ is list:
                try:
                    callbacks.remove(process)
                except ValueError:
                    pass
        process._resume(self)


class ConditionEvent(Event):
    """Base class for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("events", "_completed")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._completed: list[Event] = []
        if not self.events:
            self.succeed({})
            return
        on_child = self._on_child
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            callbacks = event.callbacks
            if callbacks is None:
                on_child(event)
            elif callbacks.__class__ is tuple:
                event.callbacks = on_child
            elif callbacks.__class__ is list:
                callbacks.append(on_child)
            else:
                event.callbacks = [callbacks, on_child]

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        completed = self._completed
        completed.append(event)
        if self._satisfied():
            self.succeed({e: e._value for e in completed})

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Succeeds once every child event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._completed) == len(self.events)


class AnyOf(ConditionEvent):
    """Succeeds as soon as any child event succeeds."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._completed) >= 1


class Environment:
    """The simulation environment: clock, event queues, and run loop.

    Scheduling uses three structures, together totally ordered by
    ``(time, priority, sequence-id)`` exactly as a single heap of
    ``(time, priority, eid, event)`` tuples would be:

    * ``_queue`` — events scheduled with a positive delay, as either a
      plain ``heapq`` list of ``(time, key, event)`` tuples (the
      default) or an :class:`~repro.sim.heaps.ArrayHeap`
      (``heap="array"``);
    * ``_urgent`` / ``_fifo`` — deques of events scheduled at the
      *current* time (zero delay), each carrying its packed key in
      ``_key``.  Ids increase monotonically, so each deque is already
      sorted and a zero-delay event costs O(1) instead of O(log n).

    Invariants the pop order relies on: nothing can be scheduled into
    the past, and the clock only advances when both deques are empty —
    so every deque entry is at the current time and every heap entry is
    at the current time or later.  Same-time ties are arbitrated purely
    through the packed keys.
    """

    __slots__ = ("_now", "_queue", "_fifo", "_urgent", "_eid", "_pid",
                 "_active_process", "_publish", "_bus", "_virtual_offset")

    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0, heap: str = "tuple"):
        self._now = float(initial_time)
        if heap == "tuple":
            self._queue: Any = []
        elif heap == "array":
            from repro.sim.heaps import ArrayHeap
            self._queue = ArrayHeap()
        else:
            raise SimulationError(
                f"unknown heap implementation {heap!r}; expected 'tuple' or 'array'")
        self._fifo: deque[Event] = deque()
        self._urgent: deque[Event] = deque()
        self._eid = 0
        self._pid = 0
        self._active_process: Optional[Process] = None
        # The compiled publish hook of the event bus: None while nobody
        # subscribes, otherwise a ``hook(now, event)`` callable.  Managed
        # exclusively by EventBus._compile(); the run loop hoists it once
        # on entry, so subscribe *before* the run you want to observe.
        self._publish: Optional[Callable[[float, Event], None]] = None
        self._bus = None
        # Virtual seconds credited by macro_advance(); the micro clock
        # (_now) never jumps, so in-flight process-local timestamps can
        # never straddle a discontinuity.
        self._virtual_offset = 0.0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention in this repo)."""
        return self._now

    @property
    def heap_kind(self) -> str:
        """Which heap implementation this environment was built with."""
        return "tuple" if self._queue.__class__ is list else "array"

    @property
    def bus(self):
        """The environment's :class:`~repro.sim.bus.EventBus` (created lazily)."""
        bus = self._bus
        if bus is None:
            from repro.sim.bus import EventBus
            self._bus = bus = EventBus(self)
        return bus

    @property
    def virtual_offset(self) -> float:
        """Total virtual seconds credited by :meth:`macro_advance`."""
        return self._virtual_offset

    @property
    def virtual_now(self) -> float:
        """Micro clock plus the accumulated macro-jump credit.

        This is the wall-clock position a full-fidelity run would have
        reached; ``now`` itself stays the micro clock so every scheduled
        event and in-flight duration remains consistent.
        """
        return self._now + self._virtual_offset

    def macro_advance(self, delta: float) -> "MacroJump":
        """Credit ``delta`` virtual seconds in one coarse macro jump.

        The fast-forward layer (:mod:`repro.sim.fastforward`) calls this
        after synthesizing the measurement counters the skipped interval
        would have accumulated.  The micro clock and event queues are
        untouched — the jump is a pure accounting overlay — but the jump
        is made observable: a :class:`MacroJump` event is published on
        the event bus at the current micro time.
        """
        if not delta > 0:
            raise SimulationError(f"macro_advance delta must be positive, "
                                  f"got {delta!r}")
        self._virtual_offset += float(delta)
        jump = MacroJump(self, delta)
        publish = self._publish
        if publish is not None:
            publish(self._now, jump)
        return jump

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        event = _EVENT_NEW(Event)
        event.env = self
        event.callbacks = _NO_CALLBACKS
        event._value = _PENDING
        event._ok = None
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        timeout = _TIMEOUT_NEW(Timeout)
        timeout.env = self
        timeout.callbacks = _NO_CALLBACKS
        timeout._ok = True
        timeout._value = value
        timeout.delay = delay = delay if delay.__class__ is float else float(delay)
        self._eid = eid = self._eid + 1
        now = self._now
        when = now + delay
        if when > now:
            queue = self._queue
            if queue.__class__ is list:
                heappush(queue, (when, _NORMAL_KEY + eid, timeout))
            else:
                queue.push(when, _NORMAL_KEY + eid, timeout)
        else:
            # Zero delay, or one the clock cannot represent: fires at the
            # current instant in id order — the FIFO's order.
            timeout._key = eid
            self._fifo.append(timeout)
        return timeout

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._eid = eid = self._eid + 1
        now = self._now
        when = now + delay
        if when > now:
            queue = self._queue
            if queue.__class__ is list:
                heappush(queue, (when, (priority << _KEY_SHIFT) + eid, event))
            else:
                queue.push(when, (priority << _KEY_SHIFT) + eid, event)
        elif priority == 1:
            event._key = eid
            self._fifo.append(event)
        elif priority == 0:
            event._key = eid
            self._urgent.append(event)
        else:
            # Unusual priorities take the heap at the current time; the
            # packed key keeps them ordered after urgent/normal peers.
            # (This is the only way the heap ever holds an entry at the
            # current instant — the batched drain in run() relies on it.)
            queue = self._queue
            if queue.__class__ is list:
                heappush(queue, (now, (priority << _KEY_SHIFT) + eid, event))
            else:
                queue.push(now, (priority << _KEY_SHIFT) + eid, event)

    def _pop_next(self) -> Event:
        """Remove and return the next event in (time, priority, id) order.

        Advances the clock when the event comes off the heap at a later
        time.  Callers must ensure at least one event is pending.
        """
        queue = self._queue
        if queue.__class__ is not list:
            return self._pop_next_array()
        now = self._now
        urgent = self._urgent
        if urgent:
            if queue and queue[0][0] <= now and queue[0][1] < urgent[0]._key:
                return heappop(queue)[2]
            return urgent.popleft()
        fifo = self._fifo
        if fifo:
            if (queue and queue[0][0] <= now
                    and queue[0][1] < _NORMAL_KEY + fifo[0]._key):
                return heappop(queue)[2]
            return fifo.popleft()
        when, _key, event = heappop(queue)
        self._now = when
        return event

    def _pop_next_array(self) -> Event:
        """:meth:`_pop_next` against the :class:`ArrayHeap` layout."""
        queue = self._queue
        now = self._now
        urgent = self._urgent
        if urgent:
            if queue and queue.peek_when() <= now and queue.peek_key() < urgent[0]._key:
                return queue.pop()
            return urgent.popleft()
        fifo = self._fifo
        if fifo:
            if (queue and queue.peek_when() <= now
                    and queue.peek_key() < _NORMAL_KEY + fifo[0]._key):
                return queue.pop()
            return fifo.popleft()
        self._now = queue.peek_when()
        return queue.pop()

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if nothing is pending."""
        if self._urgent or self._fifo:
            return self._now
        queue = self._queue
        if not queue:
            return inf
        return queue[0][0] if queue.__class__ is list else queue.peek_when()

    def step(self) -> None:
        """Process the next scheduled event."""
        if not (self._urgent or self._fifo or self._queue):
            raise SimulationError("nothing left to simulate")
        event = self._pop_next()
        publish = self._publish
        if publish is not None:
            publish(self._now, event)
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks is not None:
            if callbacks.__class__ is list:
                for callback in callbacks:
                    callback(event)
            elif callbacks.__class__ is not tuple:
                callbacks(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock reaches it), an event
        (run until it fires, returning its value), or None (run until the
        event queue drains).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        horizon = inf
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time!r} is in the past (now={self._now!r})"
                )

        if self._queue.__class__ is not list:
            return self._run_reference(stop_event, stop_time, horizon)

        # This loop is the single hottest code path of the repository, so
        # it inlines step()/_pop_next() and — for the dominant case of an
        # event with exactly one waiting process — Process._resume().
        # The inlined resume must stay semantically identical to
        # Process._resume, and the batched FIFO drain below must stay
        # observably identical to this generic pop order; the golden
        # traces pin both down.
        queue = self._queue
        fifo = self._fifo
        urgent = self._urgent
        publish = self._publish
        pop = heappop
        fifo_pop = fifo.popleft
        fifo_append = fifo.append
        now = self._now
        check_stop = stop_event is not None

        while True:
            if check_stop and stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value

            # -- pop the next event in (time, priority, id) order ---------
            if urgent:
                if queue and queue[0][0] <= now and queue[0][1] < urgent[0]._key:
                    event = pop(queue)[2]
                else:
                    event = urgent.popleft()
            elif fifo:
                if queue and queue[0][0] <= now:
                    if queue[0][1] < _NORMAL_KEY + fifo[0]._key:
                        event = pop(queue)[2]
                    else:
                        event = fifo_pop()
                else:
                    # -- batched drain of the zero-delay FIFO -------------
                    # Nothing on the heap can fire at this instant, and
                    # nothing dispatch does can change that: positive
                    # delays land strictly in the future (sub-resolution
                    # delays are routed to the deques by the factories
                    # and _schedule), and a zero-delay schedule with an
                    # exotic priority >= 2 — the one way the heap gains a
                    # current-instant entry — sorts after every normal
                    # event at this instant anyway.  Only an urgent
                    # arrival or the stop event firing ends the drain
                    # early, so only those are re-checked per event.
                    while True:
                        event = fifo_pop()
                        if publish is not None:
                            publish(now, event)
                        process = event.callbacks
                        event.callbacks = None
                        if process is not None:
                            if process.__class__ is Process:
                                # Inlined Process._resume(event); identical
                                # to the copy in the generic path below.
                                self._active_process = process
                                send = process._send
                                resumed = event
                                while True:
                                    try:
                                        if resumed._ok:
                                            next_event = send(resumed._value)
                                        else:
                                            resumed._defused = True
                                            next_event = process._generator.throw(
                                                resumed._value)
                                    except StopIteration as stop:
                                        process._ok = True
                                        process._value = stop.value
                                        process._target = None
                                        self._eid = eid = self._eid + 1
                                        process._key = eid
                                        fifo_append(process)
                                        break
                                    except BaseException as exc:
                                        process._ok = False
                                        process._value = exc
                                        process._target = None
                                        self._eid = eid = self._eid + 1
                                        process._key = eid
                                        fifo_append(process)
                                        break

                                    try:
                                        cbs = next_event.callbacks
                                    except AttributeError:
                                        exc = SimulationError(
                                            f"process yielded a non-event: "
                                            f"{next_event!r}")
                                        resumed = Event(self)
                                        resumed._ok = False
                                        resumed._value = exc
                                        continue
                                    if cbs is not None:
                                        if cbs.__class__ is tuple:
                                            next_event.callbacks = process
                                        elif cbs.__class__ is list:
                                            cbs.append(process)
                                        else:
                                            next_event.callbacks = [cbs, process]
                                        process._target = next_event
                                        break
                                    resumed = next_event

                                self._active_process = None
                            else:
                                cls = process.__class__
                                if cls is list:
                                    for callback in process:
                                        callback(event)
                                elif cls is not tuple:
                                    process(event)
                        if not event._ok and not event._defused:
                            raise event._value

                        if not fifo or urgent:
                            break
                        if check_stop and stop_event.callbacks is None:
                            break
                    continue
            elif queue:
                entry = pop(queue)
                when = entry[0]
                if when > horizon:
                    # Cold: ends the run.  Restoring the entry may change
                    # the heap's internal arrangement but not its pop
                    # order — keys are unique, so (time, key) is total.
                    heappush(queue, entry)
                    self._now = stop_time
                    return None
                event = entry[2]
                self._now = now = when
            else:
                if stop_event is not None:
                    raise SimulationError(
                        "event queue drained before the stop event fired")
                if stop_time is not None:
                    self._now = stop_time
                return None

            if publish is not None:
                publish(now, event)

            # -- dispatch -------------------------------------------------
            process = event.callbacks
            event.callbacks = None
            if process is not None:
                if process.__class__ is Process:
                    # Inlined Process._resume(event) — the dominant case
                    # of exactly one waiting process.
                    self._active_process = process
                    send = process._send
                    resumed = event
                    while True:
                        try:
                            if resumed._ok:
                                next_event = send(resumed._value)
                            else:
                                resumed._defused = True
                                next_event = process._generator.throw(
                                    resumed._value)
                        except StopIteration as stop:
                            process._ok = True
                            process._value = stop.value
                            process._target = None
                            self._eid = eid = self._eid + 1
                            process._key = eid
                            fifo_append(process)
                            break
                        except BaseException as exc:
                            process._ok = False
                            process._value = exc
                            process._target = None
                            self._eid = eid = self._eid + 1
                            process._key = eid
                            fifo_append(process)
                            break

                        try:
                            cbs = next_event.callbacks
                        except AttributeError:
                            exc = SimulationError(
                                f"process yielded a non-event: "
                                f"{next_event!r}")
                            resumed = Event(self)
                            resumed._ok = False
                            resumed._value = exc
                            continue
                        if cbs is not None:
                            if cbs.__class__ is tuple:
                                next_event.callbacks = process
                            elif cbs.__class__ is list:
                                cbs.append(process)
                            else:
                                next_event.callbacks = [cbs, process]
                            process._target = next_event
                            break
                        resumed = next_event

                    self._active_process = None
                else:
                    cls = process.__class__
                    if cls is list:
                        for callback in process:
                            callback(event)
                    elif cls is not tuple:
                        process(event)
            if not event._ok and not event._defused:
                raise event._value

    def _run_reference(self, stop_event: Optional[Event],
                       stop_time: Optional[float], horizon: float) -> Any:
        """Reference run loop: generic pop + dispatch, no inlining.

        The direct transcription of the semantics the optimized loop in
        :meth:`run` must preserve.  Serves the array-heap mode (where the
        per-pop cost dwarfs any dispatch inlining) and doubles as the
        executable specification the golden traces compare both loops
        against.
        """
        publish = self._publish
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            if not (self._urgent or self._fifo):
                queue = self._queue
                if not queue:
                    if stop_event is not None:
                        raise SimulationError(
                            "event queue drained before the stop event fired")
                    if stop_time is not None:
                        self._now = stop_time
                    return None
                when = queue[0][0] if queue.__class__ is list else queue.peek_when()
                if when > horizon:
                    self._now = stop_time
                    return None
            event = self._pop_next()
            if publish is not None:
                publish(self._now, event)
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks is not None:
                if callbacks.__class__ is list:
                    for callback in callbacks:
                        callback(event)
                elif callbacks.__class__ is not tuple:
                    callbacks(event)
            if not event._ok and not event._defused:
                raise event._value
