"""Alternative priority-queue layouts for the simulation kernel.

The default :class:`~repro.sim.engine.Environment` heap is a plain list
of ``(time, key, event)`` tuples driven by the C-accelerated ``heapq``
module.  :class:`ArrayHeap` is the *array-backed* alternative selected
with ``Environment(heap="array")``: the same binary-heap ordering kept
in three parallel flat arrays (times, packed tie-break keys, events)
with hand-written sift loops.

Why keep a pure-Python heap that cannot beat C ``heapq``?  Because the
parallel-array layout is the shape a native accelerator wants: the
``times``/``keys`` arrays are homogeneous scalars that a future C/cffi
(or numpy) sift can operate on without touching the ``events`` objects,
whereas ``heapq``'s tuple entries pin every comparison to boxed Python
objects.  Keeping the layout live — selectable at construction, covered
by the same golden traces and property tests as the default kernel —
means the accelerator seam stays proven-correct instead of bit-rotting
in a branch.

Ordering contract: entries pop in strictly increasing ``(time, key)``
order.  Keys are unique (they embed the environment's monotonically
increasing sequence id), so the order is total and both heap
implementations are observably identical — byte-identical golden
traces, not just "equivalent".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Event

__all__ = ["ArrayHeap"]


class ArrayHeap:
    """A binary min-heap over parallel flat arrays, ordered by (time, key).

    The API is the minimal surface the kernel needs: ``push``, ``pop``,
    head peeks, and truthiness/length.  ``pop`` returns only the event;
    callers that need the head timestamp read :meth:`peek_when` first
    (the kernel already does this to decide whether the clock advances).
    """

    __slots__ = ("_times", "_keys", "_events")

    def __init__(self) -> None:
        self._times: list[float] = []
        self._keys: list[int] = []
        self._events: list[Event] = []

    def __bool__(self) -> bool:
        return bool(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def peek_when(self) -> float:
        """Timestamp of the heap head.  The heap must be non-empty."""
        return self._times[0]

    def peek_key(self) -> int:
        """Packed tie-break key of the heap head.  Must be non-empty."""
        return self._keys[0]

    def push(self, when: float, key: int, event: Event) -> None:
        """Insert ``event`` scheduled at ``when`` with tie-break ``key``."""
        times = self._times
        keys = self._keys
        events = self._events
        times.append(when)
        keys.append(key)
        events.append(event)
        # Sift the new tail toward the root (heapq's _siftdown).
        pos = len(times) - 1
        while pos:
            parent = (pos - 1) >> 1
            parent_when = times[parent]
            if when < parent_when or (when == parent_when and key < keys[parent]):
                times[pos] = parent_when
                keys[pos] = keys[parent]
                events[pos] = events[parent]
                pos = parent
            else:
                break
        times[pos] = when
        keys[pos] = key
        events[pos] = event

    def pop(self) -> Event:
        """Remove and return the event with the smallest (time, key)."""
        times = self._times
        keys = self._keys
        events = self._events
        head = events[0]
        tail_when = times.pop()
        tail_key = keys.pop()
        tail_event = events.pop()
        size = len(times)
        if size:
            # Move the old tail to the root and bubble it down past any
            # smaller child (classic top-down sift with two-child compare).
            pos = 0
            child = 1
            while child < size:
                right = child + 1
                if right < size:
                    right_when = times[right]
                    child_when = times[child]
                    if right_when < child_when or (
                        right_when == child_when and keys[right] < keys[child]
                    ):
                        child = right
                child_when = times[child]
                if child_when < tail_when or (
                    child_when == tail_when and keys[child] < tail_key
                ):
                    times[pos] = child_when
                    keys[pos] = keys[child]
                    events[pos] = events[child]
                    pos = child
                    child = 2 * pos + 1
                else:
                    break
            times[pos] = tail_when
            keys[pos] = tail_key
            events[pos] = tail_event
        return head
