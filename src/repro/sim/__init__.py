"""Deterministic discrete-event simulation substrate.

The rest of the repository models the cloud 3D-rendering stack (CPU, GPU,
PCIe, network, VNC proxies, applications) as processes running on top of
this engine.  The engine is intentionally small and self-contained: an
event heap, generator-based processes, timeouts, and a handful of shared
resource primitives (capacity resources, stores, and token containers).

The public surface mirrors the familiar process-based DES style::

    env = Environment()

    def worker(env, machine):
        with machine.request() as req:
            yield req
            yield env.timeout(2.5)

    env.process(worker(env, Resource(env, capacity=1)))
    env.run(until=100.0)
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import (
    Container,
    PreemptionError,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.randomness import RandomStreams, StreamRandom

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PreemptionError",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "StreamRandom",
    "Timeout",
]
