"""Deterministic discrete-event simulation substrate.

The rest of the repository models the cloud 3D-rendering stack (CPU, GPU,
PCIe, network, VNC proxies, applications) as processes running on top of
this engine.  The engine is intentionally small and self-contained: an
event heap, generator-based processes, timeouts, and a handful of shared
resource primitives (capacity resources, stores, and token containers).

The public surface mirrors the familiar process-based DES style::

    env = Environment()

    def worker(env, machine):
        with machine.request() as req:
            yield req
            yield env.timeout(2.5)

    env.process(worker(env, Resource(env, capacity=1)))
    env.run(until=100.0)

Determinism contract
--------------------

Every experiment result in this repository — and the content-addressed
result cache keyed on scenario hashes — relies on the kernel being a
pure function of its inputs.  Concretely, the engine guarantees:

1. **Total event order.**  Pending events are processed in strict
   ``(time, priority, sequence-id)`` order, where the sequence id is
   assigned at scheduling time and increments by exactly one per
   scheduled event.  Ties at the same timestamp are FIFO within a
   priority class, and urgent events (process initialization, interrupt
   delivery) precede normal ones.
2. **No ambient nondeterminism.**  The kernel consults no wall clock,
   no ``id()``/``hash()`` of user objects, and no global state; all
   randomness in the models flows through the seeded
   :class:`~repro.sim.randomness.RandomStreams`.
3. **Replayability.**  The same model code, seeds and run horizon
   produce the same event sequence on any machine, in any process, on
   any kernel version honoring 1–2.

The contract is machine-checked: :class:`~repro.sim.trace.TraceRecorder`
snapshots a run's processed-event sequence (time, event type, process
id, value digest) as text, and the golden traces committed under
``tests/golden/`` pin real scenario workloads byte-for-byte across
kernel rewrites and executor backends.  Re-record them only after an
*intentional* semantic change, via
``python -m repro.experiments trace --update``.

Performance-sensitive kernel changes must keep the golden traces
byte-identical; the micro-benchmark in
``benchmarks/test_sim_core_speed.py`` guards throughput against the
committed baseline in ``benchmarks/BENCH_sim_core.json``.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import (
    Container,
    PreemptionError,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.randomness import RandomStreams, StreamRandom
from repro.sim.trace import TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PreemptionError",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "StreamRandom",
    "Timeout",
    "TraceRecorder",
]
