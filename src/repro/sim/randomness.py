"""Seeded random-number streams for reproducible experiments.

Every stochastic component (application frame complexity, human reaction
times, network jitter, container overhead spikes, ...) draws from its own
named stream so that adding a new component never perturbs the draws seen
by existing ones.  Streams are derived deterministically from a single
experiment seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams", "StreamRandom"]


class StreamRandom:
    """A thin convenience wrapper over ``numpy.random.Generator``.

    Adds the distributions the simulator actually uses (truncated normal,
    log-normal parameterized by mean/CV, bounded jitter) so call sites stay
    readable.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    # -- pass-throughs ------------------------------------------------------
    def random(self) -> float:
        return float(self._rng.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self._rng.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        return int(self._rng.integers(low, high))

    def normal(self, mean: float, std: float) -> float:
        return float(self._rng.normal(mean, std))

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def choice(self, options, p=None):
        index = self._rng.choice(len(options), p=p)
        return options[int(index)]

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def standard_normal(self, size):
        return self._rng.standard_normal(size)

    # -- derived distributions ----------------------------------------------
    def truncated_normal(self, mean: float, std: float,
                         low: float = 0.0, high: float = float("inf")) -> float:
        """A normal draw clipped to ``[low, high]``.

        Clipping (rather than rejection sampling) keeps the draw count per
        call constant, which keeps streams aligned across configurations.
        """
        return float(np.clip(self._rng.normal(mean, std), low, high))

    def lognormal_mean_cv(self, mean: float, cv: float) -> float:
        """Log-normal draw parameterized by mean and coefficient of variation."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv <= 0:
            return float(mean)
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self._rng.lognormal(mu, np.sqrt(sigma2)))

    def jitter(self, value: float, fraction: float) -> float:
        """``value`` scaled by a uniform factor in ``[1 - f, 1 + f]``."""
        if fraction <= 0:
            return value
        return value * self.uniform(1.0 - fraction, 1.0 + fraction)

    def bernoulli(self, probability: float) -> bool:
        return self._rng.random() < probability


class RandomStreams:
    """A family of independent named random streams under one master seed."""

    def __init__(self, seed: int = 0):
        self.master_seed = int(seed)
        self._streams: dict[str, StreamRandom] = {}

    def stream(self, name: str) -> StreamRandom:
        """Return (creating on first use) the stream with the given name."""
        if name not in self._streams:
            self._streams[name] = StreamRandom(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        return sorted(self._streams)
