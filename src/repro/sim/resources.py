"""Shared-resource primitives for the simulation engine.

These are the building blocks used to model contention: GPUs and NICs are
``Resource`` instances, render/compression queues are ``Store`` instances,
and bandwidth-style quantities are ``Container`` instances.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = [
    "Container",
    "PreemptionError",
    "PriorityResource",
    "Request",
    "Release",
    "Resource",
    "Store",
]


class PreemptionError(Exception):
    """Raised inside a process whose resource slot was preempted."""

    def __init__(self, by: Any, usage_since: float):
        super().__init__(f"preempted by {by!r}")
        self.by = by
        self.usage_since = usage_since


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.usage_since: Optional[float] = None
        self.process = resource.env.active_process
        resource._add_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot if held, or withdraw the request if queued."""
        self.resource.release(self)


class Release(Event):
    """Event representing the (immediate) release of a resource slot."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.request = request
        self.succeed()


class Resource:
    """A capacity-limited resource with FIFO queueing.

    ``capacity`` slots may be held at once; further requests queue in FIFO
    order.  ``users`` exposes the currently granted requests and ``queue``
    the waiting ones, which the hardware models use to compute occupancy
    and contention factors.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    # -- introspection -----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def occupancy(self) -> float:
        """Fraction of capacity in use (can exceed 1.0 counting waiters)."""
        return (len(self.users) + len(self.queue)) / self.capacity

    # -- request / release ---------------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)
        return Release(self, request)

    # -- internals -----------------------------------------------------------
    def _add_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _grant(self, request: Request) -> None:
        request.usage_since = self.env.now
        self.users.append(request)
        request.succeed(self)

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self._pop_next()
            self._grant(nxt)

    def _pop_next(self) -> Request:
        return self.queue.pop(0)


class PriorityResource(Resource):
    """Resource whose queue is ordered by ``priority`` (lower is sooner)."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: list[tuple[float, int, Request]] = []
        self._counter = 0

    def _enqueue(self, request: Request) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (request.priority, self._counter, request))
        self.queue = [entry[2] for entry in sorted(self._heap)]

    def _pop_next(self) -> Request:
        _prio, _count, request = heapq.heappop(self._heap)
        self.queue = [entry[2] for entry in sorted(self._heap)]
        return request

    def release(self, request: Request) -> Release:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._heap = [e for e in self._heap if e[2] is not request]
            heapq.heapify(self._heap)
            self.queue = [entry[2] for entry in sorted(self._heap)]
        return Release(self, request)


class StorePut(Event):
    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """An unbounded-or-bounded FIFO buffer of items between processes.

    ``put`` events succeed once the item is accepted (immediately unless
    the store is full); ``get`` events succeed with the oldest item once
    one is available.  This models the hand-off queues between pipeline
    stages (application → interposer → VNC proxy → network).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._get_queue and self.items:
                get = self._get_queue.pop(0)
                get.succeed(self.items.pop(0))
                progressed = True


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A reservoir of continuous "stuff" (bytes, tokens, joules).

    Used for bandwidth budgeting: producers ``put`` and consumers ``get``
    amounts, blocking when the level would go out of bounds.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise SimulationError(f"container capacity must be positive, got {capacity}")
        if not 0.0 <= init <= capacity:
            raise SimulationError(f"initial level {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self.level = float(init)
        self._put_queue: list[ContainerPut] = []
        self._get_queue: list[ContainerGet] = []

    def put(self, amount: float) -> ContainerPut:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self.level + put.amount <= self.capacity:
                    self._put_queue.pop(0)
                    self.level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self.level >= get.amount:
                    self._get_queue.pop(0)
                    self.level -= get.amount
                    get.succeed(get.amount)
                    progressed = True
