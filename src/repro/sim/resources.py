"""Shared-resource primitives for the simulation engine.

These are the building blocks used to model contention: GPUs and NICs are
``Resource`` instances, render/compression queues are ``Store`` instances,
and bandwidth-style quantities are ``Container`` instances.

Like :mod:`repro.sim.engine`, the request/put/get event classes sit on the
hot path of every session pipeline, so they declare ``__slots__`` and the
FIFO wait queues are ``collections.deque`` (O(1) popleft) rather than
lists.  Observable grant/wakeup order is unchanged and pinned by the
golden traces in ``tests/golden/``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.sim.engine import (
    _NO_CALLBACKS,
    _PENDING,
    Environment,
    Event,
    SimulationError,
)

# The request/put/get paths below inline Event construction and
# Event.succeed() (including the scheduling append) to keep the per-call
# frame count minimal; each inlined block mirrors the reference methods
# in repro.sim.engine exactly.

__all__ = [
    "Container",
    "PreemptionError",
    "PriorityResource",
    "Request",
    "Release",
    "Resource",
    "Store",
]


class PreemptionError(Exception):
    """Raised inside a process whose resource slot was preempted."""

    def __init__(self, by: Any, usage_since: float):
        super().__init__(f"preempted by {by!r}")
        self.by = by
        self.usage_since = usage_since


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "priority", "usage_since", "process")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.usage_since: Optional[float] = None
        self.process = resource.env.active_process
        resource._add_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # == cancel(), inlined: __exit__ runs once per held slot.
        self.resource.release(self)

    def cancel(self) -> None:
        """Release the slot if held, or withdraw the request if queued."""
        self.resource.release(self)


class Release(Event):
    """Event representing the (immediate) release of a resource slot."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request):
        env = resource.env
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._ok = True
        self._value = None
        self.request = request
        env._eid = eid = env._eid + 1
        self._key = eid
        env._fifo.append(self)


# Pre-bound allocators mirroring the engine's hot-factory pattern.
_RELEASE_NEW = Release.__new__
_REQUEST_NEW = Request.__new__


class Resource:
    """A capacity-limited resource with FIFO queueing.

    ``capacity`` slots may be held at once; further requests queue in FIFO
    order.  ``users`` exposes the currently granted requests and ``queue``
    the waiting ones, which the hardware models use to compute occupancy
    and contention factors.
    """

    __slots__ = ("env", "capacity", "users", "queue", "_fast_request")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()
        # The request() fast path hardcodes the base-class grant/admit
        # decision; subclasses that override those hooks must go through
        # the reference Request(...) path instead.
        cls = type(self)
        self._fast_request = (cls._add_request is Resource._add_request
                              and cls._grant is Resource._grant)

    # -- introspection -----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def occupancy(self) -> float:
        """Fraction of capacity in use (can exceed 1.0 counting waiters)."""
        return (len(self.users) + len(self.queue)) / self.capacity

    # -- request / release ---------------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        if not self._fast_request:
            return Request(self, priority)
        env = self.env
        request = _REQUEST_NEW(Request)
        request.env = env
        request.callbacks = _NO_CALLBACKS
        request.resource = self
        request.priority = priority
        request.process = env._active_process
        users = self.users
        if len(users) < self.capacity:
            # Fast path: grant immediately (== _grant + succeed).
            request.usage_since = env._now
            users.append(request)
            request._ok = True
            request._value = self
            env._eid = eid = env._eid + 1
            request._key = eid
            env._fifo.append(request)
        else:
            request.usage_since = None
            request._ok = None
            request._value = _PENDING
            self._enqueue(request)
        return request

    def release(self, request: Request) -> Release:
        # One list scan instead of a membership test plus a remove.
        users = self.users
        try:
            users.remove(request)
        except ValueError:
            self._withdraw(request)
        else:
            if self.queue and len(users) < self.capacity:
                self._grant_next()
        # == Release(self, request), inlined.
        env = self.env
        release = _RELEASE_NEW(Release)
        release.env = env
        release.callbacks = _NO_CALLBACKS
        release._ok = True
        release._value = None
        release.request = request
        env._eid = eid = env._eid + 1
        release._key = eid
        env._fifo.append(release)
        return release

    # -- internals -----------------------------------------------------------
    def _add_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant(self, request: Request) -> None:
        request.usage_since = self.env.now
        self.users.append(request)
        request.succeed(self)

    def _grant_next(self) -> None:
        if not self._fast_request:
            while self.queue and len(self.users) < self.capacity:
                self._grant(self._pop_next())
            return
        env = self.env
        users = self.users
        capacity = self.capacity
        while self.queue and len(users) < capacity:
            request = self._pop_next()
            # == _grant + succeed, inlined.
            request.usage_since = env._now
            users.append(request)
            request._ok = True
            request._value = self
            env._eid = eid = env._eid + 1
            request._key = eid
            env._fifo.append(request)

    def _pop_next(self) -> Request:
        return self.queue.popleft()


class PriorityResource(Resource):
    """Resource whose queue is ordered by ``priority`` (lower is sooner)."""

    __slots__ = ("_heap", "_counter")

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: list[tuple[float, int, Request]] = []
        self._counter = 0

    def _enqueue(self, request: Request) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (request.priority, self._counter, request))
        self._sync_queue()

    def _pop_next(self) -> Request:
        _prio, _count, request = heapq.heappop(self._heap)
        self._sync_queue()
        return request

    def _withdraw(self, request: Request) -> None:
        self._heap = [e for e in self._heap if e[2] is not request]
        heapq.heapify(self._heap)
        self._sync_queue()

    def _sync_queue(self) -> None:
        self.queue = deque(entry[2] for entry in sorted(self._heap))


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


_STOREPUT_NEW = StorePut.__new__
_STOREGET_NEW = StoreGet.__new__


class Store:
    """An unbounded-or-bounded FIFO buffer of items between processes.

    ``put`` events succeed once the item is accepted (immediately unless
    the store is full); ``get`` events succeed with the oldest item once
    one is available.  This models the hand-off queues between pipeline
    stages (application → interposer → VNC proxy → network).
    """

    __slots__ = ("env", "capacity", "items", "_put_queue", "_get_queue")

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        env = self.env
        put = _STOREPUT_NEW(StorePut)
        put.env = env
        put.callbacks = _NO_CALLBACKS
        put.item = item
        items = self.items
        if self._put_queue or len(items) >= self.capacity:
            put._value = _PENDING
            put._ok = None
            self._put_queue.append(put)
            self._trigger()
            return put
        # Fast path: accepted immediately (== one _trigger pass; the
        # succeed is inlined).  At most one waiting getter is then
        # served — getters only ever wait while the buffer is empty.
        items.append(item)
        put._ok = True
        put._value = None
        env._eid = eid = env._eid + 1
        put._key = eid
        env._fifo.append(put)
        gets = self._get_queue
        if gets:  # items is non-empty: the put above just appended
            gets.popleft().succeed(items.popleft())
        return put

    def get(self) -> StoreGet:
        env = self.env
        get = _STOREGET_NEW(StoreGet)
        get.env = env
        get.callbacks = _NO_CALLBACKS
        items = self.items
        if self._get_queue or not items:
            get._value = _PENDING
            get._ok = None
            self._get_queue.append(get)
            self._trigger()
            return get
        # Fast path: an item is ready (== one _trigger pass; the succeed
        # is inlined).  The freed slot then admits at most one waiting
        # putter — putters only ever wait while the buffer is full.
        get._ok = True
        get._value = items.popleft()
        env._eid = eid = env._eid + 1
        get._key = eid
        env._fifo.append(get)
        puts = self._put_queue
        if puts:  # the popleft above freed a slot, so capacity allows one put
            put = puts.popleft()
            items.append(put.item)
            put.succeed()
        return get

    def _trigger(self) -> None:
        items = self.items
        put_queue = self._put_queue
        get_queue = self._get_queue
        capacity = self.capacity
        progressed = True
        while progressed:
            progressed = False
            if put_queue and len(items) < capacity:
                put = put_queue.popleft()
                items.append(put.item)
                put.succeed()
                progressed = True
            if get_queue and items:
                get_queue.popleft().succeed(items.popleft())
                progressed = True


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        self.env = container.env
        self.callbacks = _NO_CALLBACKS
        self._value = _PENDING
        self._ok = None
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        self.env = container.env
        self.callbacks = _NO_CALLBACKS
        self._value = _PENDING
        self._ok = None
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A reservoir of continuous "stuff" (bytes, tokens, joules).

    Used for bandwidth budgeting: producers ``put`` and consumers ``get``
    amounts, blocking when the level would go out of bounds.
    """

    __slots__ = ("env", "capacity", "level", "_put_queue", "_get_queue")

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise SimulationError(f"container capacity must be positive, got {capacity}")
        if not 0.0 <= init <= capacity:
            raise SimulationError(f"initial level {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self.level = float(init)
        self._put_queue: deque[ContainerPut] = deque()
        self._get_queue: deque[ContainerGet] = deque()

    def put(self, amount: float) -> ContainerPut:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        put_queue = self._put_queue
        get_queue = self._get_queue
        progressed = True
        while progressed:
            progressed = False
            if put_queue:
                put = put_queue[0]
                if self.level + put.amount <= self.capacity:
                    put_queue.popleft()
                    self.level += put.amount
                    put.succeed()
                    progressed = True
            if get_queue:
                get = get_queue[0]
                if self.level >= get.amount:
                    get_queue.popleft()
                    self.level -= get.amount
                    get.succeed(get.amount)
                    progressed = True
