"""The kernel's observability seam: a compiled subscriber bus.

Every event the kernel dispatches — and every fast-forward
:class:`~repro.sim.engine.MacroJump` — is published as ``(now, event)``
to the environment's :class:`EventBus`.  Trace recording
(:mod:`repro.sim.trace`), measurement hooks and live dashboards all
observe the kernel through this one seam instead of competing for a
single ad-hoc tracer slot.

The bus is *compiled*: every subscription change recomputes the
environment's internal publish hook to the cheapest shape for the
current subscriber count —

* no subscribers → ``None`` (the run loop's per-event cost is a single
  ``is None`` test on a hoisted local: zero-cost when unobserved);
* one subscriber → the subscriber callable itself, called directly with
  no fan-out frame in between;
* several subscribers → one closure over an immutable tuple that calls
  each subscriber in subscription order.

Contract: subscribe *before* the ``run()`` call whose events you want
to observe — the run loop hoists the publish hook once on entry, like
every other queue alias.  Subscribers are compared by identity; adding
the same callable twice raises :class:`~repro.sim.engine.SimulationError`
(attach two distinct callables if you really want double delivery), and
so does removing a callable that is not subscribed.  Subscribers must
not raise: an exception escaping a subscriber propagates out of the run
loop like any kernel error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Environment, Event

__all__ = ["EventBus", "Subscriber"]

Subscriber = Callable[[float, "Event"], None]


class EventBus:
    """Ordered subscriber list publishing every processed kernel event.

    Obtained via :attr:`Environment.bus <repro.sim.engine.Environment.bus>`;
    not constructed directly by user code.
    """

    __slots__ = ("_env", "_subscribers")

    def __init__(self, env: Environment) -> None:
        self._env = env
        self._subscribers: list[Subscriber] = []

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Add ``subscriber``; it will see every subsequently run event.

        Returns the subscriber (handy for ``hook = bus.subscribe(fn)``).
        Raises :class:`SimulationError` if this exact callable is already
        subscribed — silently keeping only one copy is how the old
        single-slot tracer lost trace events.
        """
        if not callable(subscriber):
            raise SimulationError(f"bus subscriber must be callable, got {subscriber!r}")
        for existing in self._subscribers:
            if existing is subscriber:
                raise SimulationError(f"{subscriber!r} is already subscribed to this bus")
        self._subscribers.append(subscriber)
        self._compile()
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove exactly ``subscriber``; other subscriptions are untouched."""
        subscribers = self._subscribers
        for index, existing in enumerate(subscribers):
            if existing is subscriber:
                del subscribers[index]
                self._compile()
                return
        raise SimulationError(f"{subscriber!r} is not subscribed to this bus")

    @property
    def subscribers(self) -> tuple[Subscriber, ...]:
        """The current subscribers, in delivery order."""
        return tuple(self._subscribers)

    def __len__(self) -> int:
        return len(self._subscribers)

    def __contains__(self, subscriber: object) -> bool:
        return any(existing is subscriber for existing in self._subscribers)

    def _compile(self) -> None:
        subscribers = self._subscribers
        if not subscribers:
            self._env._publish = None
        elif len(subscribers) == 1:
            self._env._publish = subscribers[0]
        else:
            fanout = tuple(subscribers)

            def publish(now: float, event: Event, _fanout=fanout) -> None:
                for subscriber in _fanout:
                    subscriber(now, event)

            self._env._publish = publish
