"""Temporal upscaling: fast-forward steady intervals with a macro model.

This module implements the heterogeneous-multiscale-method structure of
Arjmand, Engblom & Kreiss (arXiv:1603.04920) and Leitenmaier & Runborg
(arXiv:2108.09463) for the testbed simulator: the exact kernel runs in
short *micro windows*; windowed per-session rate statistics (FPS, link
and PCIe throughput, busy-core and GPU occupancy) feed a
:class:`SteadyStateDetector`; once the rates are steady, a
:class:`MacroModel` of per-second rates is extracted and the bulk of the
remaining measurement interval is covered in **one coarse jump** that
credits every measurement counter with exactly what the fine path's
rates extrapolate to.  Micro simulation then resumes for a short exit
window so the run ends on exact dynamics.

Two design points keep this safe:

* **The micro clock never jumps.**  A jump only increments
  ``Environment._virtual_offset`` (see :meth:`Environment.macro_advance`)
  and adds ``rate x delta`` to the counters, so in-flight process-local
  timestamps (``env.now - started`` spans held across yields) can never
  straddle a discontinuity.  Sample statistics — RTT distributions,
  stage breakdowns, PMU fractions, miss rates — are left untouched: the
  micro windows are their representative sample.
* **Fast-forward is opt-in and provenance-stamped.**  The config
  participates in the scenario content hash, so a fast-forwarded result
  can never silently replay as a full-fidelity one; the trace recorder
  sees an explicit ``MacroJump`` event for every coarse advance.

Everything here is duck-typed against :class:`repro.server.host.CloudHost`
(sessions, machine, meters) so the sim layer stays at the bottom of the
dependency stack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = [
    "FastForwardConfig",
    "FastForwardSummary",
    "MacroModel",
    "Probe",
    "SteadyStateDetector",
    "build_probes",
    "run_fast_forward",
]


@dataclass(frozen=True)
class FastForwardConfig:
    """Knobs of the fast-forward (temporal upscaling) mode.

    ``enabled``
        Off by default: the fine path is byte-identical to a build
        without this module.
    ``window_s``
        Micro-window length over which rates are sampled.
    ``min_steady_windows``
        Consecutive windows whose rates must agree before a jump; also
        the averaging span of the extracted macro model.
    ``tolerance``
        Relative spread allowed between windowed rates to call them
        steady.  Windowed counts quantize (a 30 FPS stream yields 14/16
        frames in alternating half-second windows), so this is a
        steadiness criterion, not an accuracy bound — accuracy is
        enforced downstream by the committed tolerance table.
    ``exit_window_s``
        Micro seconds re-simulated after the jump so the run ends on
        exact dynamics.
    """

    enabled: bool = False
    window_s: float = 0.5
    min_steady_windows: int = 4
    tolerance: float = 0.25
    exit_window_s: float = 0.5

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("fast-forward window_s must be positive")
        if self.min_steady_windows < 2:
            raise ValueError("min_steady_windows must be at least 2")
        if self.tolerance <= 0:
            raise ValueError("fast-forward tolerance must be positive")
        if self.exit_window_s < 0:
            raise ValueError("exit_window_s cannot be negative")

    @staticmethod
    def coerce(value: Any) -> "FastForwardConfig":
        """Interpret a config value: an instance, a bool, or a dict.

        ``True`` means "enabled with default knobs"; a dict is the
        JSON-spec form (``{"enabled": true, "window_s": 0.25}``).
        """
        if isinstance(value, FastForwardConfig):
            return value
        if value is None:
            return FastForwardConfig()
        if isinstance(value, bool):
            return FastForwardConfig(enabled=value)
        if isinstance(value, dict):
            unknown = set(value) - set(FastForwardConfig.__dataclass_fields__)
            if unknown:
                raise ValueError(
                    f"unknown fast_forward fields {sorted(unknown)}")
            return FastForwardConfig(**value)
        raise TypeError(f"cannot interpret {value!r} as a fast-forward "
                        "config (expected bool, dict or FastForwardConfig)")


class SteadyStateDetector:
    """Declares steady state from consecutive windowed rate dictionaries.

    The detector only ever sees measurement-interval windows (the
    fast-forward loop starts after warm-up), so it is structurally
    incapable of firing during warm-up; and it never reports steady with
    fewer than ``min_windows`` observations, so a jump can never be based
    on a transient.
    """

    def __init__(self, min_windows: int, tolerance: float,
                 floor: float = 1.0):
        if min_windows < 2:
            raise ValueError("min_windows must be at least 2")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if floor <= 0:
            raise ValueError("floor must be positive")
        self.min_windows = min_windows
        self.tolerance = tolerance
        self.floor = floor
        self._history: deque[dict[str, float]] = deque(maxlen=min_windows)

    def observe(self, rates: dict[str, float]) -> None:
        """Record one micro window's per-second rates."""
        self._history.append(dict(rates))

    def reset(self) -> None:
        """Forget all observations (call after every macro jump)."""
        self._history.clear()

    @property
    def observed_windows(self) -> int:
        return len(self._history)

    @property
    def steady(self) -> bool:
        """True when the last ``min_windows`` windows agree on every rate."""
        if len(self._history) < self.min_windows:
            return False
        keys = set()
        for window in self._history:
            keys.update(window)
        for key in keys:
            values = [window.get(key, 0.0) for window in self._history]
            mean = sum(values) / len(values)
            spread = max(values) - min(values)
            if spread > self.tolerance * max(abs(mean), self.floor):
                return False
        return True

    def mean_rates(self) -> dict[str, float]:
        """Mean rate per key over the observed windows."""
        if not self._history:
            return {}
        keys: set[str] = set()
        for window in self._history:
            keys.update(window)
        return {key: sum(window.get(key, 0.0) for window in self._history)
                / len(self._history) for key in sorted(keys)}


@dataclass(frozen=True)
class MacroModel:
    """The extracted steady-state model: per-second counter rates.

    A frozen value object so it can be logged, serialized and
    round-tripped (:meth:`to_dict` / :meth:`from_dict`) — the rates are
    the complete description of what a coarse jump will credit.
    """

    rates: tuple[tuple[str, float], ...]

    @staticmethod
    def from_rates(rates: dict[str, float]) -> "MacroModel":
        return MacroModel(rates=tuple(sorted(
            (str(key), float(value)) for key, value in rates.items())))

    def rate(self, key: str) -> float:
        for name, value in self.rates:
            if name == key:
                return value
        return 0.0

    def extrapolate(self, delta: float) -> dict[str, float]:
        """Counter increments for ``delta`` skipped seconds."""
        if delta < 0:
            raise ValueError("cannot extrapolate a negative interval")
        return {name: value * delta for name, value in self.rates}

    def to_dict(self) -> dict:
        return {"rates": {name: value for name, value in self.rates}}

    @staticmethod
    def from_dict(data: dict) -> "MacroModel":
        return MacroModel.from_rates(dict(data.get("rates", {})))


class Probe:
    """One fast-forwardable counter: how to read it and how to credit it.

    ``detect`` marks the high-rate signals whose windowed rates feed the
    steady-state detector; sparse counters (tracked inputs arrive a few
    per second) stay out of the detector — their windowed rates are
    dominated by quantization noise — but are still extrapolated by the
    macro model.
    """

    __slots__ = ("key", "read", "add", "detect")

    def __init__(self, key: str, read: Callable[[], float],
                 add: Callable[[float], None], detect: bool = True):
        self.key = key
        self.read = read
        self.add = add
        self.detect = detect


def _attr_probe(key: str, obj: Any, name: str, detect: bool = True,
                integral: bool = False) -> Probe:
    """A probe over a plain ``obj.name`` numeric attribute."""
    def read() -> float:
        return float(getattr(obj, name))

    if integral:
        def add(amount: float) -> None:
            setattr(obj, name, getattr(obj, name) + int(round(amount)))
    else:
        def add(amount: float) -> None:
            setattr(obj, name, getattr(obj, name) + amount)

    return Probe(key, read, add, detect)


def build_probes(host: Any) -> list[Probe]:
    """Every measurement counter of ``host`` that a macro jump must credit.

    Horizon-normalized rate metrics (FPS, utilizations, Mbps, GB/s) are
    counter / elapsed downstream, so crediting the counters keeps them
    correct across the jump.  Sample-statistic metrics (RTT, stage
    breakdowns, miss rates, PMU fractions) need nothing: the micro
    windows are their representative sample.
    """
    probes: list[Probe] = []
    machine = host.machine

    probes.append(Probe("machine.cpu.core_seconds",
                        machine.cpu.demand_core_seconds,
                        machine.cpu.record_synthetic_demand))
    probes.append(Probe("machine.gpu.busy_seconds",
                        machine.gpu.busy_seconds,
                        machine.gpu.record_synthetic_busy))
    for direction in machine.pcie.VALID_DIRECTIONS:
        probes.append(Probe(
            f"machine.pcie.{direction}",
            lambda d=direction: machine.pcie.bytes_by_direction[d],
            lambda amount, d=direction: machine.pcie.bytes_by_direction
            .__setitem__(d, machine.pcie.bytes_by_direction[d] + amount)))

    for thread in machine.cpu.threads:
        prefix = f"thread.{thread.name}"
        probes.append(_attr_probe(f"{prefix}.core_seconds", thread,
                                  "core_seconds"))
        probes.append(_attr_probe(f"{prefix}.busy_time", thread,
                                  "busy_time"))
        for component in ("retiring", "frontend_bound", "backend_bound",
                          "bad_speculation"):
            probes.append(_attr_probe(f"{prefix}.cycles.{component}",
                                      thread.cycles, component,
                                      detect=False))

    for session in host.sessions:
        prefix = f"session.{session.name}"
        probes.append(Probe(f"{prefix}.server_frames",
                            lambda s=session: float(s.server_fps.frame_count),
                            lambda amount, s=session:
                            s.server_fps.record_synthetic(amount)))
        probes.append(Probe(f"{prefix}.client_frames",
                            lambda s=session: float(s.client_fps.frame_count),
                            lambda amount, s=session:
                            s.client_fps.record_synthetic(amount)))
        probes.append(_attr_probe(f"{prefix}.frames_produced", session,
                                  "frames_produced", integral=True))
        probes.append(_attr_probe(f"{prefix}.pcie_to_gpu_bytes", session,
                                  "pcie_to_gpu_bytes"))
        probes.append(_attr_probe(f"{prefix}.pcie_from_gpu_bytes", session,
                                  "pcie_from_gpu_bytes"))
        probes.append(_attr_probe(f"{prefix}.gpu_busy_time",
                                  session.render_context, "gpu_busy_time"))
        link = session.link
        for direction in (link.UPLINK, link.DOWNLINK):
            # The downlink carries the dense frame stream; the uplink is
            # sparse bursty input traffic (a few packets per second), so
            # like the input counters it is credited but never consulted
            # for steadiness — its windowed rate never settles.
            probes.append(Probe(
                f"{prefix}.link.{direction}",
                lambda lk=link, d=direction: lk.bytes_moved(d),
                lambda amount, lk=link, d=direction:
                lk.record_synthetic_bytes(d, amount),
                detect=direction == link.DOWNLINK))
        tracker = session.tracker
        probes.append(Probe(f"{prefix}.inputs_tracked",
                            lambda t=tracker: float(t.tracked_inputs),
                            lambda amount, t=tracker:
                            t.record_synthetic(int(round(amount)), 0),
                            detect=False))
        probes.append(Probe(f"{prefix}.inputs_completed",
                            lambda t=tracker: float(t.completed_inputs),
                            lambda amount, t=tracker:
                            t.record_synthetic(0, int(round(amount))),
                            detect=False))
    return probes


@dataclass
class FastForwardSummary:
    """What one fast-forwarded measurement interval actually did."""

    duration: float
    micro_seconds: float
    macro_seconds: float
    jumps: list[tuple[float, float]]  # (micro time of jump, virtual delta)
    model: Optional[MacroModel]

    @property
    def jump_count(self) -> int:
        return len(self.jumps)


def run_fast_forward(host: Any, measure_start: float, duration: float,
                     config: FastForwardConfig) -> FastForwardSummary:
    """Cover ``duration`` virtual seconds with micro windows + macro jumps.

    Called by :meth:`repro.server.host.CloudHost.run` in place of the
    single ``env.run`` over the measurement interval.  The kernel runs in
    ``config.window_s`` micro windows; once the windowed rates are steady
    the remaining interval (minus the exit window) is credited in one
    :meth:`Environment.macro_advance` jump, and micro simulation resumes
    to finish on exact dynamics.  Transitions re-enter micro mode
    automatically: every jump resets the detector, so steadiness must be
    re-established before another jump.
    """
    env = host.env
    probes = build_probes(host)
    detector = SteadyStateDetector(config.min_steady_windows,
                                   config.tolerance)
    history: deque[dict[str, float]] = deque(maxlen=config.min_steady_windows)
    previous = {probe.key: probe.read() for probe in probes}
    covered = 0.0
    micro = 0.0
    jumps: list[tuple[float, float]] = []
    model: Optional[MacroModel] = None
    meter = host.machine.power_meter

    while duration - covered > 1e-9:
        window = min(config.window_s, duration - covered)
        env.run(until=env.now + window)
        covered += window
        micro += window
        values = {probe.key: probe.read() for probe in probes}
        if window == config.window_s:
            rates = {key: (values[key] - previous[key]) / window
                     for key in values}
            history.append(rates)
            detector.observe({probe.key: rates[probe.key]
                              for probe in probes if probe.detect})
        previous = values

        remaining = duration - covered
        if detector.steady and remaining > config.exit_window_s + 1e-9:
            # Average over the whole steady span, not the last window:
            # windowed counts quantize, the span mean does not.
            span_rates = {key: sum(window_rates.get(key, 0.0)
                                   for window_rates in history) / len(history)
                          for key in previous}
            model = MacroModel.from_rates(span_rates)
            delta = remaining - config.exit_window_s
            for probe in probes:
                amount = model.rate(probe.key) * delta
                if amount:
                    probe.add(amount)
            # The power meter samples periodically; credit the samples
            # the skipped interval would have produced at the macro
            # steady-state power level.
            interval = getattr(host.config, "power_sampling_interval", 1.0)
            watts = meter.steady_power(
                cpu_cores_busy=model.rate("machine.cpu.core_seconds"),
                gpu_utilization=min(1.0,
                                    model.rate("machine.gpu.busy_seconds")))
            meter.record_synthetic(watts, delta / max(interval, 1e-9))
            env.macro_advance(delta)
            jumps.append((env.now, delta))
            covered += delta
            detector.reset()
            history.clear()
            previous = {probe.key: probe.read() for probe in probes}

    return FastForwardSummary(duration=duration, micro_seconds=micro,
                              macro_seconds=duration - micro, jumps=jumps,
                              model=model)
