"""Deterministic event-trace recording for the simulation kernel.

A :class:`TraceRecorder` attaches to an :class:`~repro.sim.engine.Environment`
and writes one line per *processed* event — the exact order the kernel
dispatches work in.  Each line captures

``sequence  time  event-type  process-id  value-digest``

where ``process-id`` is the stable per-environment id of the process the
event belongs to (the process itself, or the process an
``Initialize``/``Interruption``/``Request`` event targets; ``-``
otherwise) and ``value-digest`` is a short stable digest of the event's
value (see :func:`value_digest`).

Because every field is derived from simulation state only — no wall
clock, no ``id()``/``repr()`` addresses, no hash randomization — the
same workload produces byte-identical traces in any process, on any
machine, and under any kernel implementation that preserves the engine's
determinism contract (see :mod:`repro.sim`).  That makes a recorded
trace a *golden file*: two kernels are observably equivalent on a
workload if and only if their traces match byte for byte.

Usage::

    env = Environment()
    recorder = TraceRecorder(env)   # install BEFORE running
    ... build and run the model ...
    recorder.close()
    text = recorder.text(header="pictor-trace v1 my-workload")

A recorder is one subscriber on the environment's
:class:`~repro.sim.bus.EventBus`; any number of recorders (and other
subscribers — probes, live monitors) can observe the same run, and
:meth:`TraceRecorder.close` detaches exactly its own subscription.

The scenario-level golden helpers (record/check/update against
``tests/golden/``) live in :mod:`repro.experiments.goldens`, above the
scenario layer in the dependency stack.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from repro.sim.engine import Environment, Event, Process

__all__ = ["TraceRecorder", "value_digest", "event_pid"]

#: Bumping this invalidates every committed golden trace; do so only when
#: the line format itself changes, and re-record with
#: ``python -m repro.experiments trace --update``.
TRACE_FORMAT_VERSION = 1


def _feed(hasher, value: Any, depth: int = 0) -> None:
    """Feed ``value`` into ``hasher`` in a canonical, type-tagged form.

    Every branch uses only content (never identity or memory layout), so
    the digest is stable across processes and interpreter runs.  Objects
    without an obvious content form — model objects like frames or
    resources — contribute their type name only, which is enough to pin
    the event *kind* without dragging unstable state into the digest.
    """
    if depth > 6:
        hasher.update(b"<deep>")
        return
    if value is None:
        hasher.update(b"N")
    elif value is True:
        hasher.update(b"T")
    elif value is False:
        hasher.update(b"F")
    elif isinstance(value, int):
        hasher.update(b"i" + str(value).encode())
    elif isinstance(value, float):
        hasher.update(b"f" + repr(value).encode())
    elif isinstance(value, str):
        hasher.update(b"s" + value.encode("utf-8", "replace"))
    elif isinstance(value, bytes):
        hasher.update(b"b" + value)
    elif isinstance(value, (tuple, list)):
        hasher.update(b"[" if isinstance(value, list) else b"(")
        for item in value:
            _feed(hasher, item, depth + 1)
            hasher.update(b",")
        hasher.update(b"]" if isinstance(value, list) else b")")
    elif isinstance(value, dict):
        # Insertion order is deterministic for a deterministic kernel.
        hasher.update(b"{")
        for key, item in value.items():
            _feed(hasher, key, depth + 1)
            hasher.update(b":")
            _feed(hasher, item, depth + 1)
            hasher.update(b",")
        hasher.update(b"}")
    elif isinstance(value, BaseException):
        hasher.update(b"E" + type(value).__name__.encode())
        _feed(hasher, value.args, depth + 1)
    else:
        hasher.update(b"O" + type(value).__name__.encode())


def value_digest(value: Any) -> str:
    """A short stable digest of an event value (see :func:`_feed`)."""
    hasher = hashlib.blake2b(digest_size=6)
    _feed(hasher, value)
    return hasher.hexdigest()


def event_pid(event: Event) -> Optional[int]:
    """The stable process id an event belongs to, if any.

    Processes carry their own id; ``Initialize``/``Interruption``/
    ``Request`` events resolve to the process they target or that created
    them.  Returns None for process-less events.
    """
    if isinstance(event, Process):
        return event._pid
    process = getattr(event, "process", None)
    if isinstance(process, Process):
        return process._pid
    return None


class TraceRecorder:
    """Records the environment's processed-event sequence as text lines.

    Install before the ``run()`` call you want to observe; the kernel
    hoists the bus's publish hook when a run starts.  The recorder is an
    ordinary bus subscriber, so several recorders — or a recorder plus
    other observers — can watch the same environment at once, each
    seeing every event in dispatch order.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.entries: list[str] = []
        self._seq = 0
        self._hook = self._record
        env.bus.subscribe(self._hook)
        self._attached = True

    def _record(self, now: float, event: Event) -> None:
        self._seq = seq = self._seq + 1
        pid = event_pid(event)
        value = event._value
        self.entries.append(
            f"{seq} {now!r} {type(event).__name__} "
            f"{'-' if pid is None else pid} {value_digest(value)}")

    def close(self) -> None:
        """Detach this recorder's own bus subscription (idempotent).

        Other subscribers on the same bus are untouched; the recorded
        entries remain available.
        """
        if self._attached:
            self._attached = False
            self.env.bus.unsubscribe(self._hook)

    def text(self, header: str = "") -> str:
        """The full trace as text, one event per line.

        ``header`` (if given) is prefixed as a ``#`` comment line along
        with the trace format version.
        """
        lines = []
        if header:
            lines.append(f"# pictor-trace v{TRACE_FORMAT_VERSION} {header}")
        lines.extend(self.entries)
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """SHA-256 over :meth:`text` (without header)."""
        return hashlib.sha256(self.text().encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.entries)
