"""Tests for the intelligent client and the prior-work baselines."""

import pytest

from repro.agents.baselines.chen import ChenMethodology
from repro.agents.baselines.deskbench import DeskBenchClient
from repro.agents.baselines.slowmotion import SlowMotionMethodology
from repro.agents.intelligent_client import (
    InferenceTimingModel,
    train_intelligent_client,
)
from repro.agents.recorder import RecordedSession
from repro.apps.registry import create_benchmark, get_profile
from repro.core.tags import InputRecord
from repro.core.tracker import InputTracker
from repro.graphics.pipeline import Stage
from repro.server.session import SessionConfig
from repro.sim.randomness import StreamRandom


@pytest.fixture(scope="module")
def trained_client():
    app = create_benchmark("RE", rng=StreamRandom(21))
    client, recording = train_intelligent_client(
        app, rng=StreamRandom(22), recording_seconds=5.0,
        cnn_epochs=3, lstm_epochs=8)
    return client, recording


# --- intelligent client ---------------------------------------------------------------

def test_client_mimics_human_action_rate(trained_client):
    client, _recording = trained_client
    assert client.actions_per_second == pytest.approx(
        client.app.profile.actions_per_second)
    assert client.input_kind is client.app.profile.input_kind


def test_client_decides_from_frames(trained_client):
    client, _recording = trained_client
    app = create_benchmark("RE", rng=StreamRandom(23))
    frame = app.advance(1 / 30)
    decision = client.decide(frame, now=0.0)
    assert decision is not None
    action, compute_time = decision
    assert -1.0 <= action.steer <= 1.0
    assert compute_time > 0.01     # CV inference dominates


def test_client_handles_missing_frame(trained_client):
    client, _recording = trained_client
    action, compute_time = client.decide(None, now=0.0)
    assert action is not None and compute_time > 0


def test_client_inference_times_match_figure7_scale(trained_client):
    client, _recording = trained_client
    app = create_benchmark("RE", rng=StreamRandom(24))
    for _ in range(30):
        client.decide(app.advance(1 / 30), now=0.0)
    cv_ms = client.mean_cv_time() * 1e3
    rnn_ms = client.mean_rnn_time() * 1e3
    assert 30.0 < cv_ms < 150.0
    assert 0.5 < rnn_ms < 10.0
    # Fast enough to exceed professional-player APM (Section 4).
    assert client.achievable_apm() > 300.0


def test_client_imitates_recorded_actions(trained_client):
    client, recording = trained_client
    error = client.imitation_error(recording)
    assert error < 0.6


def test_inference_timing_model_bounds():
    timing = InferenceTimingModel()
    rng = StreamRandom(0)
    assert 0.01 <= timing.sample_cv_time(rng) <= 0.3
    assert 0.0005 <= timing.sample_rnn_time(rng) <= 0.02
    assert timing.max_actions_per_minute > 600.0


# --- DeskBench -------------------------------------------------------------------------

def test_deskbench_waits_for_matching_frame(trained_client):
    _client, recording = trained_client
    app = create_benchmark("RE", rng=StreamRandom(31))
    deskbench = DeskBenchClient(app, recording, similarity_threshold=1e-6,
                                timeout_s=5.0, rng=StreamRandom(32))
    # With an impossibly strict threshold and a fresh random scene, the
    # replay should not issue an action immediately.
    frame = app.advance(1 / 30)
    assert deskbench.decide(frame, now=0.0) is None


def test_deskbench_times_out_and_replays(trained_client):
    _client, recording = trained_client
    app = create_benchmark("RE", rng=StreamRandom(33))
    deskbench = DeskBenchClient(app, recording, similarity_threshold=1e-6,
                                timeout_s=0.5, rng=StreamRandom(34))
    frame = app.advance(1 / 30)
    assert deskbench.decide(frame, now=0.0) is None
    decision = deskbench.decide(frame, now=1.0)   # past the timeout
    assert decision is not None
    assert deskbench.actions_delayed == 1
    assert deskbench.match_rate() == 0.0


def test_deskbench_issues_immediately_on_similar_frame(trained_client):
    _client, recording = trained_client
    app = create_benchmark("RE", rng=StreamRandom(35))
    deskbench = DeskBenchClient(app, recording, similarity_threshold=10.0,
                                rng=StreamRandom(36))
    frame = app.advance(1 / 30)
    decision = deskbench.decide(frame, now=0.0)
    assert decision is not None
    assert deskbench.match_rate() == 1.0


def test_deskbench_threshold_sweep_returns_candidate(trained_client):
    _client, recording = trained_client
    app = create_benchmark("RE", rng=StreamRandom(37))
    thresholds = (0.01, 0.05, 0.2)
    best = DeskBenchClient.sweep_thresholds(app, recording, thresholds,
                                            probe_frames=10)
    assert best in thresholds


def test_deskbench_validation(trained_client):
    _client, recording = trained_client
    app = create_benchmark("RE", rng=StreamRandom(38))
    with pytest.raises(ValueError):
        DeskBenchClient(app, RecordedSession(benchmark="RE"))
    with pytest.raises(ValueError):
        DeskBenchClient(app, recording, similarity_threshold=0.0)


# --- Chen et al. ------------------------------------------------------------------------

def _record_with_stages(tracker: InputTracker, stage_durations: dict) -> InputRecord:
    record = tracker.create_record("key_event", timestamp=0.0)
    for stage, duration in stage_durations.items():
        record.record_stage(stage, duration)
    record.complete(1.0)
    return record


def test_chen_estimate_drops_hidden_stages():
    tracker = InputTracker()
    stages = {Stage.CS: 0.005, Stage.SP: 0.001, Stage.AL: 0.030, Stage.FC: 0.020,
              Stage.PS: 0.004, Stage.AS: 0.006, Stage.CP: 0.012, Stage.SS: 0.014}
    _record_with_stages(tracker, stages)
    chen = ChenMethodology(get_profile("RE"))
    estimate = chen.estimate_rtt(tracker.completed_records()[0])
    # Offline AL replaces the measured 30 ms, and PS/FC/AS are invisible.
    expected = 0.005 + 0.001 + chen.offline_al_time() + 0.012 + 0.014
    assert estimate == pytest.approx(expected)
    assert chen.missed_time(tracker) == pytest.approx(0.020 + 0.004 + 0.006)


def test_chen_underestimates_contended_al():
    tracker = InputTracker()
    _record_with_stages(tracker, {Stage.CS: 0.005, Stage.AL: 0.040, Stage.CP: 0.01,
                                  Stage.SS: 0.01, Stage.FC: 0.02})
    chen = ChenMethodology(get_profile("D2"))
    assert chen.mean_rtt(tracker) < 0.085  # true stage sum


def test_chen_validation():
    with pytest.raises(ValueError):
        ChenMethodology(get_profile("RE"), offline_al_scale=0.0)


# --- Slow-Motion ------------------------------------------------------------------------

def test_slowmotion_config_serializes_pipeline():
    slow = SlowMotionMethodology()
    config = slow.session_config(SessionConfig())
    assert config.slow_motion
    assert config.client.wait_for_response
    assert "one input/frame" in SlowMotionMethodology.describe()


def test_slowmotion_rejects_negative_delay():
    with pytest.raises(ValueError):
        SlowMotionMethodology(injected_delay_s=-1.0)
