"""The SQLite result store: provenance, migration, concurrency, diffing.

The hard requirements under test: every backend reads and writes its
results through :class:`ResultStore` and stays bit-identical to a legacy
pickle-cache replay; a pickle directory migrates losslessly and
idempotently; concurrent writers (the distributed workers' reality)
never corrupt the database; and ``results diff`` reports exactly zero
deltas for two runs of the same deterministic scenarios.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentJob,
    ExperimentSuite,
    PickleResultCache,
    ResultCache,
    ResultStore,
    Scenario,
    diff_result_sets,
    execute_job,
    migrate_pickle_dir,
)
from repro.experiments.__main__ import main
from repro.experiments.jobs import CACHE_SCHEMA_VERSION
from repro.experiments.store import entry_metrics, flatten_metrics


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig.smoke(seed=5)


@pytest.fixture(scope="module")
def job(config) -> ExperimentJob:
    return ExperimentJob(Scenario.single("RE", config, seed_offset=1))


@pytest.fixture(scope="module")
def result(job):
    return execute_job(job)


def _synthetic_entry(index: int, value: float, git_rev: str = "rev-a",
                     schema: int = CACHE_SCHEMA_VERSION) -> dict:
    """A fully stamped entry with a plain-dict result payload."""
    key = f"{index:04d}" + "ab" * 30
    return {
        "schema": schema,
        "key": key,
        "kind": "host",
        "duration": None,
        "scenario": {"placements": [{"benchmark": "RE", "agent": "human",
                                     "count": 1}]},
        "scenario_hash": f"{index:04d}" + "cd" * 30,
        "git_rev": git_rev,
        "runtime_s": 0.5,
        "cost_units": 2.0,
        "result": {"fps": value, "nested": {"rtt_ms": value * 2,
                                            "series": [value, value + 1]}},
    }


# ---------------------------------------------------------------------------
# Store semantics
# ---------------------------------------------------------------------------

def test_store_roundtrips_provenance_stamped_entries(tmp_path, job, result):
    store = ResultStore(tmp_path / "store")
    store.put(job, result, runtime_s=1.5)

    entry = store.get_entry(job.key())
    assert entry["schema"] == CACHE_SCHEMA_VERSION
    assert entry["key"] == job.key()
    assert entry["kind"] == "host"
    assert entry["scenario"] == job.scenario.to_dict()
    assert entry["scenario_hash"] == job.scenario.content_hash()
    assert entry["runtime_s"] == 1.5
    assert entry["cost_units"] == job.cost_units()
    assert "git_rev" in entry
    assert entry["result"].as_dict() == result.as_dict()
    assert store.get(job).as_dict() == result.as_dict()
    assert len(store) == 1
    assert list(store.entries())[0]["key"] == job.key()

    # The provenance columns agree with the pickled entry.
    [row] = store.rows()
    assert row["key"] == job.key()
    assert row["scenario_hash"] == job.scenario.content_hash()
    assert row["runtime_s"] == 1.5
    assert row["created_at"] > 0

    store.invalidate(job.key())
    assert store.get_entry(job.key()) is None
    assert len(store) == 0


def test_store_keeps_one_row_per_revision_and_replays_the_newest(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put_entry(_synthetic_entry(1, 10.0, git_rev="rev-old"))
    store.put_entry(_synthetic_entry(1, 11.0, git_rev="rev-new"))

    key = _synthetic_entry(1, 0.0)["key"]
    assert len(store) == 1                      # one key ...
    assert len(store.rows()) == 2               # ... two revisions on file
    assert store.get_entry(key)["result"]["fps"] == 11.0
    assert set(store.git_revs()) == {"rev-old", "rev-new"}
    assert store.result_set("rev-old")[key]["result"]["fps"] == 10.0
    assert store.result_set("rev-new")[key]["result"]["fps"] == 11.0


def test_store_rejects_stale_schema_rows_with_a_log(tmp_path, caplog):
    store = ResultStore(tmp_path / "store")
    entry = _synthetic_entry(1, 10.0, schema=CACHE_SCHEMA_VERSION - 1)
    store.put_entry(entry)
    with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
        assert store.get_entry(entry["key"]) is None
    assert any("stale cache entry" in record.message
               for record in caplog.records)


def test_store_rejects_tampered_scenario_hash_with_a_log(tmp_path, job,
                                                         result, caplog):
    store = ResultStore(tmp_path / "store")
    store.put(job, result)
    entry = store.get_entry(job.key())
    entry["scenario_hash"] = "0" * 64
    store.put_entry(entry)
    with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
        assert store.get(job) is None
    assert any("tampered cache entry" in record.message
               for record in caplog.records)


def test_store_rejects_unreadable_blobs_with_a_log(tmp_path, caplog):
    store = ResultStore(tmp_path / "store")
    entry = _synthetic_entry(1, 10.0)
    store.put_entry(entry)
    store.connection().execute(
        "UPDATE results SET entry = ? WHERE key = ?",
        (b"not a pickle", entry["key"]))
    with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
        assert store.get_entry(entry["key"]) is None
    assert any("unreadable" in record.message for record in caplog.records)


def test_cost_model_calibrates_from_sql_without_unpickling(tmp_path):
    from repro.experiments.cost import CostModel

    store = ResultStore(tmp_path / "store")
    store.put_entry(_synthetic_entry(1, 10.0))
    store.put_entry(_synthetic_entry(2, 20.0))
    # Corrupt both blobs: the calibration must come from the provenance
    # columns alone, never from the pickled payloads.
    store.connection().execute("UPDATE results SET entry = ?",
                               (b"not a pickle",))
    model = CostModel.calibrated(store)
    # Two rows of 0.5 s / 2.0 units: 1.0 s over 4.0 units.
    assert model.rates["host"] == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Pickle-directory migration
# ---------------------------------------------------------------------------

def test_pickle_migration_roundtrips_every_entry(tmp_path, job, result,
                                                 config):
    legacy = PickleResultCache(tmp_path / "cache")
    legacy.put(job, result, runtime_s=2.0)
    other = ExperimentJob(Scenario.single("ITP", config, seed_offset=2))
    other_result = execute_job(other)
    legacy.put(other, other_result, runtime_s=1.0)

    store = ResultStore(tmp_path / "cache")   # directory form: auto-migrates
    assert len(store) == 2
    for source_job, source_result in ((job, result), (other, other_result)):
        migrated = store.get_entry(source_job.key())
        reference = legacy.get_entry(source_job.key())
        assert set(migrated) == set(reference)
        for name in set(reference) - {"result"}:
            assert migrated[name] == reference[name], name
        assert migrated["result"].as_dict() == source_result.as_dict()

    # Idempotent: a second pass (and a reopen) imports nothing new.
    report = migrate_pickle_dir(store)
    assert (report.migrated, report.skipped, report.rejected) == (0, 2, 0)
    assert len(ResultStore(tmp_path / "cache")) == 2
    # The pickle files stay in place, untouched.
    assert len(list((tmp_path / "cache").glob("*.pkl"))) == 2


def test_pickle_migration_rejects_invalid_entries(tmp_path, job, result,
                                                  caplog):
    legacy = PickleResultCache(tmp_path / "cache")
    legacy.put(job, result)
    stale = legacy.get_entry(job.key())
    stale = dict(stale, schema=CACHE_SCHEMA_VERSION - 1, key="f" * 64)
    import pickle
    with (tmp_path / "cache" / "stale.pkl").open("wb") as handle:
        pickle.dump(stale, handle)
    (tmp_path / "cache" / "garbage.pkl").write_bytes(b"not a pickle")

    with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
        store = ResultStore(tmp_path / "cache")
    assert len(store) == 1                      # only the valid entry landed
    assert store.get_entry("f" * 64) is None
    assert any("stale cache entry" in record.message
               for record in caplog.records)
    assert any("unreadable" in record.message for record in caplog.records)


def test_suite_replays_a_migrated_pickle_cache(tmp_path, job, result):
    """An existing pickle cache dir handed to --cache-dir promotes itself
    and replays without executing anything."""
    PickleResultCache(tmp_path / "cache").put(job, result, runtime_s=1.0)
    suite = ExperimentSuite(workers=1, cache_dir=tmp_path / "cache")
    [replayed] = suite.run([job])
    assert suite.stats.cache_hits == 1
    assert suite.stats.executed == 0
    assert replayed.as_dict() == result.as_dict()


# ---------------------------------------------------------------------------
# Backend equivalence through the store (the acceptance bar)
# ---------------------------------------------------------------------------

def test_all_backends_write_the_store_and_match_a_pickle_replay(tmp_path,
                                                                job, result):
    """Serial, parallel and distributed all read/write through
    ResultStore, and every path is bit-identical to a legacy
    pickle-cache replay of the same job."""
    legacy = PickleResultCache(tmp_path / "legacy")
    legacy.put(job, result)
    pickle_replay = legacy.get(job).as_dict()

    for backend in ("serial", "parallel", "distributed"):
        cache_dir = tmp_path / f"store-{backend}"
        with ExperimentSuite(workers=2, backend=backend, cache_dir=cache_dir,
                             queue_dir=(tmp_path / "q" if backend ==
                                        "distributed" else None),
                             timeout_s=300) as suite:
            [executed] = suite.run([job])
        stored = ResultStore(cache_dir).get(job)
        assert stored.as_dict() == executed.as_dict()
        assert stored.as_dict() == pickle_replay
        # The distributed queue's own result database holds the same row.
        if backend == "distributed":
            queued = ResultStore(tmp_path / "q" / "results").get(job)
            assert queued.as_dict() == pickle_replay


def test_concurrent_writers_from_separate_processes(tmp_path):
    """Two processes hammering one database (the distributed workers'
    reality on a shared filesystem) both land every row intact."""
    script = textwrap.dedent("""
        import sys
        from repro.experiments.jobs import CACHE_SCHEMA_VERSION
        from repro.experiments.store import ResultStore
        store = ResultStore(sys.argv[1])
        tag = sys.argv[2]
        for index in range(40):
            key = f"{tag}-{index:04d}" + "00" * 28
            store.put_entry({
                "schema": CACHE_SCHEMA_VERSION, "key": key, "kind": "host",
                "duration": None, "scenario": {"placements": []},
                "scenario_hash": "11" * 32, "git_rev": "rev-" + tag,
                "runtime_s": 0.1, "cost_units": 1.0,
                "result": {"value": float(index)},
            })
    """)
    import repro
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    procs = [subprocess.Popen([sys.executable, "-c", script,
                               str(tmp_path / "store"), tag], env=env)
             for tag in ("a", "b")]
    for proc in procs:
        assert proc.wait(timeout=120) == 0

    store = ResultStore(tmp_path / "store")
    assert len(store) == 80
    entries = list(store.entries())
    assert len(entries) == 80
    assert {entry["git_rev"] for entry in entries} == {"rev-a", "rev-b"}
    assert all(entry["result"]["value"] == float(int(entry["key"][2:6]))
               for entry in entries)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------

def test_flatten_metrics_walks_nested_structures():
    metrics = flatten_metrics({"a": 1, "b": {"c": 2.5},
                               "d": [3, {"e": 4}], "s": "text"})
    assert metrics == {"a": 1.0, "b.c": 2.5, "d[0]": 3.0, "d[1].e": 4.0,
                       "s": "text"}
    assert entry_metrics({"result": {"fps": 30.0}}) == {"fps": 30.0}


def test_diff_catches_non_numeric_changes_regardless_of_tolerance(tmp_path):
    a = ResultStore(tmp_path / "a")
    b = ResultStore(tmp_path / "b")
    entry = _synthetic_entry(1, 10.0)
    entry["result"]["status"] = "ok"
    a.put_entry(entry)
    changed = _synthetic_entry(1, 10.0)
    changed["result"]["status"] = "degraded"
    b.put_entry(changed)

    report = diff_result_sets(a.result_set(), b.result_set(), tolerance=0.5)
    assert not report.empty()
    [delta] = report.deltas
    assert (delta.metric, delta.a, delta.b) == ("status", "ok", "degraded")
    assert delta.delta is None


def test_diff_of_identical_result_sets_is_empty(tmp_path):
    a = ResultStore(tmp_path / "a")
    b = ResultStore(tmp_path / "b")
    for index in range(3):
        a.put_entry(_synthetic_entry(index, 10.0 + index))
        b.put_entry(_synthetic_entry(index, 10.0 + index))
    report = diff_result_sets(a.result_set(), b.result_set())
    assert report.empty()
    assert report.matched == 3
    assert report.identical == 3


def test_diff_reports_metric_deltas_and_respects_tolerance(tmp_path):
    a = ResultStore(tmp_path / "a")
    b = ResultStore(tmp_path / "b")
    a.put_entry(_synthetic_entry(1, 10.0))
    b.put_entry(_synthetic_entry(1, 10.5))

    report = diff_result_sets(a.result_set(), b.result_set())
    assert not report.empty()
    moved = {delta.metric: (delta.a, delta.b) for delta in report.deltas}
    # fps and every metric derived from it moved; nothing else did.
    assert moved["fps"] == (10.0, 10.5)
    assert moved["nested.rtt_ms"] == (20.0, 21.0)
    assert report.deltas[0].delta == pytest.approx(0.5)

    # A 10% relative tolerance swallows the 5% drift.
    assert diff_result_sets(a.result_set(), b.result_set(),
                            tolerance=0.1).empty()


def test_diff_reports_keys_missing_on_either_side(tmp_path):
    a = ResultStore(tmp_path / "a")
    b = ResultStore(tmp_path / "b")
    a.put_entry(_synthetic_entry(1, 10.0))
    a.put_entry(_synthetic_entry(2, 20.0))
    b.put_entry(_synthetic_entry(2, 20.0))
    b.put_entry(_synthetic_entry(3, 30.0))

    report = diff_result_sets(a.result_set(), b.result_set())
    assert not report.empty()
    assert report.only_in_a == [_synthetic_entry(1, 0.0)["key"]]
    assert report.only_in_b == [_synthetic_entry(3, 0.0)["key"]]
    assert report.matched == 1 and report.identical == 1


def test_diff_between_two_git_revs_in_one_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put_entry(_synthetic_entry(1, 10.0, git_rev="rev-a"))
    store.put_entry(_synthetic_entry(1, 10.0, git_rev="rev-b"))
    assert diff_result_sets(store.result_set("rev-a"),
                            store.result_set("rev-b")).empty()

    store.put_entry(_synthetic_entry(1, 12.0, git_rev="rev-c"))
    drifted = diff_result_sets(store.result_set("rev-a"),
                               store.result_set("rev-c"))
    assert not drifted.empty()
    assert {delta.metric for delta in drifted.deltas} >= {"fps"}


# ---------------------------------------------------------------------------
# The results CLI
# ---------------------------------------------------------------------------

def _seeded_store(tmp_path) -> Path:
    root = tmp_path / "cli-store"
    store = ResultStore(root)
    store.put_entry(_synthetic_entry(1, 10.0))
    store.put_entry(_synthetic_entry(2, 20.0, git_rev="rev-b"))
    return root


def test_results_list_filters_and_prints_rows(tmp_path, capsys):
    root = _seeded_store(tmp_path)
    assert main(["results", "list", "--store", str(root)]) == 0
    out = capsys.readouterr().out
    assert "2 result row(s)" in out and "RE" in out

    assert main(["results", "list", "--store", str(root),
                 "--git-rev", "rev-b"]) == 0
    assert "1 result row(s)" in capsys.readouterr().out

    assert main(["results", "list", "--store", str(root),
                 "--kind", "accuracy"]) == 0
    assert "0 result row(s)" in capsys.readouterr().out


def test_results_cli_refuses_to_create_a_store_from_a_typo(tmp_path, capsys):
    """Read-only commands error out on a missing database instead of
    silently creating an empty one (a diff against a typo'd path would
    otherwise pass vacuously)."""
    missing = tmp_path / "no-such-store"
    assert main(["results", "list", "--store", str(missing)]) == 2
    assert "no result database" in capsys.readouterr().err
    assert not missing.exists()

    (tmp_path / "empty-dir").mkdir()
    assert main(["results", "diff", "--store", str(tmp_path / "empty-dir"),
                 "rev-a", "rev-b"]) == 2
    assert "no result database" in capsys.readouterr().err
    assert not (tmp_path / "empty-dir" / "results.sqlite").exists()


def test_results_show_resolves_key_prefixes(tmp_path, capsys):
    root = _seeded_store(tmp_path)
    key = _synthetic_entry(1, 0.0)["key"]
    assert main(["results", "show", key[:6], "--store", str(root)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["key"] == key
    assert payload["result"]["fps"] == 10.0

    assert main(["results", "show", "zzz", "--store", str(root)]) == 2
    assert "no stored result key" in capsys.readouterr().err


def test_results_diff_cli_exit_codes(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    ResultStore(a).put_entry(_synthetic_entry(1, 10.0))
    ResultStore(b).put_entry(_synthetic_entry(1, 10.0))
    report_path = tmp_path / "report.json"
    assert main(["results", "diff", str(a), str(b),
                 "--report", str(report_path)]) == 0
    assert "no differences" in capsys.readouterr().out
    assert json.loads(report_path.read_text())["empty"] is True

    ResultStore(b).put_entry(_synthetic_entry(1, 11.0))
    assert main(["results", "diff", str(a), str(b),
                 "--report", str(report_path)]) == 1
    out = capsys.readouterr().out
    assert "metric delta(s)" in out and "fps" in out
    assert json.loads(report_path.read_text())["empty"] is False


def test_results_export_json_and_csv(tmp_path, capsys):
    root = _seeded_store(tmp_path)
    assert main(["results", "export", "--store", str(root)]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 2
    assert rows[0]["metrics"]["fps"] == 10.0

    out_path = tmp_path / "rows.csv"
    assert main(["results", "export", "--store", str(root), "--format",
                 "csv", "-o", str(out_path)]) == 0
    lines = out_path.read_text().strip().splitlines()
    assert lines[0].startswith("key,kind,scenario,")
    assert len(lines) == 1 + 2 * 4              # header + 4 metrics per row


def test_results_migrate_cli(tmp_path, capsys, job, result):
    PickleResultCache(tmp_path / "old").put(job, result)
    assert main(["results", "migrate", str(tmp_path / "old")]) == 0
    assert "migrated 1 entry" in capsys.readouterr().out
    assert ResultStore(tmp_path / "old").get(job).as_dict() == \
        result.as_dict()
    # Idempotent re-run.
    assert main(["results", "migrate", str(tmp_path / "old")]) == 0
    assert "1 already present" in capsys.readouterr().out


def test_result_cache_shim_is_the_store(tmp_path, job, result):
    """The compatibility name still works and shares the database."""
    cache = ResultCache(tmp_path / "store")
    cache.put(job, result, runtime_s=1.0)
    assert isinstance(cache, ResultStore)
    assert ResultStore(tmp_path / "store").get(job).as_dict() == \
        result.as_dict()
