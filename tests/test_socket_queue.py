"""The socket transport: server, client, heartbeats, recovery, equivalence.

The headline contracts, mirroring the directory-queue suite:

* the socket transport inherits DirectoryQueue semantics (idempotent
  submit, priority order, provenance stamps) — it fronts the same
  directory;
* heartbeats keep an in-flight claim alive past any lease, and a
  *silent* worker's claims requeue within the heartbeat timeout;
* every client call retries over fresh connections, so a restarted
  server degrades to a delay (or at worst a requeue) — never a lost or
  duplicated result;
* serial and socket-fleet runs are equivalent — including across a
  worker SIGKILL plus a server restart mid-drain (the chaos test CI
  runs by name).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentJob,
    ExperimentSuite,
    Scenario,
    execute_job,
)
from repro.experiments.protocol import MessageType
from repro.experiments.queue import DirectoryQueue
from repro.experiments.server import QueueServer
from repro.experiments.socket_queue import (
    QueueConnectionError,
    QueueRemoteError,
    SocketQueue,
    parse_addr,
)
from repro.experiments.worker import run_worker, spawn_worker


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig.smoke(seed=5)


@pytest.fixture(scope="module")
def jobs(config) -> list[ExperimentJob]:
    return [
        ExperimentJob(Scenario.mixed(("RE", "ITP", "D2"), config,
                                     seed_offset=900)),
        ExperimentJob(Scenario.single("RE", config, seed_offset=1)),
        ExperimentJob(Scenario.mixed(("STK", "RE", "ITP", "D2"), config,
                                     seed_offset=901, variant="optimized")),
    ]


@pytest.fixture
def server(tmp_path):
    with QueueServer(tmp_path / "q", heartbeat_timeout_s=60.0,
                     sweep_interval_s=0.1) as srv:
        yield srv


@pytest.fixture
def client(server):
    queue = SocketQueue(server.address, retries=3, backoff_s=0.02)
    yield queue
    queue.close()


def _report_dicts(results):
    return [[report.as_dict() for report in result.reports]
            for result in results]


def _wait_for(predicate, timeout_s=30.0, poll_s=0.01, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll_s)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {what}")


# ---------------------------------------------------------------------------
# Protocol roundtrip over the wire: DirectoryQueue semantics inherited
# ---------------------------------------------------------------------------

def test_parse_addr():
    assert parse_addr("127.0.0.1:7781") == ("127.0.0.1", 7781)
    assert parse_addr("host.example:80") == ("host.example", 80)
    with pytest.raises(ValueError, match="host:port"):
        parse_addr("no-port")
    with pytest.raises(ValueError, match="host:port"):
        parse_addr(":7781")


def test_submit_claim_complete_roundtrip_over_tcp(server, client, config):
    job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    key = client.submit(job)
    assert key == job.key()
    assert client.counts().pending == 1

    claimed = client.claim("w1")
    assert claimed is not None
    assert claimed.key == key
    assert claimed.job == job
    assert claimed.worker_id == "w1"
    assert claimed.path is None                  # the server holds the file
    assert client.counts().claimed == 1
    assert client.claim("w2") is None

    result = execute_job(job)
    client.complete(claimed, result, runtime_s=0.5)
    counts = client.counts()
    assert (counts.pending, counts.claimed, counts.completed) == (0, 0, 1)

    entry = client.result_entry(key)
    assert entry["scenario_hash"] == job.scenario.content_hash()
    assert entry["runtime_s"] == 0.5
    assert entry["result"].as_dict() == result.as_dict()
    assert client.failure(key) is None

    # The wire changes nothing on disk: a DirectoryQueue over the same
    # root sees exactly what a directory worker would have written.
    assert server.queue.result_entry(key)["result"].as_dict() \
        == result.as_dict()


def test_submit_is_idempotent_over_tcp(server, client, config):
    job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    assert client.submit(job) == client.submit(job)
    assert client.counts().pending == 1
    claimed = client.claim("w1")
    client.submit(job)
    assert client.counts().pending == 0
    client.complete(claimed, execute_job(job))
    client.submit(job)
    assert client.counts().pending == 0
    assert client.counts().completed == 1


def test_submit_many_is_one_frame_and_keeps_order(server, client, config):
    jobs = [ExperimentJob(Scenario.single("RE", config, seed_offset=i))
            for i in range(5)]
    keys = client.submit_many(jobs)
    assert keys == [job.key() for job in jobs]
    assert client.counts().pending == 5


def test_server_orders_claims_largest_estimated_cost_first(server, client,
                                                           config):
    """Submit cheapest-first; the server hands them out biggest-first —
    cross-submitter packing happens at claim time, not submit time."""
    small = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    medium = ExperimentJob(Scenario.mixed(("RE", "ITP"), config,
                                          seed_offset=2))
    large = ExperimentJob(Scenario.mixed(("RE", "ITP", "D2"), config,
                                         seed_offset=3))
    assert small.cost_units() < medium.cost_units() < large.cost_units()
    client.submit_many([small, medium, large])
    drained = [client.claim("w").job for _ in range(3)]
    assert drained == [large, medium, small]


def test_failures_cross_the_wire_as_markers(server, client, config):
    job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    client.submit(job)
    claimed = client.claim("w1")
    try:
        raise RuntimeError("injected failure")
    except RuntimeError as error:
        client.fail(claimed, error)
    counts = client.counts()
    assert (counts.claimed, counts.failed) == (0, 1)
    marker = client.failure(job.key())
    assert "injected failure" in marker["error"]
    assert marker["worker"] == "w1"
    assert "RuntimeError" in marker["traceback"]


def test_invalidate_drops_a_completed_result(server, client, config):
    job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    client.submit(job)
    claimed = client.claim("w1")
    client.complete(claimed, execute_job(job))
    assert client.result_entry(job.key()) is not None
    client.invalidate(job.key())
    assert client.result_entry(job.key()) is None


def test_server_reported_errors_raise_without_retry(server, client):
    before = time.monotonic()
    with pytest.raises(QueueRemoteError):
        # A COMPLETE with no body is a server-side KeyError: the server
        # answers with an ERROR frame, which must surface immediately
        # (retrying a request the server processed repeats the failure).
        client._request(MessageType.COMPLETE, {})
    assert time.monotonic() - before < 1.0       # no backoff sleeps


# ---------------------------------------------------------------------------
# Heartbeats and liveness
# ---------------------------------------------------------------------------

def test_heartbeat_refreshes_only_the_named_claims(server, client, config):
    job_a = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    job_b = ExperimentJob(Scenario.single("ITP", config, seed_offset=2))
    client.submit_many([job_a, job_b])
    claim_a = client.claim("w1")
    claim_b = client.claim("w1")

    # Age both claim files past a 5s lease, then heartbeat only one.
    queue = server.queue
    old = time.time() - 60.0
    for path in queue.claimed_dir.iterdir():
        os.utime(path, (old, old))
    assert client.heartbeat("w1", keys=[claim_a.key]) == [claim_a.key]

    # The acknowledged claim survives the lease sweep; the orphan —
    # exactly what a lost CLAIM response leaves behind — is requeued.
    assert client.requeue_stale(lease_s=5.0) == [claim_b.key]
    counts = client.counts()
    assert (counts.pending, counts.claimed) == (1, 1)
    assert claim_b.key in queue.pending_keys()


def test_heartbeat_with_empty_keys_is_a_pure_liveness_ping(server, client,
                                                           config):
    job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    client.submit(job)
    claimed = client.claim("w1")
    old = time.time() - 60.0
    for path in server.queue.claimed_dir.iterdir():
        os.utime(path, (old, old))
    assert client.heartbeat("w1", keys=[]) == []  # alive, but owns nothing
    assert client.requeue_stale(lease_s=5.0) == [claimed.key]


def test_silent_workers_claims_requeue_within_heartbeat_timeout(tmp_path,
                                                                config):
    with QueueServer(tmp_path / "q", heartbeat_timeout_s=0.5,
                     sweep_interval_s=0.1) as server:
        client = SocketQueue(server.address)
        job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
        client.submit(job)
        claimed = client.claim("silent-worker")
        assert claimed is not None

        # Heartbeats hold the claim well past the timeout...
        for _ in range(4):
            time.sleep(0.3)
            client.heartbeat("silent-worker", keys=[claimed.key])
        assert client.counts().claimed == 1

        # ...then silence: the sweeper requeues within ~timeout+sweep,
        # a fraction of any real lease.
        _wait_for(lambda: client.counts().pending == 1, timeout_s=10.0,
                  what="the silent worker's claim to requeue")
        rescued = client.claim("rescuer")
        assert rescued.key == claimed.key
        client.complete(rescued, execute_job(job))
        client.close()


def test_restarted_server_adopts_existing_claims(tmp_path, config):
    """A new server inherits claim files from its predecessor: their
    workers are registered provisionally, and ones that never heartbeat
    again requeue after the heartbeat timeout — not the full lease."""
    queue_root = tmp_path / "q"
    job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
    with QueueServer(queue_root, heartbeat_timeout_s=60.0) as first:
        client = SocketQueue(first.address)
        client.submit(job)
        assert client.claim("ghost-worker") is not None
        client.close()

    with QueueServer(queue_root, heartbeat_timeout_s=0.5,
                     sweep_interval_s=0.1) as second:
        client = SocketQueue(second.address)
        _wait_for(lambda: client.counts().pending == 1, timeout_s=10.0,
                  what="the adopted ghost claim to requeue")
        client.close()


def test_run_worker_heartbeats_while_executing(tmp_path, config):
    """An in-flight job far slower than the heartbeat timeout survives,
    because the worker's pump keeps acknowledging it."""
    with QueueServer(tmp_path / "q", heartbeat_timeout_s=1.0,
                     sweep_interval_s=0.2) as server:
        client = SocketQueue(server.address)
        # ~3s of wall time (duration=120 simulated seconds): several
        # heartbeat timeouts long.
        slow = ExperimentJob(Scenario.single("RE", config, seed_offset=1),
                             duration=120.0)
        client.submit(slow)
        executed = run_worker(client, worker_id="steady", poll_s=0.05,
                              max_jobs=1, heartbeat_s=0.2)
        assert executed == 1
        counts = client.counts()
        assert (counts.completed, counts.failed, counts.pending) == (1, 0, 0)
        client.close()


# ---------------------------------------------------------------------------
# Client retry/backoff: connection loss degrades to a delay, not data loss
# ---------------------------------------------------------------------------

def test_unreachable_server_raises_connection_error(tmp_path):
    with QueueServer(tmp_path / "q") as server:
        dead_addr = server.address                # port freed on stop
    client = SocketQueue(dead_addr, retries=2, backoff_s=0.01, timeout_s=1.0)
    with pytest.raises(QueueConnectionError, match="unreachable"):
        client.counts()


def test_requests_ride_out_a_server_restart(tmp_path, config):
    """A request that begins while the server is down succeeds once it
    comes back inside the retry window — the worker never notices."""
    import threading

    queue_root = tmp_path / "q"
    with QueueServer(queue_root) as first:
        addr = first.address
        client = SocketQueue(addr, retries=10, backoff_s=0.05)
        job = ExperimentJob(Scenario.single("RE", config, seed_offset=1))
        client.submit(job)

    # Server is down.  Restart it on the same port shortly after the
    # client has started retrying.
    host, port = parse_addr(addr)
    second = {}

    def restart():
        time.sleep(0.4)
        second["server"] = QueueServer(queue_root, host=host,
                                       port=port).start()

    restarter = threading.Thread(target=restart)
    restarter.start()
    try:
        claimed = client.claim("patient-worker")  # spans the outage
        assert claimed is not None
        assert claimed.job == job
        client.complete(claimed, execute_job(job))
        assert client.counts().completed == 1
    finally:
        restarter.join()
        second["server"].stop()
        client.close()


# ---------------------------------------------------------------------------
# Suite equivalence and the external fleet
# ---------------------------------------------------------------------------

def test_serial_and_socket_suites_agree(tmp_path, jobs):
    serial = ExperimentSuite(backend="serial").run(jobs)
    with ExperimentSuite(workers=2, backend="socket",
                         queue_dir=tmp_path / "q", timeout_s=300) as suite:
        socketed = suite.run(jobs)
        assert suite.stats.executed == len(jobs)
    assert _report_dicts(serial) == _report_dicts(socketed)
    assert [r.as_dict() for r in serial] == [r.as_dict() for r in socketed]


def test_external_addr_workers_drain_a_suite_submission(tmp_path, jobs):
    """spawn_workers=False + an external --addr worker fleet: the
    multi-machine deployment shape, over TCP instead of a shared
    filesystem."""
    with QueueServer(tmp_path / "q") as server:
        workers = [spawn_worker(addr=server.address,
                                worker_id=f"external-{i}", poll_s=0.02,
                                idle_timeout_s=60.0, heartbeat_s=0.5,
                                log_dir=tmp_path / "logs")
                   for i in range(2)]
        try:
            with ExperimentSuite(backend="socket",
                                 queue_addr=server.address,
                                 spawn_workers=False,
                                 timeout_s=300) as suite:
                socketed = suite.run(jobs)
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                proc.wait(timeout=10)
        assert server.queue.counts().completed == len(jobs)

    serial = ExperimentSuite(backend="serial").run(jobs)
    assert _report_dicts(socketed) == _report_dicts(serial)


def test_suite_backend_validation(tmp_path):
    with pytest.raises(ValueError, match="queue_addr"):
        ExperimentSuite(backend="serial", queue_addr="127.0.0.1:1")
    with pytest.raises(ValueError, match="exclusive"):
        ExperimentSuite(queue_dir=tmp_path / "q", queue_addr="127.0.0.1:1",
                        backend="socket")
    assert ExperimentSuite(queue_addr="127.0.0.1:1").backend == "socket"
    assert ExperimentSuite(backend="socket").backend == "socket"
    assert ExperimentSuite(queue_dir=tmp_path / "q",
                           backend="socket").backend == "socket"


# ---------------------------------------------------------------------------
# Chaos: SIGKILL a worker AND restart the server mid-drain
# ---------------------------------------------------------------------------

def test_chaos_worker_sigkill_and_server_restart_mid_drain(tmp_path, config):
    """Kill -9 a heartbeating worker mid-job, then kill the server too
    and restart it on the same port: the adopted claim requeues via the
    heartbeat timeout, a rescue worker drains everything, and every
    result is bit-identical to serial execution."""
    queue_root = tmp_path / "q"
    # Medium jobs (~1.5s wall each) so the SIGKILL lands mid-execution.
    jobs = [ExperimentJob(Scenario.single(name, config, seed_offset=i),
                          duration=60.0)
            for i, name in enumerate(["RE", "ITP", "D2", "STK"])]

    first = QueueServer(queue_root, heartbeat_timeout_s=1.0,
                        sweep_interval_s=0.2).start()
    addr = first.address
    client = SocketQueue(addr, retries=10, backoff_s=0.05)
    keys = client.submit_many(jobs)
    assert len(keys) == len(jobs)

    victim = spawn_worker(addr=addr, worker_id="victim", poll_s=0.02,
                          heartbeat_s=0.2, log_dir=tmp_path / "logs")
    try:
        _wait_for(lambda: client.counts().claimed >= 1,
                  what="the victim to claim a job")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait()

    # Chaos, part two: the server dies with a claim outstanding...
    first.stop()
    claimed_before = DirectoryQueue(queue_root).counts().claimed
    assert claimed_before >= 1

    # ...and its replacement adopts the claim files it finds.  The dead
    # victim never heartbeats again, so its claim requeues within the
    # heartbeat timeout instead of any lease.
    host, port = parse_addr(addr)
    with QueueServer(queue_root, host=host, port=port,
                     heartbeat_timeout_s=1.0, sweep_interval_s=0.2):
        _wait_for(lambda: client.counts().claimed == 0, timeout_s=15.0,
                  what="the dead victim's claim to requeue")
        rescuer = spawn_worker(addr=addr, worker_id="rescuer", poll_s=0.02,
                               heartbeat_s=0.2, log_dir=tmp_path / "logs")
        try:
            _wait_for(lambda: client.counts().completed == len(jobs),
                      timeout_s=120.0, what="the rescuer to drain the queue")
        finally:
            rescuer.terminate()
            rescuer.wait(timeout=10)

        counts = client.counts()
        assert (counts.pending, counts.claimed, counts.failed) == (0, 0, 0)
        assert counts.completed == len(jobs)
        for job in jobs:
            entry = client.result_entry(job.key())
            reference = execute_job(job)
            assert entry["result"].as_dict() == reference.as_dict()
            assert [r.as_dict() for r in entry["result"].reports] \
                == [r.as_dict() for r in reference.reports]
    client.close()
