"""The fleet subsystem: sampling determinism, SQL cohort analytics, gc.

The three contracts under test: (1) ``sample(spec, n, seed)`` yields a
byte-identical ``content_hash`` sequence in any process — proven in a
spawned interpreter — and every spec field participates in the spec
hash; (2) a sampled population drains through the existing suite
backends unchanged and ``fleet_report`` then answers per-cohort
p50/p95/p99 *without ever unpickling a payload* — proven by
monkeypatching ``pickle.loads`` to raise during reporting; (3) the
store's metrics index is written at ``put`` time, reconstructable by
``results backfill``, and bounded by ``results gc``.
"""

from __future__ import annotations

import itertools
import json
import pickle
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.experiments import ExperimentSuite, ResultStore
from repro.experiments.__main__ import main
from repro.experiments.cost import CostCalibration, CostModel
from repro.experiments.jobs import ExperimentJob
from repro.experiments.store import build_entry, numeric_metrics
from repro.fleet import (
    MetricSelector,
    PopulationSpec,
    cohort_value,
    compare_reports,
    fleet_report,
    like_pattern,
    population_digest,
    population_jobs,
    quantile,
    sample,
    sample_one,
    scenarios_by_key,
)

SPEC = PopulationSpec(
    name="test-pop",
    benchmarks=("RE", "D2", "STK"),
    mix_sizes={1: 2, 2: 1},
    instance_counts={1: 1},
    networks={"lan_1gbps": 3, "cellular_5g": 1},
    variants={"default": 2, "optimized": 1},
    config={"duration_s": 0.3, "warmup_s": 0.05},
)


# -- spec value-object behaviour ----------------------------------------------------------


def test_spec_roundtrips_through_dict_and_json():
    rebuilt = PopulationSpec.from_dict(
        json.loads(json.dumps(SPEC.to_dict())))
    assert rebuilt == SPEC
    assert rebuilt.content_hash() == SPEC.content_hash()


def test_spec_accepts_lists_as_equal_weights():
    spec = PopulationSpec.from_dict(
        {"benchmarks": ["RE", "D2"], "mix_sizes": [1, 2],
         "networks": ["lan_1gbps", "cellular_5g"]})
    assert spec.mix_sizes == ((1, 1.0), (2, 1.0))
    assert spec.networks == (("cellular_5g", 1.0), ("lan_1gbps", 1.0))


def test_spec_hash_ignores_weight_table_key_order():
    flipped = PopulationSpec.from_dict(
        {**SPEC.to_dict(),
         "networks": {"cellular_5g": 1, "lan_1gbps": 3}})
    assert flipped.content_hash() == SPEC.content_hash()


def test_spec_rejects_unknown_fields():
    with pytest.raises(KeyError, match="bogus"):
        PopulationSpec.from_dict({"bogus": 1})
    with pytest.raises(KeyError, match="step"):
        PopulationSpec.from_dict({"seed": {"step": 2}})


@pytest.mark.parametrize("kwargs, match", [
    ({"benchmarks": ("RE", "XX")}, "unknown benchmarks"),
    ({"mix_sizes": {9: 1}}, "outside the pool"),
    ({"mix_sizes": {0: 1}}, "outside the pool"),
    ({"instance_counts": {0: 1}}, "at least 1"),
    ({"networks": {"dialup": 1}}, "unknown network"),
    ({"machines": {"mainframe": 1}}, "unknown machine"),
    ({"variants": {"turbo": 1}}, "unknown session variant"),
    ({"networks": {"lan_1gbps": 0}}, "positive"),
    ({"networks": {"lan_1gbps": float("nan")}}, "positive"),
    ({"containerized": 1.5}, "probability"),
    ({"config": {"fps": 60}}, "unknown config fields"),
    ({"seed_stride": -1}, "non-negative"),
    ({"name": ""}, "non-empty"),
])
def test_spec_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        PopulationSpec(**kwargs)


def test_spec_hash_is_sensitive_to_every_field():
    variations = {
        "name": {"name": "other"},
        "benchmarks": {"benchmarks": ("RE", "D2")},
        "mix_sizes": {"mix_sizes": {1: 1}},
        "instance_counts": {"instance_counts": {1: 1, 2: 1}},
        "networks": {"networks": {"lan_1gbps": 1}},
        "machines": {"machines": {"no_contention": 1}},
        "variants": {"variants": {"default": 1}},
        "containerized": {"containerized": 0.5},
        "config": {"config": {"duration_s": 0.4, "warmup_s": 0.05}},
        "seed_base": {"seed_base": 7},
        "seed_offset_base": {"seed_offset_base": 100},
        "seed_stride": {"seed_stride": 2},
        "agents": {"agents": {"human": 1, "intelligent": 1}},
    }
    # Every spec field is covered (schema is deliberately hash-exempt).
    assert set(variations) == set(PopulationSpec.__dataclass_fields__)
    hashes = {"base": SPEC.content_hash()}
    for name, kwargs in variations.items():
        hashes[name] = replace(SPEC, **kwargs).content_hash()
    assert len(set(hashes.values())) == len(hashes)


# -- sampling determinism -----------------------------------------------------------------


def test_sample_is_deterministic_and_streamable():
    full = [s.content_hash() for s in sample(SPEC, 20, seed=5)]
    again = [s.content_hash() for s in sample(SPEC, 20, seed=5)]
    sliced = [s.content_hash()
              for s in itertools.islice(sample(SPEC, 10**6, seed=5), 20)]
    assert full == again == sliced
    # Index independence: any single index can be regenerated alone.
    assert sample_one(SPEC, 13, seed=5).content_hash() == full[13]
    # A different sampling seed is a different population.
    assert [s.content_hash() for s in sample(SPEC, 20, seed=6)] != full


def test_sample_draws_within_the_spec():
    scenarios = list(sample(SPEC, 40, seed=1))
    for index, scenario in enumerate(scenarios):
        assert {p.benchmark for p in scenario.placements} <= set(SPEC.pool())
        assert len(scenario.placements) in (1, 2)
        assert scenario.network in ("lan_1gbps", "cellular_5g")
        assert scenario.machine == "paper"
        assert scenario.seed.offset == index     # stride 1, offset base 0
        assert scenario.config.duration_s == 0.3
    # Both mix sizes, both networks and both variants actually occur.
    assert {len(s.placements) for s in scenarios} == {1, 2}
    assert {s.network for s in scenarios} == {"lan_1gbps", "cellular_5g"}
    assert len({cohort_value(s, "variant") for s in scenarios}) == 2


def test_seed_policy_separates_equal_draws():
    hashes = [s.content_hash() for s in sample(SPEC, 30, seed=2)]
    assert len(set(hashes)) == 30
    collapsed = replace(SPEC, seed_stride=0)
    hashes = [s.content_hash() for s in sample(collapsed, 30, seed=2)]
    assert len(set(hashes)) < 30     # equal draws now share a cache key


def test_sample_is_cross_process_deterministic():
    """Same spec + seed ⇒ byte-identical hash sequence in a spawned
    interpreter — the property that lets fleet report rebuild the
    population a fleet run on another machine drained."""
    script = (
        "import json, sys\n"
        "from repro.fleet import PopulationSpec, sample\n"
        "spec = PopulationSpec.from_dict(json.loads(sys.argv[1]))\n"
        "for s in sample(spec, 12, seed=9):\n"
        "    print(s.content_hash())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, json.dumps(SPEC.to_dict())],
        capture_output=True, text=True, check=True)
    local = [s.content_hash() for s in sample(SPEC, 12, seed=9)]
    assert proc.stdout.split() == local
    assert population_digest(sample(SPEC, 12, seed=9)) \
        == population_digest(sample(SPEC, 12, seed=9))


# -- analytics primitives -----------------------------------------------------------------


def test_quantile_interpolates():
    assert quantile([1.0], 0.99) == 1.0
    assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
    assert quantile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
    assert quantile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
    assert quantile([0.0, 10.0], 0.25) == 2.5
    with pytest.raises(ValueError):
        quantile([], 0.5)
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)


def test_like_pattern_escapes_sql_specials():
    assert like_pattern("reports[*].rtt.mean") == "reports[%].rtt.mean"
    assert like_pattern("runtime_s") == "runtime\\_s"
    assert like_pattern("50%*") == "50\\%%"


def test_metric_selector_parse():
    assert MetricSelector.parse("rtt=reports[*].rtt.mean") \
        == MetricSelector("rtt", "reports[*].rtt.mean")
    assert MetricSelector.parse("average_power_watts") \
        == MetricSelector("average_power_watts", "average_power_watts")


def test_numeric_metrics_drops_non_finite_leaves():
    entry = {"result": {"ok": 1.5, "bad": float("nan"),
                        "worse": float("inf"), "label": "x",
                        "flag": True}}
    assert numeric_metrics(entry) == {"ok": 1.5, "flag": 1.0}


# -- the store's metrics index ------------------------------------------------------------


@pytest.fixture(scope="module")
def drained(tmp_path_factory):
    """A 12-scenario population drained once, shared by the read-only
    store/report tests below."""
    cache_dir = tmp_path_factory.mktemp("fleet-store")
    jobs = population_jobs(SPEC, 12, seed=4)
    with ExperimentSuite(cache_dir=cache_dir, backend="serial") as suite:
        suite.run(jobs)
    return cache_dir, scenarios_by_key(jobs)


def test_put_indexes_metrics_in_sql(drained):
    cache_dir, index = drained
    store = ResultStore(cache_dir)
    conn = store.connection()
    for key in index:
        entry = store.get_entry(key)
        stored = dict(conn.execute(
            "SELECT name, value FROM metrics WHERE key = ?", (key,)))
        assert stored == numeric_metrics(entry)
        assert stored     # host results always have numeric leaves


def test_select_newest_and_metric_values(drained):
    cache_dir, index = drained
    store = ResultStore(cache_dir)
    selection = store.select_newest(list(index))
    assert set(selection) == set(index)
    # A key the population asks about but the store never saw is absent.
    assert store.select_newest(["no-such-key"]) == {}
    values = store.metric_values(selection,
                                 like_pattern("reports[*].rtt.mean"))
    assert set(values) == set(index)
    assert all(len(v) == len(index[k].benchmarks)
               for k, v in values.items())
    runtimes = store.provenance_values(selection, "runtime_s")
    assert all(v[0] > 0 for v in runtimes.values())
    with pytest.raises(ValueError, match="unknown provenance metric"):
        store.provenance_values(selection, "entry")


def test_backfill_reconstructs_the_metrics_index(drained):
    cache_dir, _ = drained
    store = ResultStore(cache_dir)
    conn = store.connection()
    before = set(conn.execute(
        "SELECT key, git_rev, name, value FROM metrics"))
    rows = {(key, rev) for key, rev, _, _ in before}
    assert store.backfill_metrics().backfilled == 0   # nothing to do
    conn.execute("DELETE FROM metrics")
    report = store.backfill_metrics()
    assert report.backfilled == len(rows) > 0   # one pass per (key, rev)
    after = set(conn.execute(
        "SELECT key, git_rev, name, value FROM metrics"))
    assert after == before


def test_gc_keeps_newest_revisions(tmp_path, caplog):
    store = ResultStore(tmp_path)
    from repro.experiments import execute_job
    job = ExperimentJob(sample_one(SPEC, 0, seed=11))
    entry = build_entry(job, execute_job(job), runtime_s=0.1)
    old = dict(entry, git_rev="a" * 40)
    new = dict(entry, git_rev="b" * 40)
    assert store.put_entry(old) and store.put_entry(new)
    assert store.select_newest([job.key()]) == {job.key(): "b" * 40}
    assert store.select_newest([job.key()], git_rev="aaaa") \
        == {job.key(): "a" * 40}

    with caplog.at_level("INFO", logger="repro.experiments.store"):
        preview = store.gc(dry_run=True)
    assert (preview.dropped_rows, preview.kept_rows) == (1, 1)
    assert preview.dropped_metrics > 0 and not preview.vacuumed
    assert any("would drop" in record.message for record in caplog.records)
    assert store.select_newest([job.key()], git_rev="aaaa")  # untouched

    assert store.gc(keep_revs=2).dropped_rows == 0            # both fit
    report = store.gc(keep_revs=1)
    assert report.dropped_rows == 1 and report.vacuumed
    assert report.dropped_metrics == preview.dropped_metrics
    assert store.select_newest([job.key()], git_rev="aaaa") == {}
    assert store.select_newest([job.key()]) == {job.key(): "b" * 40}
    conn = store.connection()
    assert conn.execute("SELECT COUNT(*) FROM metrics "
                        "WHERE git_rev = ?", ("a" * 40,)).fetchone()[0] == 0
    assert conn.execute("SELECT COUNT(*) FROM metrics "
                        "WHERE git_rev = ?", ("b" * 40,)).fetchone()[0] > 0
    with pytest.raises(ValueError):
        store.gc(keep_revs=0)


def test_cost_model_blends_a_default_rate():
    calibration = CostCalibration()
    calibration.observe("host", units=10.0, runtime_s=20.0)
    calibration.observe("accuracy", units=10.0, runtime_s=40.0)
    model = calibration.model()
    assert model.rates == {"host": 2.0, "accuracy": 4.0}
    assert model.default_rate == pytest.approx(3.0)
    assert model.estimate_units("never_seen", 2.0) == pytest.approx(6.0)
    assert CostModel().estimate_units("anything", 2.0) == 2.0


# -- fleet report: cohorts by pure SQL ----------------------------------------------------


def test_fleet_report_covers_cohorts_without_unpickling(drained,
                                                        monkeypatch):
    cache_dir, index = drained

    def refuse(*args, **kwargs):
        raise AssertionError("fleet report must not unpickle payloads")

    monkeypatch.setattr(pickle, "loads", refuse)
    report = fleet_report(ResultStore(cache_dir), index)
    assert (report.sampled, report.covered) == (len(index), len(index))
    by_metric = {s.metric for s in report.stats}
    assert by_metric == {"rtt_s", "client_fps", "power_w", "runtime_s"}
    networks = {s.cohort for s in report.stats if s.dimension == "network"}
    assert networks == {s.network for s in index.values()}
    for stat in report.stats:
        assert stat.count > 0
        assert stat.min <= stat.p50 <= stat.p95 <= stat.p99 <= stat.max


def test_fleet_report_rejects_unknown_dimension(drained):
    cache_dir, index = drained
    with pytest.raises(ValueError, match="unknown cohort dimension"):
        fleet_report(ResultStore(cache_dir), index, dimensions=("color",))


def test_compare_reports_is_a_perf_ledger(drained):
    cache_dir, index = drained
    store = ResultStore(cache_dir)
    report = fleet_report(store, index)
    deltas = compare_reports(report, report)
    assert deltas
    for delta in deltas:
        assert delta["p50"] == delta["p50_baseline"]
        assert delta["p50_delta_pct"] in (0.0, None)


# -- acceptance: a 500-scenario population on the socket backend --------------------------


def test_fleet_run_500_scenarios_socket_then_sql_only_report(
        tmp_path, monkeypatch):
    spec = replace(SPEC, config={"duration_s": 0.2, "warmup_s": 0.05},
                   mix_sizes={1: 3, 2: 1})
    jobs = population_jobs(spec, 500, seed=3)
    index = scenarios_by_key(jobs)
    assert len(index) == 500
    with ExperimentSuite(cache_dir=tmp_path, backend="socket",
                         workers=4) as suite:
        results = suite.run(jobs)
        assert len(results) == 500
        store = suite.store
        assert suite.stats.executed == 500

        def refuse(*args, **kwargs):
            raise AssertionError("fleet report must not unpickle payloads")

        monkeypatch.setattr(pickle, "loads", refuse)
        report = fleet_report(store, index)
    assert report.covered == report.sampled == 500
    for dimension in ("network", "machine", "variant", "arity"):
        stats = [s for s in report.stats
                 if s.dimension == dimension and s.metric == "rtt_s"]
        assert stats, f"no {dimension} cohorts"
        assert all(s.p50 <= s.p99 for s in stats)


# -- CLI ----------------------------------------------------------------------------------


def run_cli(*argv):
    return main(list(argv))


def spec_file(tmp_path):
    path = tmp_path / "pop.json"
    path.write_text(json.dumps(SPEC.to_dict()))
    return str(path)


def test_fleet_sample_cli_is_deterministic(tmp_path, capsys):
    path = spec_file(tmp_path)
    assert run_cli("fleet", "sample", path, "--n", "6") == 0
    first = capsys.readouterr().out
    assert run_cli("fleet", "sample", path, "--n", "6") == 0
    assert capsys.readouterr().out == first
    assert "population digest: " in first
    assert run_cli("fleet", "sample", path, "--n", "6", "--show", "2") == 0
    assert "(showing 2)" in capsys.readouterr().out


def test_fleet_run_and_report_cli(tmp_path, capsys):
    path = spec_file(tmp_path)
    cache = str(tmp_path / "cache")
    assert run_cli("fleet", "run", path, "--n", "8",
                   "--cache-dir", cache) == 0
    out_run = capsys.readouterr().out
    assert "8 unique job(s)" in out_run
    # Replay from the warm store prints identical stdout.
    assert run_cli("fleet", "run", path, "--n", "8",
                   "--cache-dir", cache) == 0
    assert capsys.readouterr().out == out_run

    report_file = tmp_path / "report.json"
    assert run_cli("fleet", "report", path, "--n", "8", "--store", cache,
                   "--report", str(report_file)) == 0
    out = capsys.readouterr().out
    assert "8/8 job(s) covered" in out
    assert "rtt_s" in out and "p99" in out
    document = json.loads(report_file.read_text())
    assert document["covered"] == 8
    assert document["population"]["name"] == SPEC.name
    assert document["stats"]

    # The JSON report is byte-identical across replays of the same store.
    first = report_file.read_bytes()
    assert run_cli("fleet", "report", path, "--n", "8", "--store", cache,
                   "--report", str(report_file)) == 0
    capsys.readouterr()
    assert report_file.read_bytes() == first

    # Zero coverage (a disjoint seed-offset range) exits 1.
    disjoint = tmp_path / "disjoint.json"
    disjoint.write_text(json.dumps(
        {**SPEC.to_dict(), "seed": {"offset_base": 1000}}))
    assert run_cli("fleet", "report", str(disjoint), "--n", "8",
                   "--store", cache) == 1
    assert "0/8 job(s) covered" in capsys.readouterr().out

    # --baseline against the only revision on file: zero deltas.
    baseline_rev = ResultStore(cache).git_revs()[0][:12]
    assert run_cli("fleet", "report", path, "--n", "8", "--store", cache,
                   "--baseline", baseline_rev) == 0
    assert "vs baseline" in capsys.readouterr().out


def test_fleet_cli_rejects_bad_input(tmp_path, capsys):
    assert run_cli("fleet", "sample", "no-such-file.json") == 2
    assert "cannot interpret population spec" in capsys.readouterr().err
    path = spec_file(tmp_path)
    assert run_cli("fleet", "run", path, "--n", "4") == 2
    assert "needs --cache-dir" in capsys.readouterr().err
    assert run_cli("fleet", "sample",
                   '{"networks": {"dialup": 1}}') == 2
    assert "unknown network" in capsys.readouterr().err


def test_results_list_offset_cli(tmp_path, capsys):
    path = spec_file(tmp_path)
    cache = str(tmp_path / "cache")
    assert run_cli("fleet", "run", path, "--n", "5",
                   "--cache-dir", cache) == 0
    capsys.readouterr()
    assert run_cli("results", "list", "--store", cache) == 0
    assert "5 result row(s)" in capsys.readouterr().out
    assert run_cli("results", "list", "--store", cache,
                   "--limit", "2", "--offset", "4") == 0
    out = capsys.readouterr().out
    assert "(showing 1 from offset 4)" in out
    assert run_cli("results", "list", "--store", cache,
                   "--offset", "-1") == 2
    assert "--offset must be non-negative" in capsys.readouterr().err


def test_results_gc_and_backfill_cli(tmp_path, capsys):
    path = spec_file(tmp_path)
    cache = str(tmp_path / "cache")
    assert run_cli("fleet", "run", path, "--n", "4",
                   "--cache-dir", cache) == 0
    capsys.readouterr()
    store = ResultStore(cache)
    for entry in list(store.entries()):
        store.put_entry(dict(entry, git_rev="0" * 40))
    assert run_cli("results", "gc", "--store", cache, "--dry-run") == 0
    out = capsys.readouterr().out
    assert "would drop 4 superseded result row(s)" in out
    assert run_cli("results", "gc", "--store", cache) == 0
    out = capsys.readouterr().out
    assert "dropped 4 superseded result row(s)" in out
    assert "vacuumed" in out
    assert len(store.rows()) == 4

    store.connection().execute("DELETE FROM metrics")
    assert run_cli("results", "backfill", "--store", cache) == 0
    assert "indexed metrics for 4 row(s)" in capsys.readouterr().out
    assert run_cli("results", "backfill", "--store", cache) == 0
    assert "indexed metrics for 0 row(s)" in capsys.readouterr().out
    assert run_cli("results", "gc", "--store", cache, "--keep", "0") == 2
    assert "--keep must be at least 1" in capsys.readouterr().err
