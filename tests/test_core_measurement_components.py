"""Tests for GPU timers, PMU readers, monitors, statistics and reporting."""

import pytest

from repro.core.gpu_timer import GpuTimeQueryManager
from repro.core.measurements import LatencyStats, percentage_error, summarize
from repro.core.monitors import FpsCounter, ResourceMonitor
from repro.core.pmu import CpuPmuReader, GpuPmuReader
from repro.core.reporting import format_breakdown, format_ms, format_percentage, format_table
from repro.graphics.frame import Frame
from repro.graphics.opengl import GlContext
from repro.hardware.cpu import StageCpuProfile
from repro.hardware.gpu import GpuWorkloadProfile
from repro.hardware.machine import ServerMachine
from repro.hardware.memory import LlcModel


# --- GPU time queries ---------------------------------------------------------------

@pytest.fixture
def gl_stack(env):
    machine = ServerMachine(env)
    context = machine.gpu.create_context("app", GpuWorkloadProfile())
    gl = GlContext(env, context, machine.pcie, base_render_time_s=0.010)
    return machine, gl


def _run_frames(env, gl, timer, frames=4, work_between=0.02):
    collected = []

    def proc(env):
        for _ in range(frames):
            frame = Frame()
            timer.begin_frame(frame)
            yield env.timeout(work_between)
            gpu_time = yield from timer.collect()
            collected.append(gpu_time)

    env.process(proc(env))
    env.run()
    return collected


def test_double_buffered_queries_do_not_stall(env, gl_stack):
    _machine, gl = gl_stack
    timer = GpuTimeQueryManager(env, gl, double_buffered=True)
    _run_frames(env, gl, timer)
    # With 20 ms between frames the previous query is always ready.
    assert timer.stall_time_total == pytest.approx(0.0, abs=1e-9)
    assert timer.collected >= 2
    assert timer.mean_gpu_time() == pytest.approx(0.010, rel=0.05)


def test_single_buffered_queries_stall_the_caller(env, gl_stack):
    _machine, gl = gl_stack
    timer = GpuTimeQueryManager(env, gl, double_buffered=False)
    _run_frames(env, gl, timer, work_between=0.001)
    # Reading the in-flight frame's query waits for its rendering.
    assert timer.stall_time_total > 0.0


def test_gpu_time_lookup_by_frame(env, gl_stack):
    _machine, gl = gl_stack
    timer = GpuTimeQueryManager(env, gl, double_buffered=True)
    _run_frames(env, gl, timer, frames=3)
    known_frames = list(timer.gpu_times_by_frame)
    assert known_frames
    assert timer.gpu_time_for_frame(known_frames[0]) > 0
    assert timer.gpu_time_for_frame(10**9) is None


# --- PMU readers ----------------------------------------------------------------------

def test_cpu_pmu_reader_reports_topdown_and_l3(env):
    machine = ServerMachine(env)
    machine.memory.register_workload(8.0)
    thread = machine.cpu.thread("bench.app", owner="bench.app")

    def proc(env):
        yield from thread.run(0.05, StageCpuProfile(demand=1.0))

    env.process(proc(env))
    env.run()
    reader = CpuPmuReader(machine.cpu, machine.memory, owner="bench.app",
                          llc=LlcModel(base_miss_rate=0.75, working_set_mb=8.0))
    sample = reader.read()
    shares = (sample.retiring + sample.frontend_bound + sample.backend_bound
              + sample.bad_speculation)
    assert shares == pytest.approx(1.0)
    assert sample.l3_miss_rate == pytest.approx(0.75)
    assert sample.total_cycles > 0
    assert 0.0 < reader.instructions_per_cycle() < 2.0


def test_gpu_pmu_reader_handles_unreadable_context(env):
    machine = ServerMachine(env)
    readable = machine.gpu.create_context("a", GpuWorkloadProfile())
    unreadable = machine.gpu.create_context(
        "b", GpuWorkloadProfile(pmu_readable=False))
    assert GpuPmuReader(readable).read().l2_miss_rate is not None or True
    sample = GpuPmuReader(unreadable).read()
    assert sample.l2_miss_rate is None and not sample.available


# --- monitors -------------------------------------------------------------------------------

def test_fps_counter_average_and_window(env):
    counter = FpsCounter(env)

    def proc(env):
        counter.start()
        for _ in range(30):
            yield env.timeout(1.0 / 30.0)
            counter.record_frame()

    env.process(proc(env))
    env.run()
    assert counter.frame_count == 30
    assert counter.fps(1.0) == pytest.approx(30.0)
    assert counter.windowed_fps(window=0.5) == pytest.approx(30.0, rel=0.2)
    assert len(counter.interframe_times()) == 29


def test_fps_counter_empty_is_zero(env):
    counter = FpsCounter(env)
    assert counter.fps() == 0.0
    with pytest.raises(ValueError):
        counter.windowed_fps(0.0)


def test_windowed_fps_matches_linear_scan_on_uneven_spacing(env):
    """The bisect window boundary is exactly the old t >= cutoff scan,
    including ties right on the cutoff."""
    counter = FpsCounter(env)

    def proc(env):
        for delay in (0.1, 0.1, 0.3, 0.0, 0.5, 1.0, 0.0, 0.2):
            yield env.timeout(delay)
            counter.record_frame()

    env.process(proc(env))
    env.run()
    for window in (0.2, 0.5, 1.0, 1.2, 10.0):
        cutoff = env.now - window
        expected = len([t for t in counter.timestamps if t >= cutoff])
        assert counter.windowed_fps(window) == pytest.approx(expected / window)


def test_event_rate_monitor_counts_dispatches_via_the_bus(env):
    from repro.core.monitors import EventRateMonitor
    from repro.sim.trace import TraceRecorder

    monitor = EventRateMonitor(env)
    recorder = TraceRecorder(env)  # chains alongside, does not conflict

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    # Initialize + two timeouts + process termination, same as the trace.
    assert monitor.total == len(recorder) == 4
    assert monitor.counts == {"Initialize": 1, "Timeout": 2, "Process": 1}
    assert monitor.events_per_second() == pytest.approx(2.0)

    monitor.close()
    monitor.close()  # idempotent
    env.timeout(1.0)
    env.run()
    assert monitor.total == 4      # detached: saw nothing new
    assert len(recorder) == 5      # recorder still attached


def test_resource_monitor_samples_periodically(env):
    machine = ServerMachine(env)
    monitor = ResourceMonitor(env, machine, interval=1.0)
    monitor.start()
    env.run(until=5.5)
    assert len(monitor.samples) >= 5
    assert monitor.mean_cpu_utilization() >= 0.0
    assert monitor.final_sample().timestamp <= env.now


def test_resource_monitor_validation(env):
    machine = ServerMachine(env)
    with pytest.raises(ValueError):
        ResourceMonitor(env, machine, interval=0.0)


# --- statistics -----------------------------------------------------------------------------

def test_latency_stats_percentiles():
    samples = [float(i) for i in range(1, 101)]
    stats = LatencyStats.from_samples(samples)
    assert stats.count == 100
    assert stats.mean == pytest.approx(50.5)
    assert stats.p1 < stats.p25 < stats.median < stats.p75 < stats.p99
    scaled = stats.scaled(1e3)
    assert scaled.mean == pytest.approx(50500.0)
    assert set(summarize(samples)) == set(stats.as_dict())


def test_latency_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0 and stats.mean == 0.0


def test_percentage_error_matches_table3_definition():
    assert percentage_error(101.6, 100.0) == pytest.approx(1.6)
    assert percentage_error(70.0, 100.0) == pytest.approx(30.0)
    with pytest.raises(ValueError):
        percentage_error(1.0, 0.0)


# --- reporting -------------------------------------------------------------------------------

def test_format_helpers():
    assert format_ms(0.0123) == "12.3ms"
    assert format_percentage(0.577) == "57.7%"
    assert format_breakdown({"AL": 0.010, "FC": 0.020}) == "AL=10.0ms FC=20.0ms"


def test_format_table_alignment_and_validation():
    table = format_table(["name", "value"], [["a", 1], ["bench", 2]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2] and "value" in lines[2]
    with pytest.raises(ValueError):
        format_table(["one"], [["a", "b"]])
