"""Tests for the Section-6 optimization helpers."""

import pytest

from repro.graphics.pipeline import PipelineConfig
from repro.optimizations import (
    OPTIMIZATIONS,
    apply_optimizations,
    optimized_pipeline_config,
)
from repro.server.session import SessionConfig


def test_two_optimizations_are_registered():
    keys = [opt.key for opt in OPTIMIZATIONS]
    assert keys == ["memoize_xgwa", "two_step_copy"]
    for opt in OPTIMIZATIONS:
        assert opt.name and opt.description
        assert hasattr(PipelineConfig(), opt.config_field)


def test_optimized_pipeline_config_enables_selected_flags():
    base = PipelineConfig()
    only_memo = optimized_pipeline_config(base, ["memoize_xgwa"])
    assert only_memo.memoize_window_attributes and not only_memo.two_step_frame_copy
    both = optimized_pipeline_config(base)
    assert both.memoize_window_attributes and both.two_step_frame_copy
    # The base config is untouched (immutability).
    assert not base.memoize_window_attributes


def test_unknown_optimization_key_rejected():
    with pytest.raises(KeyError):
        optimized_pipeline_config(PipelineConfig(), ["warp_drive"])


def test_apply_optimizations_to_session_config():
    config = apply_optimizations(SessionConfig())
    assert config.pipeline.memoize_window_attributes
    assert config.pipeline.two_step_frame_copy
    assert not SessionConfig().pipeline.two_step_frame_copy
