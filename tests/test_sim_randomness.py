"""Tests for the seeded random-stream helpers."""

import numpy as np
import pytest

from repro.sim.randomness import RandomStreams, StreamRandom


def test_same_seed_reproduces_sequence():
    a = StreamRandom(42)
    b = StreamRandom(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = StreamRandom(1)
    b = StreamRandom(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_uniform_respects_bounds(rng):
    for _ in range(200):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_truncated_normal_respects_bounds(rng):
    values = [rng.truncated_normal(0.0, 10.0, low=-1.0, high=1.0) for _ in range(200)]
    assert all(-1.0 <= v <= 1.0 for v in values)


def test_lognormal_mean_cv_matches_target_mean(rng):
    samples = [rng.lognormal_mean_cv(5.0, 0.3) for _ in range(5000)]
    assert np.mean(samples) == pytest.approx(5.0, rel=0.05)


def test_lognormal_zero_cv_is_deterministic(rng):
    assert rng.lognormal_mean_cv(3.0, 0.0) == 3.0


def test_lognormal_requires_positive_mean(rng):
    with pytest.raises(ValueError):
        rng.lognormal_mean_cv(0.0, 0.5)


def test_jitter_stays_within_fraction(rng):
    for _ in range(200):
        value = rng.jitter(10.0, 0.2)
        assert 8.0 <= value <= 12.0


def test_jitter_zero_fraction_is_identity(rng):
    assert rng.jitter(7.0, 0.0) == 7.0


def test_bernoulli_probability_roughly_respected(rng):
    hits = sum(rng.bernoulli(0.3) for _ in range(5000))
    assert 0.25 < hits / 5000 < 0.35


def test_choice_returns_an_option(rng):
    options = ["a", "b", "c"]
    for _ in range(20):
        assert rng.choice(options) in options


def test_named_streams_are_independent_of_creation_order():
    streams_a = RandomStreams(99)
    streams_b = RandomStreams(99)
    # Create in different orders; the same-named stream must agree.
    first_a = streams_a.stream("alpha").random()
    streams_b.stream("beta")
    first_b = streams_b.stream("alpha").random()
    assert first_a == first_b


def test_stream_is_cached():
    streams = RandomStreams(5)
    assert streams.stream("x") is streams.stream("x")


def test_names_lists_created_streams():
    streams = RandomStreams(5)
    streams.stream("b")
    streams.stream("a")
    assert streams.names() == ["a", "b"]
    assert "a" in streams and "c" not in streams
