"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams, StreamRandom


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> StreamRandom:
    return StreamRandom(1234)


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(1234)


@pytest.fixture
def tiny_config() -> ExperimentConfig:
    """A very small experiment configuration for fast integration tests."""
    return ExperimentConfig(seed=7, duration_s=4.0, warmup_s=0.5,
                            recording_seconds=4.0, cnn_epochs=2, lstm_epochs=5)
