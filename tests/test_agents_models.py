"""Tests for the human player, recorder, CNN, LSTM and object detector."""

import numpy as np
import pytest

from repro.agents.cnn import ConvNet, ConvNetConfig
from repro.agents.human import HumanPlayer
from repro.agents.recorder import RecordedSession, SessionRecorder
from repro.agents.rnn import Lstm, LstmConfig
from repro.agents.vision import ObjectDetector
from repro.apps.registry import create_benchmark
from repro.sim.randomness import StreamRandom


@pytest.fixture(scope="module")
def recorded_session() -> RecordedSession:
    app = create_benchmark("RE", rng=StreamRandom(11))
    human = HumanPlayer(app, rng=StreamRandom(12))
    recorder = SessionRecorder(rng=StreamRandom(13))
    return recorder.record(app, human, duration_s=6.0, frame_rate=30.0)


# --- human player -----------------------------------------------------------------

def test_human_rate_matches_profile():
    app = create_benchmark("STK", rng=StreamRandom(1))
    human = HumanPlayer(app, rng=StreamRandom(2))
    assert human.actions_per_second == pytest.approx(app.profile.actions_per_second)
    assert human.input_kind is app.profile.input_kind


def test_human_reaction_time_is_plausible():
    app = create_benchmark("STK", rng=StreamRandom(1))
    human = HumanPlayer(app, rng=StreamRandom(2))
    times = [human.reaction_time() for _ in range(200)]
    assert all(0.05 <= t <= 1.0 for t in times)
    assert np.mean(times) == pytest.approx(app.profile.reaction_time_ms * 1e-3, rel=0.3)


def test_human_decides_even_without_a_frame():
    app = create_benchmark("RE", rng=StreamRandom(1))
    human = HumanPlayer(app, rng=StreamRandom(2), lapse_probability=0.0)
    decision = human.decide(None, now=0.0)
    assert decision is not None
    action, think = decision
    assert think > 0


def test_human_lapses_sometimes_skip_actions():
    app = create_benchmark("RE", rng=StreamRandom(1))
    human = HumanPlayer(app, rng=StreamRandom(2), lapse_probability=0.5)
    frame = app.advance(1 / 30)
    decisions = [human.decide(frame, 0.0) for _ in range(200)]
    assert any(d is None for d in decisions)
    assert any(d is not None for d in decisions)


def test_human_follows_ground_truth_direction():
    app = create_benchmark("RE", rng=StreamRandom(1))
    human = HumanPlayer(app, rng=StreamRandom(2), skill=0.95, lapse_probability=0.0)
    frame = app.advance(1 / 30)
    ideal = app.correct_action(frame)
    steers = [human.policy(frame).steer for _ in range(100)]
    assert np.mean(steers) == pytest.approx(ideal.steer, abs=0.2)


def test_human_validation():
    app = create_benchmark("RE", rng=StreamRandom(1))
    with pytest.raises(ValueError):
        HumanPlayer(app, skill=0.0)
    with pytest.raises(ValueError):
        HumanPlayer(app, lapse_probability=1.0)


# --- recorder -----------------------------------------------------------------------

def test_recording_contains_frame_action_pairs(recorded_session):
    assert len(recorded_session) > 20
    assert recorded_session.benchmark == "RE"
    assert recorded_session.duration > 0
    step = recorded_session.steps[0]
    assert step.frame.objects is not None
    assert -1.0 <= step.action.steer <= 1.0


def test_recording_rate_is_close_to_human_apm(recorded_session):
    app = create_benchmark("RE", rng=StreamRandom(11))
    assert recorded_session.actions_per_minute == pytest.approx(
        app.profile.human_apm, rel=0.35)


def test_label_vectors_have_expected_shape(recorded_session):
    labels = recorded_session.feature_matrix()
    assert labels.shape == (len(recorded_session), 30)
    assert labels.min() >= 0.0 and labels.max() <= 1.0


def test_action_matrix_shape(recorded_session):
    actions = recorded_session.action_matrix()
    assert actions.shape == (len(recorded_session), 3)


def test_recorder_validation():
    recorder = SessionRecorder()
    app = create_benchmark("RE", rng=StreamRandom(11))
    human = HumanPlayer(app, rng=StreamRandom(12))
    with pytest.raises(ValueError):
        recorder.record(app, human, duration_s=0.0)


# --- CNN --------------------------------------------------------------------------------

def test_convnet_shapes_and_parameter_count():
    net = ConvNet(ConvNetConfig())
    image = np.zeros((36, 64, 3))
    output = net.predict(image)
    assert output.shape == (30,)
    assert net.parameter_count > 1000


def test_convnet_rejects_wrong_input_shape():
    net = ConvNet()
    with pytest.raises(ValueError):
        net.predict(np.zeros((10, 10, 3)))


def test_convnet_training_reduces_loss(recorded_session):
    net = ConvNet(ConvNetConfig(epochs=6))
    images = np.stack([step.frame.pixels for step in recorded_session.steps])
    targets = recorded_session.feature_matrix()
    net.train(images, targets, epochs=6)
    assert len(net.training_losses) == 6
    assert net.training_losses[-1] < net.training_losses[0]


def test_convnet_training_validates_alignment():
    net = ConvNet()
    with pytest.raises(ValueError):
        net.train(np.zeros((4, 36, 64, 3)), np.zeros((5, 30)))


# --- LSTM -------------------------------------------------------------------------------

def test_lstm_prediction_shape_and_state():
    lstm = Lstm(LstmConfig(input_units=30))
    out1 = lstm.predict(np.zeros(30))
    assert out1.shape == (3,)
    # State carries over: a second identical input can give a different output.
    out2 = lstm.predict(np.zeros(30))
    lstm.reset_state()
    out3 = lstm.predict(np.zeros(30))
    assert np.allclose(out1, out3)
    assert out1.shape == out2.shape


def test_lstm_rejects_wrong_feature_size():
    lstm = Lstm(LstmConfig(input_units=30))
    with pytest.raises(ValueError):
        lstm.predict(np.zeros(7))


def test_lstm_training_reduces_loss():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(120, 30))
    # Learnable mapping: action depends linearly on two feature columns.
    actions = np.stack([features[:, 0] * 0.5, features[:, 1] * -0.5,
                        (features[:, 2] > 0).astype(float)], axis=1)
    lstm = Lstm(LstmConfig(input_units=30, epochs=30))
    lstm.train(features, actions, epochs=30)
    assert lstm.training_losses[-1] < lstm.training_losses[0]


def test_lstm_training_validation():
    lstm = Lstm(LstmConfig(input_units=30))
    with pytest.raises(ValueError):
        lstm.train(np.zeros((5, 30)), np.zeros((4, 3)))
    with pytest.raises(ValueError):
        lstm.train(np.zeros((1, 30)), np.zeros((1, 3)))


# --- object detector -----------------------------------------------------------------------

def test_detector_trains_and_detects(recorded_session):
    detector = ObjectDetector()
    detector.train(recorded_session, epochs=6)
    error = detector.detection_error(recorded_session)
    assert error < 0.35
    detections = detector.detect(recorded_session.steps[0].frame)
    for detection in detections:
        assert 0.0 <= detection.x <= 1.0 and 0.0 <= detection.y <= 1.0


def test_detector_requires_non_empty_session():
    detector = ObjectDetector()
    with pytest.raises(ValueError):
        detector.train(RecordedSession(benchmark="RE"))
